"""Paired router comparisons over shared network samples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.statistics import (
    bootstrap_ci,
    paired_difference_ci,
    sign_test_p_value,
)
from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.utils.rng import RandomState, ensure_rng, spawn_rng
from repro.utils.tables import AsciiTable


@dataclass(frozen=True)
class ComparisonReport:
    """Paired per-sample rates plus derived statistics."""

    samples: Dict[str, Tuple[float, ...]]

    def algorithms(self) -> List[str]:
        """Algorithm names, in insertion order."""
        return list(self.samples)

    def mean_rate(self, algorithm: str) -> float:
        """Mean rate of one algorithm over the shared samples."""
        values = self._series(algorithm)
        return sum(values) / len(values)

    def mean_ci(self, algorithm: str, rng: Optional[RandomState] = None):
        """Bootstrap CI of one algorithm's mean rate."""
        return bootstrap_ci(self._series(algorithm), rng=rng)

    def difference_ci(
        self, a: str, b: str, rng: Optional[RandomState] = None
    ):
        """Bootstrap CI of the paired mean difference ``a - b``."""
        return paired_difference_ci(
            self._series(a), self._series(b), rng=rng
        )

    def significance(self, a: str, b: str) -> float:
        """Two-sided sign-test p-value for ``a`` vs ``b``."""
        return sign_test_p_value(self._series(a), self._series(b))

    def to_text(self, baseline: Optional[str] = None) -> str:
        """Render means with CIs and per-algorithm comparison rows."""
        names = self.algorithms()
        if baseline is None:
            baseline = names[0]
        if baseline not in self.samples:
            raise ConfigurationError(f"unknown baseline {baseline!r}")
        table = AsciiTable(
            ["algorithm", "mean rate", "95% CI", f"vs {baseline}", "p (sign)"]
        )
        for name in names:
            mean, low, high = self.mean_ci(name, rng=ensure_rng(0))
            if name == baseline:
                versus, p_text = "-", "-"
            else:
                diff, dlow, dhigh = self.difference_ci(
                    name, baseline, rng=ensure_rng(0)
                )
                versus = f"{diff:+.3g} [{dlow:.3g}, {dhigh:.3g}]"
                p_text = f"{self.significance(name, baseline):.3g}"
            table.add_row(
                [name, mean, f"[{low:.3g}, {high:.3g}]", versus, p_text]
            )
        return table.render()

    def _series(self, algorithm: str) -> Tuple[float, ...]:
        try:
            return self.samples[algorithm]
        except KeyError:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; have {self.algorithms()}"
            ) from None


def compare_routers(
    routers: Sequence,
    config: Optional[NetworkConfig] = None,
    num_states: int = 10,
    num_samples: int = 10,
    link_model: Optional[LinkModel] = None,
    swap_model: Optional[SwapModel] = None,
    seed: int = 0,
) -> ComparisonReport:
    """Evaluate *routers* on *num_samples* shared network samples.

    All routers see identical topologies and demand sets, so per-sample
    differences isolate the algorithm (paired design).
    """
    if not routers:
        raise ConfigurationError("need at least one router")
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be >= 1, got {num_samples}")
    config = config or NetworkConfig(num_switches=50)
    link_model = link_model or LinkModel()
    swap_model = swap_model or SwapModel()
    rng = ensure_rng(seed)
    sample_rngs = spawn_rng(rng, num_samples)
    rates: Dict[str, List[float]] = {}
    for sample_rng in sample_rngs:
        network = build_network(config, sample_rng)
        demands = generate_demands(network, num_states, sample_rng)
        for router in routers:
            result = router.route(network, demands, link_model, swap_model)
            rates.setdefault(result.algorithm, []).append(result.total_rate)
    return ComparisonReport(
        samples={name: tuple(values) for name, values in rates.items()}
    )

"""Statistical analysis helpers for experiment results.

Evaluation claims like "ALG-N-FUSION improves the rate by X%" need error
bars: topologies and demand sets are random, so per-sample rates vary.
This package provides:

* :func:`~repro.analysis.statistics.bootstrap_ci` — nonparametric
  confidence intervals for any statistic of a sample;
* :func:`~repro.analysis.statistics.sign_test_p_value` — exact paired
  sign test (no distributional assumptions);
* :func:`~repro.analysis.comparison.compare_routers` — paired evaluation
  of several routers over shared network samples, with per-pair mean
  differences, bootstrap CIs and sign-test significance.
"""

from repro.analysis.statistics import (
    bootstrap_ci,
    paired_difference_ci,
    sign_test_p_value,
)
from repro.analysis.comparison import ComparisonReport, compare_routers

__all__ = [
    "bootstrap_ci",
    "paired_difference_ci",
    "sign_test_p_value",
    "ComparisonReport",
    "compare_routers",
]

"""Nonparametric statistics: bootstrap intervals and the sign test."""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: Optional[RandomState] = None,
) -> Tuple[float, float, float]:
    """Percentile bootstrap: ``(point_estimate, low, high)``.

    ``statistic`` maps a resampled array to a scalar (default: the mean).
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if n_boot < 10:
        raise ConfigurationError(f"n_boot must be >= 10, got {n_boot}")
    rng = ensure_rng(rng)
    point = float(statistic(values))
    if values.size == 1:
        return point, point, point
    indices = rng.integers(0, values.size, size=(n_boot, values.size))
    resamples = values[indices]
    stats = np.apply_along_axis(statistic, 1, resamples)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return point, float(low), float(high)


def paired_difference_ci(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: Optional[RandomState] = None,
) -> Tuple[float, float, float]:
    """Bootstrap CI for the mean of the paired differences ``a - b``."""
    a = list(a)
    b = list(b)
    if len(a) != len(b):
        raise ConfigurationError(
            f"paired samples must have equal length, got {len(a)} and {len(b)}"
        )
    differences = [x - y for x, y in zip(a, b)]
    return bootstrap_ci(differences, confidence=confidence, n_boot=n_boot, rng=rng)


def sign_test_p_value(a: Sequence[float], b: Sequence[float]) -> float:
    """Exact two-sided sign test for paired samples.

    Tests the null hypothesis that ``a_i > b_i`` and ``a_i < b_i`` are
    equally likely; ties are discarded (standard treatment).  Returns the
    two-sided p-value; 1.0 when every pair ties.
    """
    a = list(a)
    b = list(b)
    if len(a) != len(b):
        raise ConfigurationError(
            f"paired samples must have equal length, got {len(a)} and {len(b)}"
        )
    wins = sum(1 for x, y in zip(a, b) if x > y)
    losses = sum(1 for x, y in zip(a, b) if x < y)
    n = wins + losses
    if n == 0:
        return 1.0
    k = min(wins, losses)
    # Two-sided binomial tail with p = 1/2.
    tail = sum(math.comb(n, i) for i in range(0, k + 1)) / (2.0**n)
    return min(1.0, 2.0 * tail)


def summarize(samples: Sequence[float]) -> dict:
    """Mean / std / min / max summary of a sample."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    return {
        "n": int(values.size),
        "mean": float(values.mean()),
        "std": float(values.std(ddof=1)) if values.size > 1 else 0.0,
        "min": float(values.min()),
        "max": float(values.max()),
    }

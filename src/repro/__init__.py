"""repro — entanglement routing over quantum networks with GHZ measurements.

A from-scratch reproduction of Zeng et al., "Entanglement Routing over
Quantum Networks Using Greenberger-Horne-Zeilinger Measurements"
(ICDCS 2023).  The package provides:

* :mod:`repro.quantum` — an exact stabilizer simulator for verifying
  n-fusion semantics, plus the scalable GHZ-group tracker and the
  link/swap success models.
* :mod:`repro.network` — the network model (users, switches, links) and
  topology generators (Waxman, Watts-Strogatz, Aiello, ...).
* :mod:`repro.routing` — the paper's ALG-N-FUSION (Algorithms 1-4), the
  flow-like-graph rate metric (Equation 1), the Q-CAST / Q-CAST-N / B1 /
  MCF baselines, and the router registry
  (:func:`~repro.routing.registry.make_router`,
  :class:`~repro.routing.registry.RouterSpec`) addressing all of them by
  key + parameters.
* :mod:`repro.simulation` — Monte Carlo simulation of the three-phase
  entanglement process, validating the analytic rates.
* :mod:`repro.experiments` — definitions that regenerate every figure and
  table of the paper's evaluation.

Quickstart::

    from repro import (AlgNFusion, NetworkConfig, build_network,
                       generate_demands)
    network = build_network(NetworkConfig(num_switches=50), rng=1)
    demands = generate_demands(network, num_states=10, rng=2)
    result = AlgNFusion().route(network, demands)
    print(result.total_rate)
"""

from repro.exceptions import (
    AllocationError,
    CapacityError,
    ConfigurationError,
    EdgeNotFoundError,
    ExperimentError,
    FusionError,
    MeasurementError,
    NodeNotFoundError,
    NoPathError,
    QuantumStateError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.network import (
    Demand,
    DemandSet,
    NetworkConfig,
    QuantumNetwork,
    build_network,
    generate_demands,
)
from repro.quantum import (
    EntanglementTracker,
    FidelityModel,
    GHZGroup,
    LinkModel,
    StabilizerTableau,
    SwapModel,
)
from repro.routing import (
    AlgNFusion,
    B1Router,
    FlowLikeGraph,
    MCFRouter,
    MultipartiteDemand,
    MultipartiteRouter,
    OnlineScheduler,
    QCastNRouter,
    QCastRouter,
    Router,
    RouterSpec,
    RouterSpecError,
    RoutingPlan,
    RoutingResult,
    make_router,
    parse_router_specs,
    register_router,
    render_plan_report,
    router_keys,
)
from repro.simulation import (
    EntanglementProcessSimulator,
    MonteCarloEstimate,
    QuantumProtocolSimulator,
    TimeSlottedSimulator,
    VectorizedProcessSimulator,
    estimate_plan_rate,
    exact_flow_rate,
)
from repro.protocol import HardwareTimings, ProtocolSimulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "CapacityError",
    "RoutingError",
    "NoPathError",
    "AllocationError",
    "QuantumStateError",
    "MeasurementError",
    "FusionError",
    "SimulationError",
    "ExperimentError",
    # network
    "QuantumNetwork",
    "NetworkConfig",
    "build_network",
    "Demand",
    "DemandSet",
    "generate_demands",
    # quantum
    "StabilizerTableau",
    "GHZGroup",
    "EntanglementTracker",
    "FidelityModel",
    "LinkModel",
    "SwapModel",
    # routing
    "AlgNFusion",
    "QCastRouter",
    "QCastNRouter",
    "B1Router",
    "MCFRouter",
    "Router",
    "RouterSpec",
    "RouterSpecError",
    "make_router",
    "parse_router_specs",
    "register_router",
    "router_keys",
    "MultipartiteDemand",
    "MultipartiteRouter",
    "OnlineScheduler",
    "render_plan_report",
    "RoutingPlan",
    "RoutingResult",
    "FlowLikeGraph",
    # simulation
    "EntanglementProcessSimulator",
    "QuantumProtocolSimulator",
    "MonteCarloEstimate",
    "estimate_plan_rate",
    "VectorizedProcessSimulator",
    "TimeSlottedSimulator",
    "exact_flow_rate",
    "HardwareTimings",
    "ProtocolSimulator",
]

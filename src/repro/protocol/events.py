"""Discrete-event machinery: timestamped events and the event queue."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import SimulationError


@dataclass(frozen=True, order=False)
class Event:
    """A scheduled occurrence.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    kind:
        Free-form event type tag (e.g. ``"link-heralded"``).
    payload:
        Arbitrary event data interpreted by the handler.
    """

    time: float
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SimulationError(f"event time must be >= 0, got {self.time}")


class EventQueue:
    """A time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    def schedule(self, event: Event) -> None:
        """Insert *event*; scheduling into the past is an error."""
        if event.time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {event.time} before now={self._now}"
            )
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def schedule_at(self, time: float, kind: str, **payload: Any) -> Event:
        """Convenience constructor + insert; returns the event."""
        event = Event(time, kind, payload)
        self.schedule(event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self, handler: Callable[[Event], None],
              until: Optional[float] = None) -> int:
        """Pop and handle events in order, optionally stopping at *until*.

        Returns the number of events handled.  Events scheduled by the
        handler are processed too (if they fall before *until*).
        """
        handled = 0
        while self._heap:
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                break
            event = self.pop()
            assert event is not None
            handler(event)
            handled += 1
        return handled

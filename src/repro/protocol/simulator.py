"""Event-driven Phase III execution with timing and decoherence.

One slot of one flow proceeds as a discrete-event simulation:

1. every parallel link of every channel schedules heralded generation
   attempts (each one photon round trip + overhead) until it succeeds or
   the slot deadline passes; the channel is *heralded* at its first
   success;
2. a switch fuses as soon as every flow channel incident to it has
   heralded (the outcome is sampled with the swap model's probability);
3. fusion outcomes propagate to the users at fibre light speed; the
   state is *delivered* over a constituent path when both users have
   every outcome of that path;
4. memories decohere: any Bell-pair qubit older than the coherence time
   when it is consumed (fused, or held by a user until delivery) spoils
   the path.

Establishment requires some constituent path of the flow to survive all
four stages.  With generous slot duration and coherence time the
establishment probability converges to the timing-free Monte Carlo /
Equation 1 rate; shrinking either exposes the protocol costs the
analytic model hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.network.graph import QuantumNetwork
from repro.protocol.events import EventQueue
from repro.protocol.hardware import HardwareTimings
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.utils.rng import RandomState, ensure_rng

EdgeKey = Tuple[int, int]

#: Failure categories, ordered by how far the slot progressed.
FAILURE_KINDS = ("link_timeout", "memory_expiry", "fusion_failure")


@dataclass(frozen=True)
class FlowProtocolOutcome:
    """One slot's outcome for one flow."""

    established: bool
    latency_s: Optional[float]
    failure: Optional[str]  # one of FAILURE_KINDS when not established


@dataclass
class ProtocolStats:
    """Aggregated outcomes over many slots."""

    slots: int = 0
    established: int = 0
    latency_total: float = 0.0
    failures: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in FAILURE_KINDS}
    )

    def record(self, outcome: FlowProtocolOutcome) -> None:
        """Fold one slot outcome into the statistics."""
        self.slots += 1
        if outcome.established:
            self.established += 1
            self.latency_total += outcome.latency_s or 0.0
        elif outcome.failure is not None:
            self.failures[outcome.failure] += 1

    @property
    def establishment_rate(self) -> float:
        """Fraction of slots that delivered the state."""
        return self.established / self.slots if self.slots else 0.0

    @property
    def mean_latency_s(self) -> Optional[float]:
        """Mean delivery latency over successful slots."""
        if not self.established:
            return None
        return self.latency_total / self.established


class ProtocolSimulator:
    """Run flows through the timed Phase III protocol."""

    def __init__(
        self,
        network: QuantumNetwork,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
        timings: Optional[HardwareTimings] = None,
        rng: Optional[RandomState] = None,
    ):
        self.network = network
        self.link_model = link_model or LinkModel()
        self.swap_model = swap_model or SwapModel()
        self.timings = timings or HardwareTimings()
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------

    def run_slot(self, flow: FlowLikeGraph) -> FlowProtocolOutcome:
        """Simulate one slot of *flow* and classify the outcome."""
        channel_times = self._simulate_link_generation(flow)
        fusion_times, fusion_ok, expired_at_fusion = self._simulate_fusions(
            flow, channel_times
        )
        return self._evaluate_paths(
            flow, channel_times, fusion_times, fusion_ok, expired_at_fusion
        )

    def run(self, flow: FlowLikeGraph, slots: int) -> ProtocolStats:
        """Simulate *slots* independent slots of *flow*."""
        if slots < 1:
            raise SimulationError(f"slots must be >= 1, got {slots}")
        stats = ProtocolStats()
        for _ in range(slots):
            stats.record(self.run_slot(flow))
        return stats

    # ------------------------------------------------------------------
    # Stage 1: link generation as discrete events

    def _simulate_link_generation(
        self, flow: FlowLikeGraph
    ) -> Dict[EdgeKey, Optional[float]]:
        """Heralding time per channel (None = no link before deadline)."""
        queue = EventQueue()
        deadline = self.timings.slot_duration_s
        channel_times: Dict[EdgeKey, Optional[float]] = {}
        for (u, v) in flow.edges():
            key = (u, v)
            channel_times[key] = None
            length = self.network.edge_length(u, v)
            duration = self.timings.attempt_duration(length)
            p = self.link_model.success_probability(length)
            for _ in range(flow.edge_width(u, v)):
                # Geometric number of attempts; the k-th completes at k*d.
                if p <= 0.0:
                    continue
                attempts = int(self._rng.geometric(p))
                success_time = attempts * duration
                if success_time <= deadline:
                    queue.schedule_at(success_time, "link-heralded", edge=key)

        def handle(event) -> None:
            key = event.payload["edge"]
            if channel_times[key] is None or event.time < channel_times[key]:
                channel_times[key] = event.time

        queue.drain(handle, until=deadline)
        return channel_times

    # ------------------------------------------------------------------
    # Stage 2: fusions fire when a switch's channels are all heralded

    def _simulate_fusions(
        self,
        flow: FlowLikeGraph,
        channel_times: Dict[EdgeKey, Optional[float]],
    ):
        fusion_times: Dict[int, Optional[float]] = {}
        fusion_ok: Dict[int, bool] = {}
        expired: Dict[int, bool] = {}
        coherence = self.timings.coherence_time_s
        deadline = self.timings.slot_duration_s
        for node in flow.nodes():
            if not self.network.node(node).is_switch:
                continue
            incident = [key for key in flow.edges() if node in key]
            times = [channel_times[key] for key in incident]
            alive = [t for t in times if t is not None]
            if len(alive) < 2:
                # Fewer than two live channels: nothing to fuse.
                fusion_times[node] = None
                fusion_ok[node] = False
                expired[node] = False
                continue
            if len(alive) == len(times):
                # All channels heralded: fuse as soon as the last arrives.
                fire_time = max(alive)
            else:
                # Some channel can no longer succeed; that is only known
                # for certain once the slot deadline passes, so the switch
                # fuses its surviving channels then.
                fire_time = deadline
            fusion_times[node] = fire_time
            # Each local qubit was created when its channel heralded; it
            # must still be coherent when the fusion consumes it.
            expired[node] = any(fire_time - t > coherence for t in alive)
            q = self.swap_model.success_probability(flow.fusion_arity(node))
            fusion_ok[node] = bool(self._rng.uniform() < q)
        return fusion_times, fusion_ok, expired

    # ------------------------------------------------------------------
    # Stage 3/4: per-path delivery evaluation

    def _evaluate_paths(
        self,
        flow: FlowLikeGraph,
        channel_times: Dict[EdgeKey, Optional[float]],
        fusion_times: Dict[int, Optional[float]],
        fusion_ok: Dict[int, bool],
        expired_at_fusion: Dict[int, bool],
    ) -> FlowProtocolOutcome:
        best_latency: Optional[float] = None
        most_progress = 0  # 1 = links up, 2 = memory ok, 3 = fusions ok
        coherence = self.timings.coherence_time_s
        for path in flow.paths:
            edges = [
                (a, b) if a < b else (b, a)
                for a, b in zip(path, path[1:])
            ]
            times = [channel_times[key] for key in edges]
            if any(t is None for t in times):
                most_progress = max(most_progress, 0)
                continue
            switches = [n for n in path[1:-1]]
            switch_fire = [fusion_times[s] for s in switches]
            # All switches on this path have their channels ready (their
            # other channels may belong to other paths of the flow; a
            # switch whose extra channels never heralded cannot fuse).
            if any(t is None for t in switch_fire):
                most_progress = max(most_progress, 0)
                continue
            most_progress = max(most_progress, 1)
            if any(expired_at_fusion[s] for s in switches):
                continue
            # Users hold their qubits until every fusion outcome arrives.
            last_fusion = max(switch_fire, default=max(times))
            delivery = self._delivery_time(path, last_fusion)
            user_expired = False
            for user, key in ((path[0], edges[0]), (path[-1], edges[-1])):
                created = channel_times[key]
                if delivery - created > coherence:  # type: ignore[operator]
                    user_expired = True
            if user_expired:
                continue
            most_progress = max(most_progress, 2)
            if not all(fusion_ok[s] for s in switches):
                continue
            most_progress = max(most_progress, 3)
            if best_latency is None or delivery < best_latency:
                best_latency = delivery
        if best_latency is not None:
            return FlowProtocolOutcome(True, best_latency, None)
        failure = {
            0: "link_timeout",
            1: "memory_expiry",
            2: "fusion_failure",
            3: "fusion_failure",  # pragma: no cover - success short-circuits
        }[most_progress]
        return FlowProtocolOutcome(False, None, failure)

    def _delivery_time(self, path, last_fusion: float) -> float:
        """Time when both users know every fusion outcome on *path*."""
        longest = 0.0
        source_pos = self.network.position(path[0])
        dest_pos = self.network.position(path[-1])
        for node in path[1:-1]:
            pos = self.network.position(node)
            to_users = max(
                pos.distance_to(source_pos), pos.distance_to(dest_pos)
            )
            longest = max(longest, self.timings.propagation_delay(to_users))
        return last_fusion + longest

"""Hardware timing constants for the protocol simulation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: Speed of light in fibre, km/s (refractive index ~1.47).
FIBER_LIGHT_SPEED_KM_S = 2.0e5


@dataclass(frozen=True)
class HardwareTimings:
    """Timing model for links, classical messages and memories.

    Attributes
    ----------
    attempt_overhead_s:
        Fixed source/detector overhead per elementary-link attempt.
    coherence_time_s:
        Memory lifetime: a Bell-pair qubit older than this at the moment
        it is consumed (fusion or final confirmation) has decohered.
    slot_duration_s:
        Phase III deadline: link generation attempts stop at this time;
        anything unfinished fails the slot.
    light_speed_km_s:
        Classical/quantum propagation speed over fibre.
    """

    attempt_overhead_s: float = 1e-6
    coherence_time_s: float = 0.05
    slot_duration_s: float = 0.2
    light_speed_km_s: float = FIBER_LIGHT_SPEED_KM_S

    def __post_init__(self) -> None:
        for name in ("attempt_overhead_s", "coherence_time_s",
                     "slot_duration_s", "light_speed_km_s"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {value}")

    def propagation_delay(self, distance_km: float) -> float:
        """One-way classical/quantum propagation delay over *distance_km*."""
        if distance_km < 0:
            raise ConfigurationError(
                f"distance must be >= 0, got {distance_km}"
            )
        return distance_km / self.light_speed_km_s

    def attempt_duration(self, link_length_km: float) -> float:
        """Duration of one heralded link-generation attempt.

        A photon travels the link and the heralding signal returns:
        one round trip plus the per-attempt source overhead.
        """
        return 2.0 * self.propagation_delay(link_length_km) + self.attempt_overhead_s

"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A user-supplied parameter is outside its legal domain."""


class TopologyError(ReproError):
    """A network topology is malformed or cannot be generated."""


class NodeNotFoundError(TopologyError):
    """A node identifier does not exist in the network."""


class EdgeNotFoundError(TopologyError):
    """An edge does not exist in the network."""


class CapacityError(ReproError):
    """A qubit allocation would exceed a switch's qubit capacity."""


class RoutingError(ReproError):
    """Route computation failed (e.g. no feasible path of the given width)."""


class NoPathError(RoutingError):
    """No path exists between the requested endpoints under the constraints."""


class AllocationError(RoutingError):
    """Qubit ledger operations were used inconsistently."""


class QuantumStateError(ReproError):
    """An operation on a quantum state or tableau is invalid."""


class MeasurementError(QuantumStateError):
    """A measurement was requested on an invalid qubit or basis."""


class FusionError(QuantumStateError):
    """An n-fusion operation was requested on incompatible states."""


class SimulationError(ReproError):
    """The Monte Carlo entanglement-process simulator hit an invalid state."""


class ExperimentError(ReproError):
    """An experiment definition or sweep configuration is invalid."""

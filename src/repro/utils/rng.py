"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or an
existing generator and normalises it through :func:`ensure_rng`, so whole
experiments are reproducible from a single integer seed.  Child generators
for independent subsystems are derived with :func:`spawn_rng` to keep
streams statistically independent without coupling call orders.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError

#: The generator type used throughout the library.
RandomState = np.random.Generator

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> RandomState:
    """Normalise *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence``,
    or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    raise ConfigurationError(
        f"seed must be None, int, SeedSequence or Generator, got {type(seed).__name__}"
    )


def spawn_seeds(rng: RandomState, n: int = 1) -> list:
    """Derive *n* child generator seeds from *rng*.

    This is the seed-material half of :func:`spawn_rng`: the experiment
    harness pre-computes these integers so each parallel task can rebuild
    its own generator (``ensure_rng(seed)``) bit-identically to the
    sequential ``spawn_rng`` children.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(s) for s in seeds]


def stream_rng(seed: int, stream: int) -> RandomState:
    """An independent generator for substream *stream* of integer *seed*.

    Unlike :func:`spawn_rng`, the substream is addressed *statelessly*:
    the same ``(seed, stream)`` pair always yields the same generator,
    without consuming draws from any parent.  The sweep harness uses
    this to give Monte-Carlo estimation its own stream per sample seed,
    so changing the trial count (or skipping estimation entirely) can
    never perturb the instance-generation stream that shares the seed.
    """
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise ConfigurationError(
            f"stream_rng seed must be an int, got {type(seed).__name__}"
        )
    if seed < 0 or stream < 0:
        raise ConfigurationError(
            f"stream_rng seed and stream must be non-negative, got "
            f"seed={seed}, stream={stream}"
        )
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=(int(stream),))
    )


def spawn_rng(rng: RandomState, n: int = 1) -> list:
    """Derive *n* statistically independent child generators from *rng*.

    The children are seeded from fresh entropy drawn out of *rng* itself,
    so the same parent seed always yields the same family of children.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, n)]


def random_subset(rng: RandomState, items: list, k: int) -> list:
    """Choose *k* distinct items from *items* uniformly at random."""
    if k > len(items):
        raise ConfigurationError(
            f"cannot choose {k} items from a population of {len(items)}"
        )
    idx = rng.choice(len(items), size=k, replace=False)
    return [items[int(i)] for i in idx]

"""Sanctioned wall-clock access for latency measurement.

Lint rule RPL001 bans raw clock reads (``time.time``,
``time.perf_counter``, ``time.monotonic`` and friends) everywhere in
``src/`` because wall-clock values leaking into results break the
repo's determinism contract: every cached number must be a pure
function of its spec.  Latency *reporting* — how long a re-plan took,
not what it decided — is the one legitimate consumer of a clock, and
this module is its single sanctioned accessor.

The rule this module's callers must uphold: timer readings may feed
side-channel diagnostics (latency percentiles on stderr, profiling
reports, benchmark tables) but never anything that is cached, printed
on a deterministic stdout stream, or compared across runs for
bit-identity.  The online serving loop follows exactly this split —
deterministic metrics on stdout, :func:`perf_timer`-derived latency
stats on stderr.
"""

from __future__ import annotations

import time


def perf_timer() -> float:
    """A monotonic high-resolution timestamp in seconds.

    Differences between two readings measure elapsed wall-clock time;
    the absolute value is meaningless.  This is the only sanctioned
    clock read outside ``repro/utils/timing.py`` fixtures (lint rule
    RPL001 flags any other ``time.perf_counter``/``time.monotonic``
    use in ``src/``).
    """
    return time.perf_counter()

"""Small argparse helpers shared by the package's CLIs."""

from __future__ import annotations

import argparse
import functools
from typing import Callable


def argparse_type(parse_fn: Callable):
    """Wrap a ValueError-raising parser for use as an argparse ``type=``.

    argparse replaces a plain ValueError from a type callable with a
    generic "invalid value" message; re-raising as ArgumentTypeError
    preserves the parser's detailed text (e.g. the router registry's
    list of known keys) in the usage error.
    """

    @functools.wraps(parse_fn)
    def wrapper(text: str):
        try:
            return parse_fn(text)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None

    return wrapper

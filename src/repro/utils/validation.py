"""Small argument-validation helpers used across the library.

Each helper raises :class:`repro.exceptions.ConfigurationError` with a
message that names the offending parameter, so user-facing errors are
actionable without a traceback hunt.
"""

from __future__ import annotations

import math
from typing import Any, Type

from repro.exceptions import ConfigurationError


def check_type(name: str, value: Any, expected: Type) -> None:
    """Raise unless *value* is an instance of *expected*."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )


def check_probability(name: str, value: float) -> float:
    """Validate that *value* is a finite probability in [0, 1]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is a finite number strictly greater than zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_positive_int(name: str, value: int) -> int:
    """Validate that *value* is an integer >= 1."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{name} must be an int, got {type(value).__name__}"
        )
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(name: str, value: int) -> int:
    """Validate that *value* is an integer >= 0."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{name} must be an int, got {type(value).__name__}"
        )
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that *value* lies in the closed interval [*low*, *high*]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return float(value)

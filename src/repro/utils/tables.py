"""Plain-text table and series formatting for the experiment harness.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers render them as aligned ASCII so the output is readable both in
a terminal and in EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


class AsciiTable:
    """Accumulate rows and render them as an aligned plain-text table."""

    def __init__(self, headers: Sequence[str]):
        self._headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; values are stringified (floats to 4 sig figs)."""
        row = [_format_cell(v) for v in values]
        if len(row) != len(self._headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self._headers)} columns"
            )
        self._rows.append(row)

    def render(self) -> str:
        """Render the table with a header rule, columns space-aligned."""
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self._headers)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self._rows:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render a figure-style sweep (one x column, one column per series)."""
    table = AsciiTable([x_label, *series.keys()])
    for i, x in enumerate(x_values):
        table.add_row([x, *(values[i] for values in series.values())])
    return table.render()

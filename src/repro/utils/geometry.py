"""Plane geometry helpers for node placement and link lengths."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point in the 2-D deployment area (units are kilometres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance from this point to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)


def euclidean_distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def bounding_box_diagonal(width: float, height: float) -> float:
    """Diagonal length of a *width* x *height* rectangle."""
    return math.hypot(width, height)

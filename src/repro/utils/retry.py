"""Bounded retry with a deterministic backoff schedule.

The serving loop's repair policy re-attempts disrupted flows a bounded
number of times with exponentially (or uniformly) spaced delays.  In a
discrete-event world a "delay" is a number added to the simulated
clock, never a wall-clock sleep — this module computes the schedule as
a pure function of its parameters and reads no clocks at all, so it is
safe everywhere RPL001 applies (``time.sleep`` and the wall-clock
accessors are lint errors outside :mod:`repro.utils.timing`).

``backoff_delays("exp", base=1.0, retries=3)`` -> ``(1.0, 2.0, 4.0)``;
``backoff_delays("fixed", base=2.0, retries=3)`` -> ``(2.0, 2.0, 2.0)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import ConfigurationError

#: Supported backoff schedules, in CLI listing order.
BACKOFF_KINDS = ("exp", "fixed")

#: Growth factor of the exponential schedule (delay doubles per retry).
EXP_GROWTH = 2.0


def backoff_delays(kind: str, base: float, retries: int) -> Tuple[float, ...]:
    """The delay before each of *retries* re-attempts, in attempt order.

    ``exp`` spaces attempt k (0-based) ``base * 2**k`` after the
    previous failure; ``fixed`` always waits ``base``.  The first,
    immediate attempt is not part of the schedule — a policy with
    ``retries=0`` tries exactly once.  Deterministic and clock-free:
    callers add the delays to their own (simulated) timeline.
    """
    if kind not in BACKOFF_KINDS:
        raise ConfigurationError(
            f"backoff kind must be one of {', '.join(BACKOFF_KINDS)}, "
            f"got {kind!r}"
        )
    if not base > 0:
        raise ConfigurationError(f"backoff base must be > 0, got {base!r}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if kind == "exp":
        return tuple(base * EXP_GROWTH**k for k in range(retries))
    return (base,) * retries

"""Shared utilities: RNG plumbing, validation helpers, geometry, tables."""

from repro.utils.rng import RandomState, ensure_rng, spawn_rng
from repro.utils.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)
from repro.utils.geometry import Point, euclidean_distance
from repro.utils.tables import AsciiTable, format_series

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rng",
    "check_in_range",
    "check_non_negative_int",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_type",
    "Point",
    "euclidean_distance",
    "AsciiTable",
    "format_series",
]

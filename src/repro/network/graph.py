"""The quantum network graph.

A thin, dependency-free undirected graph specialised for this library:
nodes are :class:`~repro.network.node.Node` records (users or switches with
positions and qubit capacities) and edges carry Euclidean lengths.  The
routing algorithms only need adjacency iteration, edge lookup and a few
whole-graph queries, so the implementation favours clarity over generality.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import (
    EdgeNotFoundError,
    NodeNotFoundError,
    TopologyError,
)
from repro.network.edge import Edge, EdgeKey, edge_key
from repro.network.node import Node, NodeKind
from repro.utils.geometry import Point


class QuantumNetwork:
    """An undirected quantum network of users and switches."""

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._edges: Dict[EdgeKey, Edge] = {}
        self._adjacency: Dict[int, Set[int]] = {}
        # Bumped on every structural change.  Nodes and edges are frozen
        # dataclasses, so an unchanged version guarantees an unchanged
        # network — derived caches (the compiled routing snapshot) key
        # on it to survive across routing calls and invalidate exactly
        # when the topology mutates.
        self._topology_version = 0

    @property
    def topology_version(self) -> int:
        """Monotone counter of structural mutations (see ``__init__``)."""
        return self._topology_version

    # ------------------------------------------------------------------
    # Construction

    def add_node(self, node: Node) -> None:
        """Insert *node*; node ids must be unique."""
        if node.node_id in self._nodes:
            raise TopologyError(f"node {node.node_id} already exists")
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = set()
        self._topology_version += 1

    def add_edge(self, u: int, v: int, length: Optional[float] = None) -> Edge:
        """Insert an undirected edge; defaults the length to the Euclidean
        distance between the endpoint positions."""
        self._require_node(u)
        self._require_node(v)
        key = edge_key(u, v)
        if key in self._edges:
            raise TopologyError(f"edge {key} already exists")
        if length is None:
            length = self._nodes[u].position.distance_to(self._nodes[v].position)
        edge = Edge(u, v, length)
        self._edges[key] = edge
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._topology_version += 1
        return edge

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge between *u* and *v*."""
        key = edge_key(u, v)
        if key not in self._edges:
            raise EdgeNotFoundError(f"edge {key} does not exist")
        del self._edges[key]
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._topology_version += 1

    def copy(self) -> "QuantumNetwork":
        """Shallow structural copy (nodes/edges are immutable records)."""
        clone = QuantumNetwork()
        clone._nodes = dict(self._nodes)
        clone._edges = dict(self._edges)
        clone._adjacency = {k: set(v) for k, v in self._adjacency.items()}
        return clone

    # ------------------------------------------------------------------
    # Node queries

    def _require_node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(f"node {node_id} does not exist") from None

    def node(self, node_id: int) -> Node:
        """The node record for *node_id*."""
        return self._require_node(node_id)

    def has_node(self, node_id: int) -> bool:
        """True iff *node_id* exists."""
        return node_id in self._nodes

    def nodes(self) -> List[int]:
        """All node ids, ascending."""
        return sorted(self._nodes)

    def switches(self) -> List[int]:
        """Ids of all switch nodes, ascending."""
        return sorted(
            nid for nid, n in self._nodes.items() if n.kind is NodeKind.SWITCH
        )

    def users(self) -> List[int]:
        """Ids of all quantum-user nodes, ascending."""
        return sorted(nid for nid, n in self._nodes.items() if n.kind is NodeKind.USER)

    def position(self, node_id: int) -> Point:
        """Deployment position of *node_id*."""
        return self._require_node(node_id).position

    def qubit_capacity(self, node_id: int) -> Optional[int]:
        """Qubit capacity of *node_id* (``None`` = unlimited, for users)."""
        return self._require_node(node_id).qubit_capacity

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Total edge count."""
        return len(self._edges)

    # ------------------------------------------------------------------
    # Edge / adjacency queries

    def neighbors(self, node_id: int) -> List[int]:
        """Sorted neighbour ids of *node_id*."""
        self._require_node(node_id)
        return sorted(self._adjacency[node_id])

    def degree(self, node_id: int) -> int:
        """Number of incident edges of *node_id*."""
        self._require_node(node_id)
        return len(self._adjacency[node_id])

    def average_degree(self, kind: Optional[NodeKind] = None) -> float:
        """Mean degree over all nodes (or only nodes of the given *kind*)."""
        ids = [
            nid
            for nid, n in self._nodes.items()
            if kind is None or n.kind is kind
        ]
        if not ids:
            return 0.0
        return sum(len(self._adjacency[nid]) for nid in ids) / len(ids)

    def has_edge(self, u: int, v: int) -> bool:
        """True iff an edge between *u* and *v* exists."""
        if u == v:
            return False
        return edge_key(u, v) in self._edges

    def edge(self, u: int, v: int) -> Edge:
        """The edge between *u* and *v*."""
        key = edge_key(u, v)
        try:
            return self._edges[key]
        except KeyError:
            raise EdgeNotFoundError(f"edge {key} does not exist") from None

    def edge_length(self, u: int, v: int) -> float:
        """Euclidean length of the edge between *u* and *v*."""
        return self.edge(u, v).length

    def edges(self) -> List[Edge]:
        """All edges, sorted by canonical key."""
        return [self._edges[k] for k in sorted(self._edges)]

    def edge_keys(self) -> List[EdgeKey]:
        """All canonical edge keys, ascending."""
        return sorted(self._edges)

    # ------------------------------------------------------------------
    # Whole-graph queries

    def connected_components(self) -> List[Set[int]]:
        """Connected components, each a set of node ids, largest first."""
        remaining = set(self._nodes)
        components: List[Set[int]] = []
        while remaining:
            root = next(iter(remaining))
            component = {root}
            frontier = [root]
            while frontier:
                current = frontier.pop()
                for nbr in self._adjacency[current]:
                    if nbr not in component:
                        component.add(nbr)
                        frontier.append(nbr)
            remaining -= component
            components.append(component)
        return sorted(components, key=len, reverse=True)

    def is_connected(self) -> bool:
        """True iff the graph has a single connected component."""
        return len(self.connected_components()) <= 1

    def hop_distance(self, source: int, target: int) -> Optional[int]:
        """Unweighted shortest hop count from *source* to *target*, or
        ``None`` if they are disconnected."""
        self._require_node(source)
        self._require_node(target)
        if source == target:
            return 0
        dist = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for current in frontier:
                for nbr in self._adjacency[current]:
                    if nbr not in dist:
                        dist[nbr] = dist[current] + 1
                        if nbr == target:
                            return dist[nbr]
                        next_frontier.append(nbr)
            frontier = next_frontier
        return None

    def induced_subgraph(self, node_ids: Iterable[int]) -> "QuantumNetwork":
        """The subgraph induced by *node_ids* (copies node/edge records)."""
        keep = set(node_ids)
        sub = QuantumNetwork()
        for nid in sorted(keep):
            sub.add_node(self._require_node(nid))
        for (u, v), edge in self._edges.items():
            if u in keep and v in keep:
                sub.add_edge(u, v, edge.length)
        return sub

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumNetwork(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"users={len(self.users())})"
        )

"""Node types: quantum users and quantum switches."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.utils.geometry import Point


class NodeKind(enum.Enum):
    """Role of a node in the quantum network."""

    USER = "user"
    SWITCH = "switch"


@dataclass(frozen=True)
class Node:
    """A node in the quantum network graph.

    Attributes
    ----------
    node_id:
        Unique integer identifier within one network.
    kind:
        :attr:`NodeKind.USER` or :attr:`NodeKind.SWITCH`.
    position:
        Placement in the deployment area; link lengths are Euclidean
        distances between endpoint positions.
    qubit_capacity:
        Number of communication qubits.  ``None`` means unlimited, which
        the paper assumes for quantum users (virtual machines pooling many
        processors); switches carry a finite capacity.
    """

    node_id: int
    kind: NodeKind
    position: Point
    qubit_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError(f"node_id must be >= 0, got {self.node_id}")
        if self.qubit_capacity is not None and self.qubit_capacity < 0:
            raise ConfigurationError(
                f"qubit_capacity must be >= 0 or None, got {self.qubit_capacity}"
            )

    @property
    def is_switch(self) -> bool:
        """True for relay switches."""
        return self.kind is NodeKind.SWITCH

    @property
    def is_user(self) -> bool:
        """True for quantum users (entanglement endpoints)."""
        return self.kind is NodeKind.USER


def QuantumUser(node_id: int, position: Point) -> Node:
    """Construct a quantum-user node (unlimited communication qubits)."""
    return Node(node_id, NodeKind.USER, position, qubit_capacity=None)


def QuantumSwitch(node_id: int, position: Point, qubit_capacity: int) -> Node:
    """Construct a quantum switch with a finite qubit capacity."""
    if qubit_capacity is None or qubit_capacity < 1:
        raise ConfigurationError(
            f"switch qubit_capacity must be >= 1, got {qubit_capacity}"
        )
    return Node(node_id, NodeKind.SWITCH, position, qubit_capacity=qubit_capacity)

"""Entanglement demands: which user pairs want shared quantum states.

A :class:`Demand` asks for **one** shared quantum state between a pair of
quantum users (the unit the paper's "number of quantum states to be shared"
counts).  The same user pair may appear in several demands — each demanded
state is routed separately and their routes may not share quantum links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class Demand:
    """A request for one shared quantum state between *source* and
    *destination* users.

    ``demand_id`` distinguishes multiple states demanded by the same pair.
    """

    demand_id: int
    source: int
    destination: int

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ConfigurationError(
                f"demand {self.demand_id}: source and destination must differ"
            )

    @property
    def pair(self) -> Tuple[int, int]:
        """Canonical (min, max) user pair."""
        return (
            (self.source, self.destination)
            if self.source < self.destination
            else (self.destination, self.source)
        )


class DemandSet:
    """An ordered collection of demands with pair-level lookups."""

    def __init__(self, demands: Sequence[Demand]):
        ids = [d.demand_id for d in demands]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("demand ids must be unique")
        self._demands = list(demands)

    def __iter__(self) -> Iterator[Demand]:
        return iter(self._demands)

    def __len__(self) -> int:
        return len(self._demands)

    def __getitem__(self, index: int) -> Demand:
        return self._demands[index]

    def by_id(self, demand_id: int) -> Demand:
        """The demand with the given id."""
        for demand in self._demands:
            if demand.demand_id == demand_id:
                return demand
        raise ConfigurationError(f"no demand with id {demand_id}")

    def pairs(self) -> List[Tuple[int, int]]:
        """Distinct user pairs with at least one demand, sorted."""
        return sorted({d.pair for d in self._demands})

    def demands_for_pair(self, u: int, v: int) -> List[Demand]:
        """All demands between users *u* and *v* (order preserved)."""
        key = (u, v) if u < v else (v, u)
        return [d for d in self._demands if d.pair == key]


def generate_demands(
    network: QuantumNetwork,
    num_states: int,
    rng: Optional[RandomState] = None,
    users: Optional[Sequence[int]] = None,
) -> DemandSet:
    """Sample *num_states* demands over random distinct user pairs.

    Pairs are drawn uniformly with replacement across demands (several
    states may be demanded by the same pair, as in the paper's evaluation),
    but each individual demand connects two distinct users.
    """
    rng = ensure_rng(rng)
    if users is None:
        users = network.users()
    users = list(users)
    if len(users) < 2:
        raise ConfigurationError(
            f"need at least 2 quantum users to generate demands, got {len(users)}"
        )
    if num_states < 1:
        raise ConfigurationError(f"num_states must be >= 1, got {num_states}")
    demands = []
    for demand_id in range(num_states):
        i, j = rng.choice(len(users), size=2, replace=False)
        demands.append(Demand(demand_id, users[int(i)], users[int(j)]))
    return DemandSet(demands)

"""Topology registry: address network generators by key + config.

Mirrors the router registry (:mod:`repro.routing.registry`): every
topology family ships as one registered **builder** — a callable taking
a :class:`~repro.network.builder.NetworkConfig` plus an RNG and
returning a :class:`~repro.network.graph.QuantumNetwork` — so the
experiments layer can treat the workload's topology as data (a scenario
spec's ``topology`` key) instead of an if/elif chain at every call
site.  Registering a new family is one decorator::

    @register_topology("my-family", aliases=("mf",))
    def my_family(config, rng):
        ...build and return a QuantumNetwork...

after which ``NetworkConfig(generator="my-family")``, every scenario
spec (``"my-family:switches=64"``) and the ``topology-compare``
experiment can reach it.

``quick_switches`` lets a family adjust CI-scale switch counts so the
shrunk network stays structurally valid — the grid uses it to round to
a perfect square, keeping quick runs square instead of silently
dropping switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.network.graph import QuantumNetwork
from repro.network.topology import (
    aiello_power_law_network,
    barabasi_albert_network,
    erdos_renyi_network,
    grid_network,
    random_geometric_network,
    ring_network,
    watts_strogatz_network,
    waxman_network,
)


class TopologyKeyError(ConfigurationError, ValueError):
    """An unknown or invalid topology generator key.

    Subclasses :class:`ValueError` as well so ``argparse`` type
    callables (and plain callers expecting a ValueError) surface the
    registry's key listing as a normal usage error.
    """


@dataclass(frozen=True)
class TopologyEntry:
    """One registered topology family."""

    key: str
    builder: Callable[..., QuantumNetwork]
    quick_switches: Optional[Callable[[int], int]] = None


_REGISTRY: Dict[str, TopologyEntry] = {}
_ALIASES: Dict[str, str] = {}


def register_topology(
    key: str,
    aliases: Tuple[str, ...] = (),
    quick_switches: Optional[Callable[[int], int]] = None,
):
    """Function decorator registering a ``(config, rng) -> network``
    builder under *key* (plus *aliases*)."""

    def decorate(fn):
        existing = _REGISTRY.get(key)
        if existing is not None and existing.builder is not fn:
            # Silently replacing a builder would poison warm result
            # caches: scenario fingerprints identify the topology by key
            # alone, so old entries would be served for the new builder.
            raise TopologyKeyError(
                f"topology key {key!r} is already registered"
            )
        if _ALIASES.get(key, key) != key:
            raise TopologyKeyError(
                f"topology key {key!r} is already an alias of "
                f"{_ALIASES[key]!r}"
            )
        for alias in aliases:
            if alias in _REGISTRY:
                raise TopologyKeyError(
                    f"alias {alias!r} collides with the registered "
                    f"topology key {alias!r}"
                )
            if _ALIASES.get(alias, key) != key:
                raise TopologyKeyError(
                    f"alias {alias!r} already points to {_ALIASES[alias]!r}"
                )
        _REGISTRY[key] = TopologyEntry(
            key=key, builder=fn, quick_switches=quick_switches
        )
        for alias in aliases:
            _ALIASES[alias] = key
        return fn

    return decorate


def topology_keys() -> List[str]:
    """All registered canonical topology keys, sorted."""
    return sorted(_REGISTRY)


def normalize_topology(key: str) -> str:
    """Resolve *key* (or an alias; ``-``/``_`` interchangeable) to its
    canonical registry key, or raise a :class:`TopologyKeyError` naming
    every supported key."""
    candidate = key.strip().lower().replace("-", "_")
    candidate = _ALIASES.get(candidate, candidate)
    if candidate not in _REGISTRY:
        raise TopologyKeyError(
            f"unknown topology generator {key!r}; supported generators: "
            f"{', '.join(topology_keys())}"
        )
    return candidate


def topology_entry(key: str) -> TopologyEntry:
    """The registry entry for *key* (aliases accepted)."""
    return _REGISTRY[normalize_topology(key)]


def quick_switch_count(key: str, num_switches: int) -> int:
    """*num_switches* adjusted to stay valid for *key* at quick scale.

    Most families take any count unchanged; families with structural
    constraints (the grid must stay square) registered a
    ``quick_switches`` hook that snaps the count to the nearest valid
    value.
    """
    hook = topology_entry(key).quick_switches
    return num_switches if hook is None else hook(num_switches)


# ----------------------------------------------------------------------
# Bundled families.  Each builder adapts the one NetworkConfig record to
# its generator's signature; family-specific knobs without a config
# field (Waxman's distance_scale, Aiello's gamma, ...) keep their
# generator defaults.


@register_topology("waxman")
def _build_waxman(config, rng) -> QuantumNetwork:
    return waxman_network(
        num_switches=config.num_switches,
        average_degree=config.average_degree,
        area=config.area,
        qubit_capacity=config.qubit_capacity,
        num_users=config.num_users,
        user_links=config.user_links,
        rng=rng,
    )


@register_topology("watts_strogatz", aliases=("watts",))
def _build_watts_strogatz(config, rng) -> QuantumNetwork:
    return watts_strogatz_network(
        num_switches=config.num_switches,
        average_degree=config.average_degree,
        area=config.area,
        qubit_capacity=config.qubit_capacity,
        num_users=config.num_users,
        user_links=config.user_links,
        rng=rng,
    )


@register_topology("aiello", aliases=("power_law",))
def _build_aiello(config, rng) -> QuantumNetwork:
    return aiello_power_law_network(
        num_switches=config.num_switches,
        average_degree=config.average_degree,
        area=config.area,
        qubit_capacity=config.qubit_capacity,
        num_users=config.num_users,
        user_links=config.user_links,
        rng=rng,
    )


@register_topology("barabasi_albert", aliases=("ba",))
def _build_barabasi_albert(config, rng) -> QuantumNetwork:
    # Preferential attachment adds ~attachments edges per switch, so the
    # configured average degree maps to degree/2 attachments.
    attachments = max(1, round(config.average_degree / 2.0))
    attachments = min(attachments, config.num_switches - 1)
    return barabasi_albert_network(
        num_switches=config.num_switches,
        attachments=attachments,
        area=config.area,
        qubit_capacity=config.qubit_capacity,
        num_users=config.num_users,
        user_links=config.user_links,
        rng=rng,
    )


@register_topology("random_geometric", aliases=("rgg", "geometric"))
def _build_random_geometric(config, rng) -> QuantumNetwork:
    # radius=None picks the scaled connectivity-threshold default; the
    # configured average degree does not apply to an r-disk graph.
    return random_geometric_network(
        num_switches=config.num_switches,
        area=config.area,
        qubit_capacity=config.qubit_capacity,
        num_users=config.num_users,
        user_links=config.user_links,
        rng=rng,
    )


def _square_switches(num_switches: int) -> int:
    """The perfect square nearest *num_switches* (side >= 2)."""
    side = max(2, round(num_switches**0.5))
    return side * side


@register_topology("grid", quick_switches=_square_switches)
def _build_grid(config, rng) -> QuantumNetwork:
    side = max(2, int(config.num_switches**0.5))
    return grid_network(
        side=side,
        area=config.area,
        qubit_capacity=config.qubit_capacity,
        num_users=config.num_users,
        user_links=config.user_links,
        rng=rng,
    )


@register_topology("ring")
def _build_ring(config, rng) -> QuantumNetwork:
    return ring_network(
        num_switches=config.num_switches,
        area=config.area,
        qubit_capacity=config.qubit_capacity,
        num_users=config.num_users,
        user_links=config.user_links,
        rng=rng,
    )


@register_topology("erdos_renyi", aliases=("er",))
def _build_erdos_renyi(config, rng) -> QuantumNetwork:
    return erdos_renyi_network(
        num_switches=config.num_switches,
        average_degree=config.average_degree,
        area=config.area,
        qubit_capacity=config.qubit_capacity,
        num_users=config.num_users,
        user_links=config.user_links,
        rng=rng,
    )

"""Additional topology families: Barabási-Albert and random geometric.

Not used by the paper's evaluation, but standard comparison families for
entanglement-routing studies; the examples and the robustness benches use
them to probe topology sensitivity beyond Figure 7's three generators.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.graph import QuantumNetwork
from repro.network.topology.base import (
    DEFAULT_AREA,
    DEFAULT_NUM_USERS,
    DEFAULT_QUBIT_CAPACITY,
    DEFAULT_USER_LINKS,
    add_switches,
    attach_users,
    check_backbone_arguments,
    connect_components,
    random_positions,
)
from repro.utils.rng import RandomState, ensure_rng


def barabasi_albert_network(
    num_switches: int = 100,
    attachments: int = 5,
    area: float = DEFAULT_AREA,
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY,
    num_users: int = DEFAULT_NUM_USERS,
    user_links: int = DEFAULT_USER_LINKS,
    rng: Optional[RandomState] = None,
) -> QuantumNetwork:
    """Preferential-attachment backbone (average degree ~ 2 * attachments).

    Each new switch attaches to ``attachments`` existing switches chosen
    with probability proportional to their current degree.
    """
    check_backbone_arguments(num_switches, qubit_capacity)
    if attachments < 1 or attachments >= num_switches:
        raise ConfigurationError(
            f"attachments must be in [1, num_switches), got {attachments}"
        )
    rng = ensure_rng(rng)
    network = QuantumNetwork()
    positions = random_positions(rng, num_switches, area)
    switch_ids = add_switches(network, positions, qubit_capacity)

    # Repeated-nodes list implements preferential attachment in O(E).
    repeated: List[int] = []
    seed_count = attachments + 1
    for i in range(seed_count):
        for j in range(i + 1, seed_count):
            network.add_edge(switch_ids[i], switch_ids[j])
            repeated.extend((switch_ids[i], switch_ids[j]))
    for i in range(seed_count, num_switches):
        new = switch_ids[i]
        targets: set = set()
        while len(targets) < attachments:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            targets.add(pick)
        for target in targets:
            network.add_edge(new, target)
            repeated.extend((new, target))
    attach_users(network, num_users, rng, area, links_per_user=user_links)
    return network


def random_geometric_network(
    num_switches: int = 100,
    radius: Optional[float] = None,
    area: float = DEFAULT_AREA,
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY,
    num_users: int = DEFAULT_NUM_USERS,
    user_links: int = DEFAULT_USER_LINKS,
    rng: Optional[RandomState] = None,
) -> QuantumNetwork:
    """r-disk graph: switches within *radius* of each other are linked.

    ``radius`` defaults to the connectivity threshold
    ``area * sqrt(2 * ln(n) / (pi * n))`` scaled by 1.2, which keeps
    samples connected with high probability; the repair step covers the
    rest.  Physically this models a maximum fibre span.
    """
    check_backbone_arguments(num_switches, qubit_capacity)
    rng = ensure_rng(rng)
    if radius is None:
        radius = 1.2 * area * float(
            np.sqrt(2.0 * np.log(num_switches) / (np.pi * num_switches))
        )
    if radius <= 0:
        raise ConfigurationError(f"radius must be > 0, got {radius}")
    network = QuantumNetwork()
    positions = random_positions(rng, num_switches, area)
    switch_ids = add_switches(network, positions, qubit_capacity)
    coords = np.array([[p.x, p.y] for p in positions])
    diff = coords[:, None, :] - coords[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=2))
    iu, ju = np.triu_indices(num_switches, k=1)
    for i, j in zip(iu, ju):
        if distances[i, j] <= radius:
            network.add_edge(switch_ids[int(i)], switch_ids[int(j)])
    connect_components(network)
    attach_users(network, num_users, rng, area, links_per_user=user_links)
    return network

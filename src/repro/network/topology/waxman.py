"""Waxman random-graph backbone (the paper's default generator).

Waxman's model connects nodes *u*, *v* with probability
``beta * exp(-d(u, v) / (L * scale))`` where ``d`` is the Euclidean
distance and ``L`` the maximum possible distance.  The paper fixes the
average switch degree (default 10) rather than *beta*, so we solve for the
*beta* that makes the expected degree match the target and then sample.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.graph import QuantumNetwork
from repro.network.topology.base import (
    DEFAULT_AREA,
    DEFAULT_NUM_USERS,
    DEFAULT_QUBIT_CAPACITY,
    DEFAULT_USER_LINKS,
    add_switches,
    attach_users,
    check_backbone_arguments,
    connect_components,
    random_positions,
)
from repro.utils.rng import RandomState, ensure_rng


def waxman_network(
    num_switches: int = 100,
    average_degree: float = 10.0,
    area: float = DEFAULT_AREA,
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY,
    num_users: int = DEFAULT_NUM_USERS,
    distance_scale: float = 0.4,
    user_links: int = DEFAULT_USER_LINKS,
    rng: Optional[RandomState] = None,
) -> QuantumNetwork:
    """Generate a Waxman-backbone quantum network with users attached.

    Parameters mirror the paper's evaluation defaults: 100 switches in a
    10k x 10k area, average switch degree 10, 10 qubits per switch.
    ``distance_scale`` is the Waxman locality parameter (larger = longer
    edges become likelier).
    """
    check_backbone_arguments(num_switches, qubit_capacity)
    if average_degree <= 0 or average_degree >= num_switches:
        raise ConfigurationError(
            f"average_degree must be in (0, num_switches), got {average_degree}"
        )
    rng = ensure_rng(rng)
    network = QuantumNetwork()
    positions = random_positions(rng, num_switches, area)
    switch_ids = add_switches(network, positions, qubit_capacity)

    coords = np.array([[p.x, p.y] for p in positions])
    diff = coords[:, None, :] - coords[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=2))
    max_distance = area * math.sqrt(2.0)
    iu, ju = np.triu_indices(num_switches, k=1)
    pair_distances = distances[iu, ju]
    locality = np.exp(-pair_distances / (distance_scale * max_distance))

    # Solve beta so that expected total degree = num_switches * avg_degree.
    target_edges = average_degree * num_switches / 2.0
    total_locality = float(locality.sum())
    if total_locality <= 0:  # pragma: no cover - exp() is positive
        raise ConfigurationError("degenerate Waxman locality weights")
    beta = min(1.0, target_edges / total_locality)
    probabilities = np.minimum(1.0, beta * locality)

    draws = rng.uniform(size=probabilities.shape)
    for i, j, prob, draw in zip(iu, ju, probabilities, draws):
        if draw < prob:
            network.add_edge(switch_ids[int(i)], switch_ids[int(j)])
    connect_components(network)
    attach_users(network, num_users, rng, area, links_per_user=user_links)
    return network

"""Shared helpers for topology generation."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, TopologyError
from repro.network.graph import QuantumNetwork
from repro.network.node import QuantumSwitch, QuantumUser
from repro.utils.geometry import Point
from repro.utils.rng import RandomState, ensure_rng

#: Paper default: a 10k x 10k unit (km) deployment area.
DEFAULT_AREA = 10_000.0

#: Paper default: 10 communication qubits per switch.
DEFAULT_QUBIT_CAPACITY = 10

#: Default number of quantum users attached to the backbone.
DEFAULT_NUM_USERS = 10

#: Default number of access links per user.  Users need several access
#: switches so one saturated switch does not strand every demand of the
#: user (switch qubits are the binding network resource).
DEFAULT_USER_LINKS = 4


def random_positions(
    rng: RandomState, count: int, area: float
) -> List[Point]:
    """Sample *count* uniform positions in an *area* x *area* square."""
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    xs = rng.uniform(0.0, area, size=count)
    ys = rng.uniform(0.0, area, size=count)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def add_switches(
    network: QuantumNetwork,
    positions: Sequence[Point],
    qubit_capacity: int,
) -> List[int]:
    """Add one switch per position; returns the new node ids."""
    ids = []
    for position in positions:
        node_id = network.num_nodes
        network.add_node(QuantumSwitch(node_id, position, qubit_capacity))
        ids.append(node_id)
    return ids


def connect_components(network: QuantumNetwork) -> int:
    """Make the graph connected by adding, per extra component, the
    shortest edge joining it to the main component.

    Random graph families occasionally produce disconnected samples; the
    paper's evaluation implicitly requires connectivity, so generators call
    this as a repair step.  Returns the number of edges added.
    """
    components = network.connected_components()
    added = 0
    while len(components) > 1:
        main, other = components[0], components[1]
        best: Optional[Tuple[float, int, int]] = None
        for u in other:
            pu = network.position(u)
            for v in main:
                d = pu.distance_to(network.position(v))
                if best is None or d < best[0]:
                    best = (d, u, v)
        if best is None:  # pragma: no cover - components are non-empty
            raise TopologyError("cannot connect empty components")
        network.add_edge(best[1], best[2], best[0])
        added += 1
        components = network.connected_components()
    return added


def attach_users(
    network: QuantumNetwork,
    num_users: int,
    rng: RandomState,
    area: float = DEFAULT_AREA,
    links_per_user: int = DEFAULT_USER_LINKS,
) -> List[int]:
    """Place *num_users* quantum users uniformly and connect each to its
    nearest switches.

    Users never connect to users (paper rule).  Each user gets
    ``links_per_user`` edges to its nearest distinct switches, which keeps
    users reachable even when one access switch is depleted.
    """
    if num_users < 2:
        raise ConfigurationError(f"num_users must be >= 2, got {num_users}")
    switches = network.switches()
    if not switches:
        raise TopologyError("cannot attach users: the network has no switches")
    links_per_user = max(1, min(links_per_user, len(switches)))
    user_ids = []
    for position in random_positions(rng, num_users, area):
        node_id = network.num_nodes
        network.add_node(QuantumUser(node_id, position))
        by_distance = sorted(
            switches, key=lambda s: position.distance_to(network.position(s))
        )
        for switch in by_distance[:links_per_user]:
            network.add_edge(node_id, switch)
        user_ids.append(node_id)
    return user_ids


def check_backbone_arguments(num_switches: int, qubit_capacity: int) -> None:
    """Validate the arguments shared by every backbone generator."""
    if num_switches < 2:
        raise ConfigurationError(
            f"num_switches must be >= 2, got {num_switches}"
        )
    if qubit_capacity < 1:
        raise ConfigurationError(
            f"qubit_capacity must be >= 1, got {qubit_capacity}"
        )

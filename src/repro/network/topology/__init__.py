"""Network topology generators.

Every generator returns a connected :class:`~repro.network.graph.QuantumNetwork`
whose switch backbone follows the requested random-graph family, with
quantum users attached to nearby switches (users never connect to users,
matching the paper's network-generation rules).
"""

from repro.network.topology.base import attach_users, connect_components
from repro.network.topology.waxman import waxman_network
from repro.network.topology.watts_strogatz import watts_strogatz_network
from repro.network.topology.aiello import aiello_power_law_network
from repro.network.topology.scale_free import (
    barabasi_albert_network,
    random_geometric_network,
)
from repro.network.topology.regular import (
    erdos_renyi_network,
    grid_network,
    ring_network,
)

__all__ = [
    "attach_users",
    "connect_components",
    "waxman_network",
    "watts_strogatz_network",
    "aiello_power_law_network",
    "grid_network",
    "ring_network",
    "erdos_renyi_network",
    "barabasi_albert_network",
    "random_geometric_network",
]

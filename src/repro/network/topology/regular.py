"""Deterministic and classical random topologies used by tests/examples.

* :func:`grid_network` — the lattice the n-fusion prior work ([20], [21])
  analysed; useful for reproducing their distance-independence intuition.
* :func:`ring_network` — minimal cyclic topology for worked examples.
* :func:`erdos_renyi_network` — G(n, p) control without geometric locality.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError
from repro.network.graph import QuantumNetwork
from repro.network.topology.base import (
    DEFAULT_AREA,
    DEFAULT_NUM_USERS,
    DEFAULT_QUBIT_CAPACITY,
    DEFAULT_USER_LINKS,
    add_switches,
    attach_users,
    check_backbone_arguments,
    connect_components,
    random_positions,
)
from repro.utils.geometry import Point
from repro.utils.rng import RandomState, ensure_rng


def grid_network(
    side: int = 10,
    area: float = DEFAULT_AREA,
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY,
    num_users: int = DEFAULT_NUM_USERS,
    user_links: int = DEFAULT_USER_LINKS,
    rng: Optional[RandomState] = None,
) -> QuantumNetwork:
    """A *side* x *side* switch lattice with users attached at random."""
    if side < 2:
        raise ConfigurationError(f"side must be >= 2, got {side}")
    check_backbone_arguments(side * side, qubit_capacity)
    rng = ensure_rng(rng)
    network = QuantumNetwork()
    spacing = area / (side + 1)
    positions = [
        Point(spacing * (col + 1), spacing * (row + 1))
        for row in range(side)
        for col in range(side)
    ]
    switch_ids = add_switches(network, positions, qubit_capacity)
    for row in range(side):
        for col in range(side):
            here = switch_ids[row * side + col]
            if col + 1 < side:
                network.add_edge(here, switch_ids[row * side + col + 1])
            if row + 1 < side:
                network.add_edge(here, switch_ids[(row + 1) * side + col])
    attach_users(network, num_users, rng, area, links_per_user=user_links)
    return network


def ring_network(
    num_switches: int = 12,
    area: float = DEFAULT_AREA,
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY,
    num_users: int = DEFAULT_NUM_USERS,
    user_links: int = DEFAULT_USER_LINKS,
    rng: Optional[RandomState] = None,
) -> QuantumNetwork:
    """A simple cycle of switches with users attached at random."""
    check_backbone_arguments(num_switches, qubit_capacity)
    rng = ensure_rng(rng)
    import math

    network = QuantumNetwork()
    radius = 0.45 * area
    center = area / 2.0
    positions = [
        Point(
            center + radius * math.cos(2.0 * math.pi * i / num_switches),
            center + radius * math.sin(2.0 * math.pi * i / num_switches),
        )
        for i in range(num_switches)
    ]
    switch_ids = add_switches(network, positions, qubit_capacity)
    for i in range(num_switches):
        network.add_edge(switch_ids[i], switch_ids[(i + 1) % num_switches])
    attach_users(network, num_users, rng, area, links_per_user=user_links)
    return network


def erdos_renyi_network(
    num_switches: int = 100,
    average_degree: float = 10.0,
    area: float = DEFAULT_AREA,
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY,
    num_users: int = DEFAULT_NUM_USERS,
    user_links: int = DEFAULT_USER_LINKS,
    rng: Optional[RandomState] = None,
) -> QuantumNetwork:
    """G(n, p) backbone with p chosen to hit *average_degree*."""
    check_backbone_arguments(num_switches, qubit_capacity)
    if average_degree <= 0 or average_degree >= num_switches:
        raise ConfigurationError(
            f"average_degree must be in (0, num_switches), got {average_degree}"
        )
    rng = ensure_rng(rng)
    network = QuantumNetwork()
    positions = random_positions(rng, num_switches, area)
    switch_ids = add_switches(network, positions, qubit_capacity)
    p = average_degree / (num_switches - 1)
    for i in range(num_switches):
        for j in range(i + 1, num_switches):
            if rng.uniform() < p:
                network.add_edge(switch_ids[i], switch_ids[j])
    connect_components(network)
    attach_users(network, num_users, rng, area, links_per_user=user_links)
    return network

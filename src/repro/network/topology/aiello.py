"""Aiello-style scale-free power-law backbone.

The paper cites Volchenkov & Blanchard's algorithm for power-law random
graphs.  We implement the closest well-defined equivalent available from
first principles: a Chung-Lu expected-degree model whose weights are drawn
from a truncated power law ``P(k) ~ k^-gamma`` and rescaled so the expected
average degree matches the requested target.  The result is a heavy-tailed,
hub-dominated topology with geometric edge lengths, which is the property
the paper's Figure 7 comparison exercises.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.graph import QuantumNetwork
from repro.network.topology.base import (
    DEFAULT_AREA,
    DEFAULT_NUM_USERS,
    DEFAULT_QUBIT_CAPACITY,
    DEFAULT_USER_LINKS,
    add_switches,
    attach_users,
    check_backbone_arguments,
    connect_components,
    random_positions,
)
from repro.utils.rng import RandomState, ensure_rng


def aiello_power_law_network(
    num_switches: int = 100,
    average_degree: float = 10.0,
    area: float = DEFAULT_AREA,
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY,
    num_users: int = DEFAULT_NUM_USERS,
    gamma: float = 2.5,
    user_links: int = DEFAULT_USER_LINKS,
    rng: Optional[RandomState] = None,
) -> QuantumNetwork:
    """Generate a scale-free power-law quantum network.

    ``gamma`` is the power-law exponent of the degree distribution
    (2 < gamma <= 3 is the realistic scale-free regime).
    """
    check_backbone_arguments(num_switches, qubit_capacity)
    if gamma <= 1.0:
        raise ConfigurationError(f"gamma must be > 1, got {gamma}")
    if average_degree <= 0 or average_degree >= num_switches:
        raise ConfigurationError(
            f"average_degree must be in (0, num_switches), got {average_degree}"
        )
    rng = ensure_rng(rng)
    network = QuantumNetwork()
    positions = random_positions(rng, num_switches, area)
    switch_ids = add_switches(network, positions, qubit_capacity)

    # Truncated power-law weights via inverse-transform sampling on
    # k in [1, sqrt(n)]; the cap keeps the Chung-Lu probabilities sane.
    k_min, k_max = 1.0, max(2.0, float(np.sqrt(num_switches) * 2.0))
    u = rng.uniform(size=num_switches)
    exponent = 1.0 - gamma
    weights = (
        (k_max**exponent - k_min**exponent) * u + k_min**exponent
    ) ** (1.0 / exponent)
    weights *= average_degree / weights.mean()

    total = float(weights.sum())
    iu, ju = np.triu_indices(num_switches, k=1)
    probabilities = np.minimum(1.0, weights[iu] * weights[ju] / total)
    draws = rng.uniform(size=probabilities.shape)
    for i, j, prob, draw in zip(iu, ju, probabilities, draws):
        if draw < prob:
            network.add_edge(switch_ids[int(i)], switch_ids[int(j)])
    connect_components(network)
    attach_users(network, num_users, rng, area, links_per_user=user_links)
    return network

"""Watts-Strogatz small-world backbone.

The paper's second generator: a ring lattice where each switch connects to
its ``k`` nearest ring neighbours, with each edge rewired to a random
endpoint with probability ``rewire_probability``.  Switches are placed on a
circle inside the deployment area so edge lengths (and hence link success
probabilities) remain geometrically meaningful.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.network.graph import QuantumNetwork
from repro.network.topology.base import (
    DEFAULT_AREA,
    DEFAULT_NUM_USERS,
    DEFAULT_QUBIT_CAPACITY,
    DEFAULT_USER_LINKS,
    add_switches,
    attach_users,
    check_backbone_arguments,
    connect_components,
)
from repro.utils.geometry import Point
from repro.utils.rng import RandomState, ensure_rng


def watts_strogatz_network(
    num_switches: int = 100,
    average_degree: float = 10.0,
    area: float = DEFAULT_AREA,
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY,
    num_users: int = DEFAULT_NUM_USERS,
    rewire_probability: float = 0.1,
    user_links: int = DEFAULT_USER_LINKS,
    rng: Optional[RandomState] = None,
) -> QuantumNetwork:
    """Generate a Watts-Strogatz small-world quantum network.

    ``average_degree`` maps to the ring-lattice neighbour count ``k``
    (rounded to the nearest even integer, as the lattice requires).
    """
    check_backbone_arguments(num_switches, qubit_capacity)
    if not 0.0 <= rewire_probability <= 1.0:
        raise ConfigurationError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    k = max(2, int(round(average_degree / 2.0)) * 2)
    if k >= num_switches:
        raise ConfigurationError(
            f"average_degree {average_degree} too large for {num_switches} switches"
        )
    rng = ensure_rng(rng)
    network = QuantumNetwork()

    radius = 0.45 * area
    center = area / 2.0
    positions = [
        Point(
            center + radius * math.cos(2.0 * math.pi * i / num_switches),
            center + radius * math.sin(2.0 * math.pi * i / num_switches),
        )
        for i in range(num_switches)
    ]
    switch_ids = add_switches(network, positions, qubit_capacity)

    for i in range(num_switches):
        for offset in range(1, k // 2 + 1):
            j = (i + offset) % num_switches
            u, v = switch_ids[i], switch_ids[j]
            if rng.uniform() < rewire_probability:
                # Rewire the far endpoint to a uniform non-neighbour.
                candidates = [
                    w
                    for w in switch_ids
                    if w != u and not network.has_edge(u, w)
                ]
                if candidates:
                    v = candidates[int(rng.integers(0, len(candidates)))]
            if not network.has_edge(u, v):
                network.add_edge(u, v)
    connect_components(network)
    attach_users(network, num_users, rng, area, links_per_user=user_links)
    return network

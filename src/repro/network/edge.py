"""Edges (quantum links) of the network graph."""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import ConfigurationError

EdgeKey = Tuple[int, int]


def edge_key(u: int, v: int) -> EdgeKey:
    """Canonical undirected key for the edge between nodes *u* and *v*."""
    if u == v:
        raise ConfigurationError(f"self-loop edge ({u}, {v}) is not allowed")
    return (u, v) if u < v else (v, u)


class Edge:
    """An undirected edge carrying quantum links between two nodes.

    The paper assumes edges have effectively unlimited link capacity
    (fibre cores are cheap); the binding resource is switch qubits, so the
    edge itself only records its endpoints and Euclidean length.  Endpoints
    are canonicalised so ``Edge(2, 1, L) == Edge(1, 2, L)``.
    """

    __slots__ = ("u", "v", "length")

    def __init__(self, u: int, v: int, length: float):
        a, b = edge_key(u, v)
        if length < 0:
            raise ConfigurationError(f"edge length must be >= 0, got {length}")
        self.u = a
        self.v = b
        self.length = float(length)

    @property
    def key(self) -> EdgeKey:
        """Canonical (min, max) endpoint tuple."""
        return (self.u, self.v)

    def other_endpoint(self, node: int) -> int:
        """The endpoint opposite *node*."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ConfigurationError(f"node {node} is not an endpoint of edge {self.key}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self.key == other.key and self.length == other.length

    def __hash__(self) -> int:
        return hash((self.key, self.length))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Edge({self.u}, {self.v}, length={self.length:.3f})"

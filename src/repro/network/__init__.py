"""Quantum network model: nodes, links, the network graph and topologies.

The network follows the paper's Section III model:

* **Quantum users** request end-to-end entangled states; they have
  effectively unlimited communication qubits and connect only to switches.
* **Quantum switches** relay entanglement via n-fusion; each holds a
  limited number of communication qubits (the binding resource).
* **Quantum links** connect adjacent nodes over fibre; a *channel* of
  width w places w parallel links on one edge for one demanded state.
* Topology generators, addressed through a registry
  (:mod:`repro.network.registry`): Waxman (the paper's default),
  Watts-Strogatz, Aiello power-law, Barabasi-Albert, random-geometric,
  grid, ring and Erdos-Renyi — ``register_topology`` adds new families.
"""

from repro.network.node import Node, NodeKind, QuantumSwitch, QuantumUser
from repro.network.edge import Edge, edge_key
from repro.network.graph import QuantumNetwork
from repro.network.demands import Demand, DemandSet, generate_demands
from repro.network.builder import NetworkConfig, build_network
from repro.network.registry import (
    TopologyKeyError,
    normalize_topology,
    register_topology,
    topology_keys,
)
from repro.network.serialization import load_instance, save_instance
from repro.network.topology import (
    aiello_power_law_network,
    barabasi_albert_network,
    erdos_renyi_network,
    grid_network,
    random_geometric_network,
    ring_network,
    watts_strogatz_network,
    waxman_network,
)

#: Names re-exported lazily from :mod:`repro.routing.compiled`.  The
#: CSR snapshot is conceptually a network-layer artifact, but it lives
#: beside the kernels that consume it; a top-level import here would
#: cycle (routing imports the network modules), so resolve on access.
_COMPILED_EXPORTS = ("CompiledNetwork", "compile_network")


def __getattr__(name):
    if name in _COMPILED_EXPORTS:
        import repro.routing.compiled as _compiled

        return getattr(_compiled, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Node",
    "NodeKind",
    "CompiledNetwork",
    "compile_network",
    "QuantumSwitch",
    "QuantumUser",
    "Edge",
    "edge_key",
    "QuantumNetwork",
    "Demand",
    "DemandSet",
    "generate_demands",
    "NetworkConfig",
    "build_network",
    "load_instance",
    "save_instance",
    "waxman_network",
    "watts_strogatz_network",
    "aiello_power_law_network",
    "grid_network",
    "ring_network",
    "erdos_renyi_network",
    "barabasi_albert_network",
    "random_geometric_network",
    "TopologyKeyError",
    "normalize_topology",
    "register_topology",
    "topology_keys",
]

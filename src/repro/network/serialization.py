"""JSON (de)serialisation of networks and demand sets.

Experiments become portable artefacts: a topology sampled once can be
saved next to its measured results and re-loaded bit-exactly later, which
is how the repository pins regression baselines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import ConfigurationError
from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.network.node import Node, NodeKind
from repro.utils.geometry import Point

FORMAT_VERSION = 1


def network_to_dict(network: QuantumNetwork) -> Dict:
    """Plain-dict representation of *network* (JSON-ready)."""
    return {
        "format_version": FORMAT_VERSION,
        "nodes": [
            {
                "id": node_id,
                "kind": network.node(node_id).kind.value,
                "x": network.position(node_id).x,
                "y": network.position(node_id).y,
                "qubit_capacity": network.qubit_capacity(node_id),
            }
            for node_id in network.nodes()
        ],
        "edges": [
            {"u": edge.u, "v": edge.v, "length": edge.length}
            for edge in network.edges()
        ],
    }


def network_from_dict(data: Dict) -> QuantumNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported network format version {version!r}"
        )
    network = QuantumNetwork()
    for entry in data["nodes"]:
        try:
            kind = NodeKind(entry["kind"])
            node = Node(
                node_id=int(entry["id"]),
                kind=kind,
                position=Point(float(entry["x"]), float(entry["y"])),
                qubit_capacity=(
                    None
                    if entry["qubit_capacity"] is None
                    else int(entry["qubit_capacity"])
                ),
            )
        except (KeyError, ValueError) as exc:
            raise ConfigurationError(f"malformed node entry {entry!r}") from exc
        network.add_node(node)
    for entry in data["edges"]:
        try:
            network.add_edge(
                int(entry["u"]), int(entry["v"]), float(entry["length"])
            )
        except (KeyError, ValueError) as exc:
            raise ConfigurationError(f"malformed edge entry {entry!r}") from exc
    return network


def demands_to_dict(demands: DemandSet) -> Dict:
    """Plain-dict representation of a demand set."""
    return {
        "format_version": FORMAT_VERSION,
        "demands": [
            {
                "id": demand.demand_id,
                "source": demand.source,
                "destination": demand.destination,
            }
            for demand in demands
        ],
    }


def demands_from_dict(data: Dict) -> DemandSet:
    """Rebuild a demand set from :func:`demands_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported demands format version {version!r}"
        )
    demands = []
    for entry in data["demands"]:
        try:
            demands.append(
                Demand(
                    int(entry["id"]),
                    int(entry["source"]),
                    int(entry["destination"]),
                )
            )
        except (KeyError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed demand entry {entry!r}"
            ) from exc
    return DemandSet(demands)


def save_instance(
    path: Union[str, Path],
    network: QuantumNetwork,
    demands: DemandSet,
) -> None:
    """Write a (network, demands) instance as one JSON file."""
    payload = {
        "network": network_to_dict(network),
        "demands": demands_to_dict(demands),
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_instance(path: Union[str, Path]):
    """Load a (network, demands) instance saved by :func:`save_instance`."""
    payload = json.loads(Path(path).read_text())
    try:
        network_data = payload["network"]
        demand_data = payload["demands"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed instance file {path}") from exc
    return network_from_dict(network_data), demands_from_dict(demand_data)

"""High-level network construction from a single configuration record."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.network.graph import QuantumNetwork
from repro.network.registry import topology_entry
from repro.network.topology.base import (
    DEFAULT_AREA,
    DEFAULT_NUM_USERS,
    DEFAULT_QUBIT_CAPACITY,
    DEFAULT_USER_LINKS,
)
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters describing one network sample.

    Defaults reproduce the paper's evaluation setting (Section V-A):
    Waxman topology, 10k x 10k area, 100 switches, average degree 10,
    10 qubits per switch.
    """

    generator: str = "waxman"
    num_switches: int = 100
    average_degree: float = 10.0
    area: float = DEFAULT_AREA
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY
    num_users: int = DEFAULT_NUM_USERS
    user_links: int = DEFAULT_USER_LINKS

    def with_updates(self, **kwargs) -> "NetworkConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


def build_network(
    config: NetworkConfig, rng: Optional[RandomState] = None
) -> QuantumNetwork:
    """Instantiate one network sample from *config*.

    Dispatches through the topology registry
    (:mod:`repro.network.registry`): any registered generator key or
    alias is a valid ``config.generator``; an unknown key raises a
    ``ValueError`` naming every supported generator.  ``grid`` rounds
    ``num_switches`` down to a square.
    """
    rng = ensure_rng(rng)
    return topology_entry(config.generator).builder(config, rng)

"""High-level network construction from a single configuration record."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.exceptions import ConfigurationError
from repro.network.graph import QuantumNetwork
from repro.network.topology import (
    aiello_power_law_network,
    erdos_renyi_network,
    grid_network,
    ring_network,
    watts_strogatz_network,
    waxman_network,
)
from repro.network.topology.base import (
    DEFAULT_AREA,
    DEFAULT_NUM_USERS,
    DEFAULT_QUBIT_CAPACITY,
    DEFAULT_USER_LINKS,
)
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters describing one network sample.

    Defaults reproduce the paper's evaluation setting (Section V-A):
    Waxman topology, 10k x 10k area, 100 switches, average degree 10,
    10 qubits per switch.
    """

    generator: str = "waxman"
    num_switches: int = 100
    average_degree: float = 10.0
    area: float = DEFAULT_AREA
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY
    num_users: int = DEFAULT_NUM_USERS
    user_links: int = DEFAULT_USER_LINKS

    def with_updates(self, **kwargs) -> "NetworkConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


def build_network(
    config: NetworkConfig, rng: Optional[RandomState] = None
) -> QuantumNetwork:
    """Instantiate one network sample from *config*.

    Supported generators: ``waxman``, ``watts_strogatz``, ``aiello``,
    ``grid`` (num_switches is rounded down to a square), ``ring`` and
    ``erdos_renyi``.
    """
    rng = ensure_rng(rng)
    name = config.generator.lower().replace("-", "_")
    if name == "waxman":
        return waxman_network(
            num_switches=config.num_switches,
            average_degree=config.average_degree,
            area=config.area,
            qubit_capacity=config.qubit_capacity,
            num_users=config.num_users,
            user_links=config.user_links,
            rng=rng,
        )
    if name in ("watts_strogatz", "watts"):
        return watts_strogatz_network(
            num_switches=config.num_switches,
            average_degree=config.average_degree,
            area=config.area,
            qubit_capacity=config.qubit_capacity,
            num_users=config.num_users,
            user_links=config.user_links,
            rng=rng,
        )
    if name in ("aiello", "power_law"):
        return aiello_power_law_network(
            num_switches=config.num_switches,
            average_degree=config.average_degree,
            area=config.area,
            qubit_capacity=config.qubit_capacity,
            num_users=config.num_users,
            user_links=config.user_links,
            rng=rng,
        )
    if name == "grid":
        side = max(2, int(config.num_switches**0.5))
        return grid_network(
            side=side,
            area=config.area,
            qubit_capacity=config.qubit_capacity,
            num_users=config.num_users,
            user_links=config.user_links,
            rng=rng,
        )
    if name == "ring":
        return ring_network(
            num_switches=config.num_switches,
            area=config.area,
            qubit_capacity=config.qubit_capacity,
            num_users=config.num_users,
            user_links=config.user_links,
            rng=rng,
        )
    if name in ("erdos_renyi", "er"):
        return erdos_renyi_network(
            num_switches=config.num_switches,
            average_degree=config.average_degree,
            area=config.area,
            qubit_capacity=config.qubit_capacity,
            num_users=config.num_users,
            user_links=config.user_links,
            rng=rng,
        )
    raise ConfigurationError(f"unknown topology generator {config.generator!r}")

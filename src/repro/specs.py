"""The shared ``key[:name=value,...]`` spec-string grammar.

Six user-facing configuration grammars share this base:
:class:`~repro.routing.registry.RouterSpec`,
:class:`~repro.experiments.scenarios.ScenarioSpec`,
:class:`~repro.experiments.estimators.EstimatorSpec`,
:class:`~repro.service.arrivals.ArrivalSpec`,
:class:`~repro.service.faults.FaultSpec` and
:class:`~repro.service.faults.RepairSpec`.  Each used to hand-roll
the same ``partition``/``split`` tokenizer with slightly different
error wording; this module centralises the grammar so

* parse errors are uniform — malformed items, duplicates and unknown
  parameter names are reported identically, and unknown-name errors
  always list the valid names;
* the value grammar (``true``/``false``/``none``/int/float/str) and its
  inverse are written once, with the round-trip checks that keep every
  constructible spec printable and re-parseable;
* ``parse`` / ``to_string`` / ``config_dict`` form one uniform surface
  (``parse`` is the canonical entry point; ``from_string`` remains on
  every subclass as the historical spelling).

The grammar itself is unchanged — spec strings that parsed before parse
to the same values, ``to_string`` emits the same text, and every
``config_dict``/``fingerprint`` is byte-identical, so cache keys do not
move (asserted in ``tests/test_specs.py`` against frozen digests).

Grammar variations are explicit flags, not subclass copies:

* ``forbid_eq_in_value`` — ``RouterSpec`` rejects ``=`` in values
  symmetrically with what its ``to_string`` can emit; the default
  keeps ``=`` in the value (``str.partition`` semantics), which is how
  ``ArrivalSpec`` nests its one-parameter hold grammar
  (``hold=exp:mean=30``).
* ``allow_empty_value`` — ``RouterSpec`` accepts ``name=`` (an empty
  string value); the others require a non-empty value.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.exceptions import ConfigurationError


class SpecError(ConfigurationError, ValueError):
    """A spec string's key, parameter or value is invalid.

    Subclasses :class:`ValueError` so ``argparse`` type callables can
    surface the message as a normal usage error.  Each grammar raises
    its own subclass (``RouterSpecError``, ``ScenarioSpecError``,
    ``EstimatorSpecError``, ``ArrivalSpecError``, ``FaultSpecError``),
    so existing ``except`` clauses keep working while ``except
    SpecError`` catches any of them.
    """


# ----------------------------------------------------------------------
# Value grammar


def parse_value(text: str):
    """Spec-string value syntax: bool / none / int / float / str."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def check_spec_string(value: str, error: Type[SpecError] = SpecError) -> str:
    """Reject str values the spec grammar cannot re-parse.

    Separators and surrounding whitespace are lost in parsing;
    numeric-looking strings are fine — declared-type coercion in the
    owning spec restores them to str on the way back in.
    """
    if any(sep in value for sep in ",:=") or value != value.strip():
        raise error(
            f"string parameter value {value!r} does not survive a "
            "spec-string round trip"
        )
    return value


def format_value(value, error: Type[SpecError] = SpecError) -> str:
    """Inverse of :func:`parse_value`; rejects unrepresentable values."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "none"
    if isinstance(value, str):
        return check_spec_string(value, error)
    rendered = repr(value) if isinstance(value, float) else str(value)
    if parse_value(rendered) != value:
        # E.g. a container value on an unannotated custom field: its
        # str() form would parse back as something else entirely.
        raise error(
            f"parameter value {value!r} does not survive a spec-string "
            "round trip"
        )
    return rendered


# ----------------------------------------------------------------------
# Tokenizer


def split_spec(
    text: str, what: str, error: Type[SpecError] = SpecError
) -> Tuple[str, Optional[str]]:
    """Split ``"key[:rest]"`` into ``(key, rest)``.

    ``rest`` is ``None`` when no ``:`` separator is present (so
    ``"key:"`` yields ``(key, "")`` — an empty parameter list — and the
    caller can tell the two apart).  An empty key raises.
    """
    key, sep, rest = text.strip().partition(":")
    if not key:
        raise error(f"empty {what} key in spec {text!r}")
    return key, (rest if sep else None)


def parse_params(
    rest: str,
    *,
    text: str,
    what: str,
    error: Type[SpecError] = SpecError,
    valid: Optional[Sequence[str]] = None,
    forbid_eq_in_value: bool = False,
    allow_empty_value: bool = False,
) -> Dict[str, str]:
    """Tokenize ``"name=value,name=value"`` into an ordered dict of raw
    string values.

    Uniform error policy across every spec grammar: a missing ``=`` or
    empty name (or empty value, unless allowed) is *malformed*; a
    repeated name is a *duplicate*; names outside *valid* (when given)
    are reported together, sorted, with the valid names listed.  Value
    conversion stays with the caller — each grammar has its own value
    rules — so this function never loses information.
    """
    params: Dict[str, str] = {}
    for item in rest.split(","):
        name, eq, value = item.partition("=")
        name, value = name.strip(), value.strip()
        malformed = (
            not eq
            or not name
            or (not value and not allow_empty_value)
            or (forbid_eq_in_value and "=" in value)
        )
        if malformed:
            raise error(
                f"malformed parameter {item!r} in {what} spec {text!r}; "
                "expected name=value"
            )
        if name in params:
            raise error(
                f"duplicate parameter {name!r} in {what} spec {text!r}"
            )
        params[name] = value
    if valid is not None:
        unknown = sorted(set(params) - set(valid))
        if unknown:
            raise error(
                f"unknown parameter(s) "
                f"{', '.join(repr(u) for u in unknown)} in {what} spec "
                f"{text!r}; valid parameters: {', '.join(sorted(valid))}"
            )
    return params


class SpecBase:
    """Mixin giving a spec dataclass the uniform grammar surface.

    Subclasses set ``spec_what`` (the noun used in error messages) and
    ``spec_error`` (their :class:`SpecError` subclass), implement
    ``from_string`` / ``to_string``, and inherit:

    * :meth:`parse` — the canonical entry point (an alias of
      ``from_string`` so historical call sites keep working);
    * ``__str__`` — the spec string;
    * :meth:`config_dict` — every dataclass field, JSON-ready, the
      identity that feeds cache keys (override when identity is not the
      field set — e.g. trace arrivals hash the file contents).

    Helper wrappers bind ``spec_what``/``spec_error`` so subclasses
    never repeat them: ``_split_spec(text)``, ``_parse_params(...)``,
    ``_format_value(value)``.
    """

    #: Noun naming the grammar in error messages ("router", ...).
    spec_what: str = "spec"
    #: The SpecError subclass this grammar raises.
    spec_error: Type[SpecError] = SpecError

    @classmethod
    def parse(cls, text: str):
        """Parse a spec string (alias of ``from_string``)."""
        return cls.from_string(text)

    @classmethod
    def from_string(cls, text: str):
        raise NotImplementedError

    def to_string(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_string()

    def config_dict(self) -> Dict:
        """Stable, JSON-ready identity for cache keys: every field."""
        return dataclasses.asdict(self)

    # -- bound helpers -------------------------------------------------

    @classmethod
    def _split_spec(cls, text: str) -> Tuple[str, Optional[str]]:
        return split_spec(text, cls.spec_what, cls.spec_error)

    @classmethod
    def _parse_params(cls, rest: str, *, text: str, **kwargs) -> Dict[str, str]:
        return parse_params(
            rest, text=text, what=cls.spec_what, error=cls.spec_error,
            **kwargs,
        )

    @classmethod
    def _format_value(cls, value) -> str:
        return format_value(value, cls.spec_error)


def spec_subclasses() -> List[type]:
    """Every registered spec grammar (imported lazily; the subclasses
    live in heavier packages this base module must not pull in)."""
    from repro.experiments.estimators import EstimatorSpec
    from repro.experiments.scenarios import ScenarioSpec
    from repro.routing.registry import RouterSpec
    from repro.service.arrivals import ArrivalSpec
    from repro.service.faults import FaultSpec, RepairSpec

    return [
        RouterSpec, ScenarioSpec, EstimatorSpec, ArrivalSpec,
        FaultSpec, RepairSpec,
    ]

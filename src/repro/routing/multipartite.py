"""Multipartite GHZ-state routing (extension / future work).

The paper restricts shared states to *pairs* of users and names
multipartite distribution as the natural next step ("the transmitted
quantum information can be ... a GHZ state").  n-fusion makes k-user GHZ
distribution structurally easy: if every user holds one qubit of a Bell
pair whose other half sits at a common *fusion center*, one k-GHZ
measurement at the center leaves the k user qubits in a GHZ_k state.

:class:`MultipartiteRouter` implements the star strategy on top of the
paper's machinery:

1. candidate centers are ranked by the product of the best per-user path
   rates (Algorithm 1 runs once per user with the center as target);
2. the best center's per-user paths are admitted against the qubit
   ledger (the center additionally spends one qubit per user for the
   final fusion, within its capacity);
3. the star's rate is ``q_center * prod_u P(path_u)`` — every arm must
   deliver and the central fusion must succeed.

This deliberately reuses Algorithm 1's metric and the ledger, so all the
paper's constraints (capacity, user-endpoints-only) carry over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CapacityError, ConfigurationError, RoutingError
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.allocation import QubitLedger
from repro.routing.metrics import ChannelRateCache


@dataclass(frozen=True)
class MultipartiteDemand:
    """A request for one GHZ state shared by *users* (k >= 2)."""

    demand_id: int
    users: Tuple[int, ...]

    def __init__(self, demand_id: int, users: Sequence[int]):
        user_tuple = tuple(int(u) for u in users)
        if len(set(user_tuple)) != len(user_tuple) or len(user_tuple) < 2:
            raise ConfigurationError(
                f"a multipartite demand needs >= 2 distinct users, got {users}"
            )
        object.__setattr__(self, "demand_id", demand_id)
        object.__setattr__(self, "users", user_tuple)

    @property
    def size(self) -> int:
        """Number of users (the k of the GHZ_k state)."""
        return len(self.users)


@dataclass(frozen=True)
class StarRoute:
    """A fusion-center star serving one multipartite demand."""

    demand_id: int
    center: int
    arms: Dict[int, Tuple[int, ...]]  # user -> path user..center
    rate: float

    @property
    def fusion_arity(self) -> int:
        """Links the center fuses for the final GHZ measurement."""
        return len(self.arms)


@dataclass
class MultipartiteRouter:
    """Star-topology GHZ distribution via a fusion center."""

    width: int = 1
    candidate_centers: int = 10

    def route_demand(
        self,
        network: QuantumNetwork,
        demand: MultipartiteDemand,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
        ledger: Optional[QubitLedger] = None,
        rate_cache: Optional[ChannelRateCache] = None,
    ) -> Optional[StarRoute]:
        """Best star route for one demand, or ``None`` if infeasible.

        When *ledger* is given, the chosen star's qubits are reserved.
        ``rate_cache`` shares memoised channel rates (and the compiled
        core's network snapshot) across the center x user searches; one
        is created per call when not handed down.
        """
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        working = ledger if ledger is not None else QubitLedger(network)
        if rate_cache is None:
            rate_cache = ChannelRateCache(network, link_model)
        best: Optional[StarRoute] = None
        for center in self._candidate_centers(network, demand):
            star = self._evaluate_center(
                network, demand, center, link_model, swap_model, working,
                rate_cache,
            )
            if star is not None and (best is None or star.rate > best.rate):
                best = star
        if best is not None and ledger is not None:
            self._reserve(network, best, ledger)
        return best

    def route_all(
        self,
        network: QuantumNetwork,
        demands: Sequence[MultipartiteDemand],
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
    ) -> Dict[int, StarRoute]:
        """Route demands sequentially on a shared ledger."""
        # Normalise once so every demand shares the same model instances
        # — and therefore one rate cache and one compiled snapshot.
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        ledger = QubitLedger(network)
        rate_cache = ChannelRateCache(network, link_model)
        routes: Dict[int, StarRoute] = {}
        for demand in demands:
            star = self.route_demand(
                network, demand, link_model, swap_model, ledger, rate_cache
            )
            if star is not None:
                routes[demand.demand_id] = star
        return routes

    # ------------------------------------------------------------------

    def _candidate_centers(
        self, network: QuantumNetwork, demand: MultipartiteDemand
    ) -> List[int]:
        """Switches ranked by total distance to the demand's users."""
        positions = [network.position(u) for u in demand.users]

        def spread(switch: int) -> float:
            p = network.position(switch)
            return sum(p.distance_to(q) for q in positions)

        ranked = sorted(network.switches(), key=spread)
        return ranked[: self.candidate_centers]

    def _evaluate_center(
        self,
        network: QuantumNetwork,
        demand: MultipartiteDemand,
        center: int,
        link_model: LinkModel,
        swap_model: SwapModel,
        ledger: QubitLedger,
        rate_cache: ChannelRateCache,
    ) -> Optional[StarRoute]:
        # The center must be able to hold one qubit per arm on top of the
        # per-arm relay qubits charged by the paths themselves.
        if not ledger.has_at_least(center, demand.size * self.width):
            return None
        arms: Dict[int, Tuple[int, ...]] = {}
        rate = swap_model.success_probability(demand.size)
        used_nodes: set = set()
        for user in demand.users:
            found = largest_entanglement_rate_path(
                network,
                link_model,
                swap_model,
                user,
                center,
                width=self.width,
                ledger=ledger,
                banned_nodes=frozenset(used_nodes),
                rate_cache=rate_cache,
            )
            if found is None:
                return None
            nodes, arm_rate = found
            arms[user] = nodes
            rate *= arm_rate
            # Arms must be internally disjoint so one switch failure does
            # not correlate two arms (and so qubit charges are distinct).
            used_nodes.update(nodes[1:-1])
        return StarRoute(demand.demand_id, center, arms, rate)

    def _reserve(
        self, network: QuantumNetwork, star: StarRoute, ledger: QubitLedger
    ) -> None:
        try:
            for nodes in star.arms.values():
                for a, b in zip(nodes, nodes[1:]):
                    ledger.reserve_edge(a, b, self.width)
        except CapacityError as exc:  # pragma: no cover - guarded upstream
            raise RoutingError(
                f"star for demand {star.demand_id} no longer fits"
            ) from exc

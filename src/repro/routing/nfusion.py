"""ALG-N-FUSION — the paper's complete entanglement routing algorithm.

Composes the three steps of Section IV-C:

1. **Path set construction** — Algorithm 2 (Yen + Algorithm 1) builds up
   to ``h`` candidate paths per width for every demand, ignoring resource
   contention between candidates.
2. **Route determination** — Algorithm 3 admits paths widest-and-best
   first, merging same-demand paths into flow-like graphs and charging the
   qubit ledger.
3. **Residual assignment** — Algorithm 4 spends leftover qubits on extra
   parallel links where they raise the entanglement rate most.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.network.demands import DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg2_path_selection import default_max_width, select_paths
from repro.routing.alg3_merge import admit_paths, admit_paths_efficiency
from repro.routing.alg4_residual import assign_remaining_qubits
from repro.routing.allocation import QubitLedger
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.routing.plan import RoutingPlan
from repro.routing.registry import register_router


@dataclass(frozen=True)
class RoutingResult:
    """Outcome of running a routing algorithm on one network + demand set.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name (used in experiment tables).
    plan:
        The chosen routes.
    total_rate:
        Network entanglement rate (expected number of shared states).
    demand_rates:
        Analytic per-demand rates; unrouted demands are absent.
    remaining_qubits:
        Free switch qubits left after routing.
    """

    algorithm: str
    plan: RoutingPlan
    total_rate: float
    demand_rates: Dict[int, float]
    remaining_qubits: int

    @property
    def num_routed(self) -> int:
        """Number of demands that received a route."""
        return len(self.demand_rates)


@register_router("alg-n-fusion", aliases=("nfusion", "alg-n"))
@dataclass
class AlgNFusion:
    """The paper's ALG-N-FUSION router.

    Parameters
    ----------
    h:
        Number of candidate paths per width per demand (Algorithm 2's h).
    max_width:
        Largest channel width to consider; defaults to half the largest
        switch capacity (an intermediate switch needs 2w qubits).
    include_alg4:
        Disable to obtain the paper's "Alg-3" ablation series.
    """

    h: int = 3
    max_width: Optional[int] = None
    include_alg4: bool = True
    refill_rounds: int = 2
    admission_policy: str = "efficiency"
    max_hops: Optional[int] = None
    name: str = "ALG-N-FUSION"

    @property
    def algorithm_label(self) -> str:
        """The series label ``route()`` will report, knowable upfront."""
        return self.name if self.include_alg4 else f"{self.name} (Alg-3 only)"

    def with_fidelity_constraint(self, fidelity_model, min_fidelity: float
                                 ) -> "AlgNFusion":
        """A copy whose candidate paths all meet *min_fidelity* end-to-end
        under *fidelity_model* (a hop-count bound in the Werner-product
        model — see :class:`repro.quantum.fidelity.FidelityModel`)."""
        from dataclasses import replace

        return replace(self, max_hops=fidelity_model.max_hops(min_fidelity))

    def _admit(self, network, link_model, swap_model, demands, path_sets,
               flows, ledger, rate_cache=None) -> int:
        """Dispatch one admission sweep to the configured policy."""
        if self.admission_policy == "efficiency":
            return admit_paths_efficiency(
                network, link_model, swap_model, demands, path_sets, flows,
                ledger, rate_cache=rate_cache,
            )
        if self.admission_policy == "widest_first":
            return admit_paths(network, demands, path_sets, flows, ledger)
        raise ValueError(
            f"unknown admission_policy {self.admission_policy!r}; "
            "expected 'efficiency' or 'widest_first'"
        )

    def route(
        self,
        network: QuantumNetwork,
        demands: DemandSet,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
    ) -> RoutingResult:
        """Compute routes for *demands* and return the analytic result."""
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        max_width = self.max_width or default_max_width(network)
        # One memoised channel-rate table for the whole routing call:
        # Step I, every refill sweep and every demand share it.
        rate_cache = ChannelRateCache(network, link_model)

        # Step I: candidate path sets (full capacities; reuse allowed).
        path_sets = {
            demand.demand_id: select_paths(
                network,
                link_model,
                swap_model,
                demand,
                h=self.h,
                max_width=max_width,
                max_hops=self.max_hops,
                rate_cache=rate_cache,
            )
            for demand in demands
        }

        # Step II: admission + merging against the real qubit budget.
        ledger = QubitLedger(network)
        flows: Dict[int, FlowLikeGraph] = {}
        self._admit(network, link_model, swap_model, demands, path_sets,
                    flows, ledger, rate_cache)

        # Refill sweeps: candidates from Step I were selected against full
        # capacities, so contention can block them at admission time even
        # while qubits remain elsewhere.  Each refill round re-selects
        # paths against the *residual* ledger — for every demand, since a
        # residual path can serve an unrouted demand or merge into an
        # existing flow as an extra branch — and runs the same admission
        # policy.  This keeps ALG-N-FUSION a strict superset of the
        # baselines (implementation note in DESIGN.md; the paper's
        # Algorithm 3 leaves the contention-blocked case unspecified).
        for _ in range(self.refill_rounds):
            refill_sets = {}
            for demand in demands:
                selected = select_paths(
                    network,
                    link_model,
                    swap_model,
                    demand,
                    h=self.h,
                    max_width=max_width,
                    ledger=ledger,
                    max_hops=self.max_hops,
                    rate_cache=rate_cache,
                )
                if selected:
                    refill_sets[demand.demand_id] = selected
            if not refill_sets:
                break
            if self._admit(network, link_model, swap_model, demands,
                           refill_sets, flows, ledger, rate_cache) == 0:
                break

        plan = RoutingPlan()
        for flow in flows.values():
            plan.add_flow(flow)

        # Step III: spend the leftovers.
        if self.include_alg4:
            assign_remaining_qubits(
                network, link_model, swap_model, plan, ledger,
                rate_cache=rate_cache,
            )

        demand_rates = plan.demand_rates(
            network, link_model, swap_model, rate_cache
        )
        return RoutingResult(
            algorithm=self.algorithm_label,
            plan=plan,
            total_rate=sum(demand_rates.values()),
            demand_rates=demand_rates,
            remaining_qubits=ledger.total_free_switch_qubits(),
        )

    @staticmethod
    def _residual_max_width(network: QuantumNetwork,
                            ledger: QubitLedger) -> int:
        """``default_max_width`` computed from the ledger's remaining
        counts — what ``default_max_width`` would report on a network
        whose switch capacities are the residual."""
        capacities = [
            int(ledger.remaining(s))
            for s in network.switches()
            if network.qubit_capacity(s) is not None
        ]
        if not capacities:
            return 1
        return max(1, max(capacities) // 2)

    def route_online(
        self,
        network: QuantumNetwork,
        demand,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
        *,
        ledger: QubitLedger,
        rate_cache: Optional[ChannelRateCache] = None,
        banned_nodes: FrozenSet[int] = frozenset(),
        banned_edges: FrozenSet[Tuple[int, int]] = frozenset(),
    ) -> RoutingResult:
        """Route ONE arriving demand against the residual in *ledger*.

        ``banned_nodes``/``banned_edges`` mask elements out of every
        candidate search (the serving loop passes its down-element
        sets) — decision-identical to routing on a residual view from
        which those elements were removed.

        The serving loop's incremental re-planning interface.  Decision-
        identical to :meth:`route` on a network whose switch capacities
        are the ledger's remaining counts (same candidate search — the
        residual view's "full capacities" *are* the ledger — admission
        policy, refill sweeps and, when enabled, Algorithm 4), so the
        ``incremental`` and ``resnapshot`` serving modes produce the
        same flows and rates bit-for-bit.  The difference is cost: the
        session-long *rate_cache* (with the compiled snapshot and
        journal-patched relay-feasibility flags hanging off it) carries
        over between arrivals instead of being rebuilt per arrival.

        Admitted qubits stay reserved in *ledger* when this returns;
        releasing them when the flow departs is the caller's job.
        """
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        max_width = self.max_width or self._residual_max_width(
            network, ledger
        )
        if rate_cache is None:
            rate_cache = ChannelRateCache(network, link_model)
        demands = DemandSet([demand])

        path_sets = {
            demand.demand_id: select_paths(
                network,
                link_model,
                swap_model,
                demand,
                h=self.h,
                max_width=max_width,
                ledger=ledger,
                max_hops=self.max_hops,
                rate_cache=rate_cache,
                banned_nodes=banned_nodes,
                banned_edges=banned_edges,
            )
        }
        flows: Dict[int, FlowLikeGraph] = {}
        self._admit(network, link_model, swap_model, demands, path_sets,
                    flows, ledger, rate_cache)

        for _ in range(self.refill_rounds):
            selected = select_paths(
                network,
                link_model,
                swap_model,
                demand,
                h=self.h,
                max_width=max_width,
                ledger=ledger,
                max_hops=self.max_hops,
                rate_cache=rate_cache,
                banned_nodes=banned_nodes,
                banned_edges=banned_edges,
            )
            if not selected:
                break
            if self._admit(network, link_model, swap_model, demands,
                           {demand.demand_id: selected}, flows, ledger,
                           rate_cache) == 0:
                break

        plan = RoutingPlan()
        for flow in flows.values():
            plan.add_flow(flow)

        if self.include_alg4:
            assign_remaining_qubits(
                network, link_model, swap_model, plan, ledger,
                rate_cache=rate_cache,
            )

        demand_rates = plan.demand_rates(
            network, link_model, swap_model, rate_cache
        )
        return RoutingResult(
            algorithm=self.algorithm_label,
            plan=plan,
            total_rate=sum(demand_rates.values()),
            demand_rates=demand_rates,
            remaining_qubits=ledger.total_free_switch_qubits(),
        )

"""Algorithm 1 — Largest Entanglement Rate path for a fixed width.

A modified Dijkstra that *maximises* the multiplicative entanglement-rate
metric instead of minimising additive length.  Correctness rests on the
metric being monotonically non-increasing along any extension (every factor
— channel rate or swap probability — is in [0, 1]), the property the paper
sketches in Section IV-C-2.

Constraints enforced while relaxing:

* intermediate nodes must be switches (users only terminate states);
* an intermediate switch must hold at least ``2 * width`` free qubits
  (*width* towards each side), a switch endpoint at least ``width``;
* banned node/edge sets support Yen's deviations in Algorithm 2.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.exceptions import RoutingError
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.allocation import QubitLedger
from repro.routing.compiled import active_routing_core, compiled_search
from repro.routing.metrics import ChannelRateCache

EdgeKey = Tuple[int, int]


def _ekey(a: int, b: int) -> EdgeKey:
    return (a, b) if a < b else (b, a)


def largest_entanglement_rate_path(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    source: int,
    destination: int,
    width: int,
    ledger: Optional[QubitLedger] = None,
    banned_nodes: FrozenSet[int] = frozenset(),
    banned_edges: FrozenSet[EdgeKey] = frozenset(),
    rate_cache: Optional[ChannelRateCache] = None,
) -> Optional[Tuple[Tuple[int, ...], float]]:
    """Find the path from *source* to *destination* with the largest
    entanglement rate at channel width *width*.

    ``ledger`` supplies remaining qubit counts (defaults to full
    capacities, matching Algorithm 2's resource-reuse rule).
    ``rate_cache`` shares memoised channel rates across calls — Yen's
    loop in Algorithm 2 re-relaxes the same edges many times per demand.
    Returns ``(nodes, rate)`` or ``None`` when no feasible path exists.
    """
    if width < 1:
        raise RoutingError(f"width must be >= 1, got {width}")
    if source == destination:
        raise RoutingError("source and destination must differ")
    if not network.has_node(source) or not network.has_node(destination):
        raise RoutingError(
            f"endpoints ({source}, {destination}) must exist in the network"
        )
    if source in banned_nodes or destination in banned_nodes:
        return None
    if active_routing_core() == "compiled":
        # Same search over the CSR snapshot; bit-identical paths/rates
        # (parity enforced by tests/test_routing_cores.py).
        return compiled_search(
            network, link_model, swap_model, source, destination, width,
            ledger, banned_nodes, banned_edges, rate_cache,
        )
    if ledger is None:
        ledger = QubitLedger(network)
    # Endpoint feasibility: each endpoint commits `width` qubits.
    if not ledger.has_at_least(source, width):
        return None
    if not ledger.has_at_least(destination, width):
        return None

    best: Dict[int, float] = {source: 1.0}
    predecessor: Dict[int, int] = {}
    visited: Set[int] = set()
    counter = itertools.count()
    heap = [(-1.0, next(counter), source)]
    # The exp()-based channel rate is the hot spot of the search; each
    # edge is relaxed many times, so memoise — across calls when the
    # caller supplies a cache, per call otherwise.
    if rate_cache is None:
        rate_cache = ChannelRateCache(network, link_model)

    while heap:
        negative_rate, _, node = heapq.heappop(heap)
        rate = -negative_rate
        if node in visited:
            continue
        visited.add(node)
        if node == destination:
            break
        if node != source:
            # Extending through `node` makes it an intermediate relay:
            # it must be a switch with 2*width free qubits, and it pays
            # the fusion success factor.
            if network.node(node).is_user:
                continue
            if not ledger.has_at_least(node, 2 * width):
                continue
            rate *= swap_model.success_probability(2)
        for neighbor in network.neighbors(node):
            if neighbor in visited or neighbor in banned_nodes:
                continue
            if _ekey(node, neighbor) in banned_edges:
                continue
            if neighbor != destination:
                if network.node(neighbor).is_user:
                    continue
                if not ledger.has_at_least(neighbor, 2 * width):
                    # A switch that cannot relay is only reachable as an
                    # endpoint; since the destination is handled above,
                    # such a switch is a dead end for this width.
                    continue
            candidate = rate * rate_cache.rate(node, neighbor, width)
            if candidate > best.get(neighbor, 0.0):
                best[neighbor] = candidate
                predecessor[neighbor] = node
                heapq.heappush(heap, (-candidate, next(counter), neighbor))

    if destination not in best or destination not in visited:
        return None
    nodes = [destination]
    while nodes[-1] != source:
        nodes.append(predecessor[nodes[-1]])
    nodes.reverse()
    return tuple(nodes), best[destination]

"""Algorithm 3 — Paths Merge: admit paths and build flow-like graphs.

Two admission policies are provided:

* :func:`admit_paths` — the paper's literal pseudocode: widths from the
  largest down ("wider is preferred"); within a width, candidates across
  all demands sorted by decreasing rate ("shorter is preferred").
* :func:`admit_paths_efficiency` — marginal-efficiency greedy: repeatedly
  admit the candidate with the largest *rate gain per switch qubit
  consumed*.  The paper's pseudocode leaves contention between demands
  unspecified, and the literal sweep lets early wide paths starve later
  demands; efficiency admission preserves all four of the paper's stated
  preferences (shorter, wider, merged, n-fused) while spending the qubit
  budget where it buys the most entanglement rate.  DESIGN.md records this
  as an implementation decision and the ablation bench compares both.

In both policies a path is admitted only when every edge is either already
part of the same demand's flow-like graph (the new path is a branch; the
shared edge's qubits are reused and not charged again) or fundable from
both endpoints' free qubits.  Merges that would make the flow orientation
cyclic are rejected (Equation 1 requires an acyclic flow).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.exceptions import CapacityError, RoutingError
from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.allocation import QubitLedger
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.routing.paths import PathCandidate
from repro.routing.plan import RoutingPlan

PathSets = Dict[int, Dict[int, List[PathCandidate]]]


def merge_paths(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    demands: DemandSet,
    path_sets: PathSets,
    ledger: QubitLedger,
) -> RoutingPlan:
    """Run Algorithm 3 over per-demand path sets, consuming *ledger*.

    ``path_sets`` maps ``demand_id -> {width -> [PathCandidate...]}`` as
    produced by :func:`~repro.routing.alg2_path_selection.select_paths`.
    """
    flows: Dict[int, FlowLikeGraph] = {}
    admit_paths(network, demands, path_sets, flows, ledger)
    plan = RoutingPlan()
    for flow in flows.values():
        plan.add_flow(flow)
    return plan


def admit_paths(
    network: QuantumNetwork,
    demands: DemandSet,
    path_sets: PathSets,
    flows: Dict[int, FlowLikeGraph],
    ledger: QubitLedger,
) -> int:
    """One Algorithm 3 admission sweep over *path_sets*, extending *flows*
    in place and consuming *ledger*.  Returns the number of paths admitted.

    Exposed separately so the orchestrator can run *refill* sweeps: after
    the first sweep, candidates re-selected against the residual ledger are
    admitted with the same widest/best-first policy.
    """
    demand_by_id = {d.demand_id: d for d in demands}
    unknown = set(path_sets) - set(demand_by_id)
    if unknown:
        raise RoutingError(f"path sets reference unknown demands {sorted(unknown)}")
    admitted = 0
    for width in range(_max_width(path_sets), 0, -1):
        candidates = [
            path
            for per_width in path_sets.values()
            for path in per_width.get(width, ())
        ]
        candidates.sort(key=lambda c: (-c.rate, c.demand_id, c.nodes))
        for candidate in candidates:
            if _try_admit(network, demand_by_id[candidate.demand_id],
                          candidate, flows, ledger):
                admitted += 1
    return admitted


def admit_paths_efficiency(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    demands: DemandSet,
    path_sets: PathSets,
    flows: Dict[int, FlowLikeGraph],
    ledger: QubitLedger,
    rate_cache: Optional[ChannelRateCache] = None,
) -> int:
    """Marginal-efficiency greedy admission sweep (see module docstring).

    Repeatedly admits the candidate maximising ``rate gain / switch qubits
    consumed`` until no candidate both fits the ledger and improves its
    demand's rate.  Returns the number of paths admitted.  ``rate_cache``
    memoises per-(edge, width) channel rates across the many Equation-1
    evaluations of the candidate loop; results are unchanged.
    """
    demand_by_id = {d.demand_id: d for d in demands}
    unknown = set(path_sets) - set(demand_by_id)
    if unknown:
        raise RoutingError(f"path sets reference unknown demands {sorted(unknown)}")
    pool: List[PathCandidate] = [
        path
        for per_width in path_sets.values()
        for paths in per_width.values()
        for path in paths
    ]
    admitted = 0
    # A candidate's charges, cycle feasibility and rate gain are pure
    # functions of its demand's current flow — not of the ledger — yet
    # the scan below revisits every candidate after every admission.
    # Memoise that structural evaluation per flow version (bumped when a
    # demand's flow changes) and re-check only the cheap ledger
    # feasibility each scan; every value replayed from the memo is
    # identical to a fresh evaluation, so the admission sequence is
    # unchanged.
    base_rates: Dict[int, float] = {}
    versions: Dict[int, int] = {}
    struct_memo: Dict[
        int,
        Tuple[int, Optional[Tuple[Dict[int, int], float, int]]],
    ] = {}
    # Candidates found unadmittable are *parked* — dropped from the
    # active scan under the flow version they were rejected at.  Exact,
    # not heuristic: a candidate's charges and gain are pure functions
    # of its demand's flow version, and the ledger only ever shrinks
    # within one sweep (reservations stick, failed trials restore), so
    # "cycle / no gain / doesn't fit" can only be revisited by the
    # demand's version bumping — which un-parks that demand's
    # candidates.  Indices into the (immutable) pool stand in for the
    # candidates everywhere, keeping scan order — and therefore the
    # admission sequence and every tie-break — identical to scanning
    # the full pool, without re-hashing candidate dataclasses.
    parked_by_demand: Dict[int, List[int]] = {}
    active: List[int] = list(range(len(pool)))
    # Feasibility probes batched per scan on the ledger's journal token:
    # a candidate's verdict is a pure function of the counts at its
    # needed nodes, so it is cached as (flow version, ledger epoch,
    # journal length, verdict) and replayed while the journal tail
    # since that length names none of the needed nodes.  The journal
    # may name a node whose count changed and changed back — a
    # superset of the truly changed — so skipping only journal-disjoint
    # candidates re-probes every candidate a fresh check could answer
    # differently, and the admission sequence is unchanged.  An epoch
    # bump (restore after a failed admit, journal compaction) discards
    # every cached verdict wholesale.
    feasibility_memo: Dict[int, Tuple[int, int, int, bool]] = {}
    while active:
        best_index = -1
        best_efficiency = 0.0
        best_gain = 0.0
        keep: List[int] = []
        # The ledger mutates only between scans (_try_admit below), so
        # one token — and one lazily-built changed-node set per distinct
        # cached journal length — serves the whole scan.
        epoch, journal_length = ledger.feasibility_token()
        changed_since: Dict[int, FrozenSet[int]] = {}
        for index in active:
            candidate = pool[index]
            version = versions.get(candidate.demand_id, 0)
            cached = struct_memo.get(index)
            if cached is not None and cached[0] == version:
                evaluation = cached[1]
            else:
                evaluation = _evaluate_candidate(
                    network, link_model, swap_model, candidate, flows,
                    rate_cache, base_rates,
                )
                struct_memo[index] = (version, evaluation)
            if evaluation is None:
                parked_by_demand.setdefault(
                    candidate.demand_id, []
                ).append(index)
                continue
            needed, gain, cost = evaluation
            verdict = feasibility_memo.get(index)
            feasible = None
            if (
                verdict is not None
                and verdict[0] == version
                and verdict[1] == epoch
            ):
                start = verdict[2]
                if start == journal_length:
                    feasible = verdict[3]
                else:
                    changed = changed_since.get(start)
                    if changed is None:
                        changed = frozenset(ledger.journal_since(start))
                        changed_since[start] = changed
                    if not changed & needed.keys():
                        feasible = verdict[3]
                        # The needed counts are untouched since *start*,
                        # so the verdict holds as of *now* too: advance
                        # the window to keep future journal tails short.
                        feasibility_memo[index] = (
                            version, epoch, journal_length, feasible
                        )
            if feasible is None:
                feasible = True
                for node, count in needed.items():
                    if not ledger.has_at_least(node, count):
                        feasible = False
                        break
                feasibility_memo[index] = (
                    version, epoch, journal_length, feasible
                )
            if not feasible:
                parked_by_demand.setdefault(
                    candidate.demand_id, []
                ).append(index)
                continue
            keep.append(index)
            efficiency = gain / max(cost, 1)
            better = efficiency > best_efficiency + 1e-15
            tie_break = (
                best_index >= 0
                and abs(efficiency - best_efficiency) <= 1e-15
                and gain > best_gain
            )
            if better or tie_break:
                best_index = index
                best_efficiency = efficiency
                best_gain = gain
        active = keep
        if best_index < 0 or best_gain <= 1e-12:
            break
        candidate = pool[best_index]
        active.remove(best_index)
        if _try_admit(network, demand_by_id[candidate.demand_id], candidate,
                      flows, ledger):
            admitted += 1
            demand_id = candidate.demand_id
            base_rates.pop(demand_id, None)
            versions[demand_id] = versions.get(demand_id, 0) + 1
            unparked = parked_by_demand.pop(demand_id, None)
            if unparked:
                active.extend(unparked)
                active.sort()
    return admitted


def _evaluate_candidate(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    candidate: PathCandidate,
    flows: Dict[int, FlowLikeGraph],
    rate_cache: Optional[ChannelRateCache] = None,
    base_rates: Optional[Dict[int, float]] = None,
) -> Optional[Tuple[Dict[int, int], float, int]]:
    """Structural evaluation of admitting *candidate* to its flow now.

    Returns ``(needed, gain, cost)`` — the per-node qubit charges, the
    Equation-1 rate gain and the switch-qubit cost — or ``None`` when
    the candidate can never be admitted at this flow state (the merge
    would create a cycle, or it does not improve its demand's rate).
    Everything here depends only on the flow, so the caller may cache
    the result until that flow changes; ledger feasibility (the part
    that changes between admissions) is the caller's to check.
    ``base_rates`` memoises each demand's current rate across one
    admission scan (the caller drops an entry when its flow changes).
    """
    flow = flows.get(candidate.demand_id)
    needed: Dict[int, int] = {}
    cost = 0
    for u, v, amount in _edge_charges(flow, candidate):
        for node in (u, v):
            needed[node] = needed.get(node, 0) + amount
            if network.node(node).is_switch:
                cost += amount
    if flow is None:
        trial = FlowLikeGraph(
            candidate.demand_id, candidate.nodes[0], candidate.nodes[-1]
        )
        base_rate = 0.0
    else:
        trial = flow.copy()
        base_rate = (
            None if base_rates is None
            else base_rates.get(candidate.demand_id)
        )
        if base_rate is None:
            base_rate = flow.entanglement_rate(
                network, link_model, swap_model, rate_cache=rate_cache
            )
            if base_rates is not None:
                base_rates[candidate.demand_id] = base_rate
    try:
        trial.add_path(candidate.nodes, candidate.width)
    except RoutingError:
        return None
    gain = trial.entanglement_rate(
        network, link_model, swap_model, rate_cache=rate_cache
    ) - base_rate
    if gain <= 0.0:
        return None
    return needed, gain, cost


def _max_width(path_sets: PathSets) -> int:
    widths = [w for per_width in path_sets.values() for w in per_width]
    return max(widths) if widths else 0


def _edge_charges(
    flow: Optional[FlowLikeGraph], candidate: PathCandidate
) -> List[Tuple[int, int, int]]:
    """Qubit charges ``(u, v, amount)`` for admitting *candidate*.

    New edges cost the full width at each endpoint; edges shared with the
    demand's existing flow cost only the upgrade delta (zero when the
    existing channel is already at least as wide).
    """
    charges = []
    for u, v in candidate.edges():
        if flow is not None and flow.contains_edge(u, v):
            delta = candidate.width - flow.edge_width(u, v)
            if delta > 0:
                charges.append((u, v, delta))
        else:
            charges.append((u, v, candidate.width))
    return charges


def _try_admit(
    network: QuantumNetwork,
    demand: Demand,
    candidate: PathCandidate,
    flows: Dict[int, FlowLikeGraph],
    ledger: QubitLedger,
) -> bool:
    """Admit one candidate path if resources (or shared edges) allow."""
    flow = flows.get(demand.demand_id)
    snapshot = ledger.snapshot()
    try:
        for u, v, amount in _edge_charges(flow, candidate):
            ledger.reserve_edge(u, v, amount)
    except CapacityError:
        ledger.restore(snapshot)
        return False
    if flow is None:
        flow = FlowLikeGraph(demand.demand_id, demand.source, demand.destination)
        flows[demand.demand_id] = flow
        flow.add_path(candidate.nodes, candidate.width)
        return True
    try:
        flow.add_path(candidate.nodes, candidate.width)
    except RoutingError:
        # Directed-cycle merge: reject the candidate, refund its qubits.
        ledger.restore(snapshot)
        return False
    return True

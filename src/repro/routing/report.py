"""Human-readable routing plan reports.

Turns a :class:`~repro.routing.nfusion.RoutingResult` into the kind of
plan summary an operator would read: one block per demand listing the
flow-like graph's paths, channel widths, branch nodes and analytic rate,
plus a network-level utilisation footer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.network.demands import DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.nfusion import RoutingResult
from repro.utils.tables import AsciiTable


def render_flow(flow, network: QuantumNetwork) -> List[str]:
    """Per-flow description lines (paths with widths, branch nodes)."""
    lines = [
        f"demand {flow.demand_id}: {flow.source} -> {flow.destination} "
        f"({flow.num_paths} path{'s' if flow.num_paths != 1 else ''})"
    ]
    for path in flow.paths:
        hops = " - ".join(str(node) for node in path)
        widths = [flow.edge_width(a, b) for a, b in zip(path, path[1:])]
        lines.append(f"  path: {hops}  widths={widths}")
    branches = flow.branch_nodes()
    if branches:
        arities = {node: flow.fusion_arity(node) for node in branches}
        lines.append(
            "  branch nodes: "
            + ", ".join(f"{n} (fuses {arities[n]})" for n in branches)
        )
    return lines


def render_plan_report(
    network: QuantumNetwork,
    demands: DemandSet,
    result: RoutingResult,
    link_model: Optional[LinkModel] = None,
    swap_model: Optional[SwapModel] = None,
) -> str:
    """Full plan report: per-demand blocks plus a utilisation footer."""
    link_model = link_model or LinkModel()
    swap_model = swap_model or SwapModel()
    lines: List[str] = [f"=== {result.algorithm} routing plan ==="]
    unrouted = []
    for demand in demands:
        flow = result.plan.flow_for(demand.demand_id)
        if flow is None:
            unrouted.append(demand.demand_id)
            continue
        lines.extend(render_flow(flow, network))
        lines.append(
            f"  analytic rate: {result.demand_rates[demand.demand_id]:.4f}"
        )
    if unrouted:
        lines.append(f"unrouted demands: {unrouted}")

    usage = result.plan.qubits_used()
    switch_usage = {
        node: count
        for node, count in usage.items()
        if network.node(node).is_switch
    }
    total_capacity = sum(
        network.qubit_capacity(s) for s in network.switches()
    )
    used = sum(switch_usage.values())
    table = AsciiTable(["metric", "value"])
    table.add_row(["total entanglement rate", result.total_rate])
    table.add_row(["demands routed", f"{result.num_routed}/{len(demands)}"])
    table.add_row(["switch qubits used", f"{used}/{total_capacity}"])
    table.add_row(["busiest switch", _busiest(switch_usage)])
    lines.append(table.render())
    return "\n".join(lines)


def _busiest(switch_usage: Dict[int, int]) -> str:
    if not switch_usage:
        return "none"
    node = max(switch_usage, key=lambda n: switch_usage[n])
    return f"switch {node} ({switch_usage[node]} qubits)"

"""Routing metrics (paper Section III-C).

* **Channel rate** — a width-w channel on one edge delivers at least one
  Bell pair with probability ``1 - (1 - p)^w``.
* **Path rate** — a path succeeds iff every channel delivers and every
  intermediate switch's fusion succeeds:
  ``P_A = q^(#intermediate switches) * prod_e (1 - (1 - p_e)^w_e)``.
* **Flow-like graph rate** — Equation 1, implemented by
  :class:`~repro.routing.flow_graph.FlowLikeGraph`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.exceptions import RoutingError
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel, channel_success_probability


def channel_rate(
    network: QuantumNetwork,
    link_model: LinkModel,
    u: int,
    v: int,
    width: int,
) -> float:
    """Entanglement rate of a width-*width* channel on edge (*u*, *v*)."""
    p = link_model.success_probability(network.edge_length(u, v))
    return channel_success_probability(p, width)


def _swap_factor(network: QuantumNetwork, swap_model: SwapModel, node: int, arity: int) -> float:
    """Fusion success factor contributed by *node* relaying *arity* links.

    Users terminate states rather than relay, so they contribute no swap
    factor; switches contribute the swap model's success probability.
    """
    if network.node(node).is_user:
        return 1.0
    return swap_model.success_probability(arity)


def path_entanglement_rate(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    nodes: Sequence[int],
    width: int,
) -> float:
    """Entanglement rate of a uniform-width path.

    ``nodes`` runs source to destination inclusive; every edge carries
    *width* parallel links and every intermediate switch performs one
    fusion with the swap model's success probability.
    """
    widths = {_ekey(a, b): width for a, b in zip(nodes, nodes[1:])}
    return path_entanglement_rate_nonuniform(
        network, link_model, swap_model, nodes, widths
    )


def path_entanglement_rate_nonuniform(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    nodes: Sequence[int],
    edge_widths: Dict[Tuple[int, int], int],
) -> float:
    """Entanglement rate of a path whose channels have per-edge widths."""
    nodes = list(nodes)
    if len(nodes) < 2:
        raise RoutingError(f"a path needs >= 2 nodes, got {nodes}")
    rate = 1.0
    for a, b in zip(nodes, nodes[1:]):
        key = _ekey(a, b)
        if key not in edge_widths:
            raise RoutingError(f"no width recorded for path edge {key}")
        rate *= channel_rate(network, link_model, a, b, edge_widths[key])
    for node in nodes[1:-1]:
        # Each intermediate node fuses its two incident channels (2-fusion
        # on a simple path; higher arity arises only in flow-like graphs).
        rate *= _swap_factor(network, swap_model, node, 2)
    return rate


def _ekey(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)

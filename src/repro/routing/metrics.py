"""Routing metrics (paper Section III-C).

* **Channel rate** — a width-w channel on one edge delivers at least one
  Bell pair with probability ``1 - (1 - p)^w``.
* **Path rate** — a path succeeds iff every channel delivers and every
  intermediate switch's fusion succeeds:
  ``P_A = q^(#intermediate switches) * prod_e (1 - (1 - p_e)^w_e)``.
* **Flow-like graph rate** — Equation 1, implemented by
  :class:`~repro.routing.flow_graph.FlowLikeGraph`.
"""

from __future__ import annotations

from typing import Collection, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import RoutingError
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel, channel_success_probability

#: Pair count from which :meth:`ChannelRateCache.rates_bulk` gathers
#: from the compiled snapshot's width-indexed columns; smaller batches
#: walk the scalar memo instead (the fixed dispatch cost of the array
#: takes exceeds the whole loop — the same calibration as the compiled
#: kernel's ``_VECTOR_ROW_MIN``).
_BULK_VECTOR_MIN = 32


def channel_rate(
    network: QuantumNetwork,
    link_model: LinkModel,
    u: int,
    v: int,
    width: int,
) -> float:
    """Entanglement rate of a width-*width* channel on edge (*u*, *v*)."""
    p = link_model.success_probability(network.edge_length(u, v))
    return channel_success_probability(p, width)


class ChannelRateCache:
    """Memoised per-edge channel rates for one (network, link_model) pair.

    The ``exp(-alpha * L)`` link probability and the ``1 - (1 - p)^w``
    channel rate of an edge never change within one routing call, yet
    Yen's deviation loop in Algorithm 2 re-relaxes the same edges across
    many Algorithm 1 invocations.  Routers create one cache per
    ``route()`` call and thread it through the search so each edge's
    probability is computed once and each (edge, width) rate once.
    """

    __slots__ = (
        "network", "link_model", "_probabilities", "_rates",
        "compiled_snapshot",
    )

    def __init__(self, network: QuantumNetwork, link_model: LinkModel):
        self.network = network
        self.link_model = link_model
        self._probabilities: Dict[Tuple[int, int], float] = {}
        self._rates: Dict[Tuple[int, int, int], float] = {}
        #: The CSR snapshot of the same (network, link_model) pair,
        #: compiled lazily by repro.routing.compiled.snapshot_for so a
        #: router's whole route() call shares one snapshot through the
        #: rate cache it already threads everywhere.
        self.compiled_snapshot = None

    def edge_probability(self, u: int, v: int) -> float:
        """Single-link success probability of edge (*u*, *v*), memoised."""
        key = _ekey(u, v)
        p = self._probabilities.get(key)
        if p is None:
            p = self.link_model.success_probability(
                self.network.edge_length(u, v)
            )
            self._probabilities[key] = p
        return p

    def rate(self, u: int, v: int, width: int) -> float:
        """Width-*width* channel rate of edge (*u*, *v*), memoised."""
        a, b = _ekey(u, v)
        key = (a, b, width)
        rate = self._rates.get(key)
        if rate is None:
            rate = channel_success_probability(
                self.edge_probability(a, b), width
            )
            self._rates[key] = rate
        return rate

    def rates_bulk(
        self,
        keys: Collection[Tuple[int, int]],
        widths: Collection[int],
    ) -> List[float]:
        """:meth:`rate` for many aligned (canonical edge key, width) pairs.

        The sanctioned bulk accessor for the Equation-1 evaluators
        (scalar and vectorized): one call gathers every edge rate of a
        flow evaluation instead of a per-child lookup chain.  ``keys``
        must be canonical ``(min, max)`` pairs; the returned list is
        aligned with the inputs and every value is bit-identical to
        ``rate(u, v, width)``.  When the compiled snapshot is attached
        and the batch reaches ``_BULK_VECTOR_MIN`` pairs, the rates
        gather from its width-indexed columns — filled by the same
        scalar :func:`channel_success_probability` chain, so the bits
        match the memo's — grouped per distinct width so a large
        evaluation is a few vectorised takes; smaller batches (and
        caches without a snapshot) go through the per-(edge, width)
        memo exactly like :meth:`rate`.
        """
        snapshot = self.compiled_snapshot
        if snapshot is not None and len(keys) >= _BULK_VECTOR_MIN:
            edge_index = snapshot.edge_index
            try:
                eids = [edge_index[key] for key in keys]
            except KeyError:
                # An edge the snapshot predates: fall back to the memo.
                eids = None
            if eids is not None:
                by_width: Dict[int, List[int]] = {}
                for i, width in enumerate(widths):
                    by_width.setdefault(width, []).append(i)
                out: List[float] = [0.0] * len(eids)
                for width in sorted(by_width):
                    positions = by_width[width]
                    column = snapshot.width_rates(width)
                    values = column.take(
                        [eids[i] for i in positions]
                    ).tolist()
                    for i, value in zip(positions, values):
                        out[i] = value
                return out
        rate = self.rate
        memo = self._rates
        out = []
        append = out.append
        for key, width in zip(keys, widths):
            value = memo.get(key + (width,))
            if value is None:
                value = rate(key[0], key[1], width)
            append(value)
        return out


def _swap_factor(network: QuantumNetwork, swap_model: SwapModel, node: int, arity: int) -> float:
    """Fusion success factor contributed by *node* relaying *arity* links.

    Users terminate states rather than relay, so they contribute no swap
    factor; switches contribute the swap model's success probability.
    """
    if network.node(node).is_user:
        return 1.0
    return swap_model.success_probability(arity)


def path_entanglement_rate(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    nodes: Sequence[int],
    width: int,
    rate_cache: Optional[ChannelRateCache] = None,
) -> float:
    """Entanglement rate of a uniform-width path.

    ``nodes`` runs source to destination inclusive; every edge carries
    *width* parallel links and every intermediate switch performs one
    fusion with the swap model's success probability.
    """
    widths = {_ekey(a, b): width for a, b in zip(nodes, nodes[1:])}
    return path_entanglement_rate_nonuniform(
        network, link_model, swap_model, nodes, widths, rate_cache
    )


def path_entanglement_rate_nonuniform(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    nodes: Sequence[int],
    edge_widths: Dict[Tuple[int, int], int],
    rate_cache: Optional[ChannelRateCache] = None,
) -> float:
    """Entanglement rate of a path whose channels have per-edge widths."""
    nodes = list(nodes)
    if len(nodes) < 2:
        raise RoutingError(f"a path needs >= 2 nodes, got {nodes}")
    rate = 1.0
    for a, b in zip(nodes, nodes[1:]):
        key = _ekey(a, b)
        if key not in edge_widths:
            raise RoutingError(f"no width recorded for path edge {key}")
        if rate_cache is not None:
            rate *= rate_cache.rate(a, b, edge_widths[key])
        else:
            rate *= channel_rate(network, link_model, a, b, edge_widths[key])
    for node in nodes[1:-1]:
        # Each intermediate node fuses its two incident channels (2-fusion
        # on a simple path; higher arity arises only in flow-like graphs).
        rate *= _swap_factor(network, swap_model, node, 2)
    return rate


def _ekey(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)

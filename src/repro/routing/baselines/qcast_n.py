"""Q-CAST-N — Q-Cast path selection evaluated under n-fusion.

The paper's description: "We apply Q-Cast to get paths.  Then, we use
Equation 1 to evaluate the network performance, assuming all paths take
n-fusion."  Q-Cast serves each request with one uniform-width path chosen
greedily by expected throughput.  Here the selection step searches, per
demand, over all widths for the (path, width) pair with the best n-fusion
rate, admits the globally best pair, charges qubits, and repeats.  Paths
are never merged into flow-like graphs and leftovers are not re-spent —
those are the two ALG-N-FUSION innovations this baseline lacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.alg2_path_selection import default_max_width
from repro.routing.allocation import QubitLedger
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.routing.nfusion import RoutingResult
from repro.routing.plan import RoutingPlan
from repro.routing.registry import register_router


@register_router("q-cast-n", aliases=("qcast-n",))
@dataclass
class QCastNRouter:
    """Greedy uniform-width single-path router under n-fusion semantics."""

    max_width: Optional[int] = None
    name: str = "Q-CAST-N"

    def route(
        self,
        network: QuantumNetwork,
        demands: DemandSet,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
    ) -> RoutingResult:
        """Route every demand over its best uniform-width path, greedily."""
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        max_width = self.max_width or default_max_width(network)
        ledger = QubitLedger(network)
        plan = RoutingPlan()
        rate_cache = ChannelRateCache(network, link_model)
        unrouted: Dict[int, Demand] = {d.demand_id: d for d in demands}

        while unrouted:
            best: Optional[Tuple[float, int, int, Tuple[int, ...]]] = None
            for demand in unrouted.values():
                for width in range(max_width, 0, -1):
                    found = largest_entanglement_rate_path(
                        network,
                        link_model,
                        swap_model,
                        demand.source,
                        demand.destination,
                        width=width,
                        ledger=ledger,
                        rate_cache=rate_cache,
                    )
                    if found is None:
                        continue
                    nodes, rate = found
                    if best is None or rate > best[0]:
                        best = (rate, demand.demand_id, width, nodes)
            if best is None:
                break
            _, demand_id, width, nodes = best
            demand = unrouted.pop(demand_id)
            for a, b in zip(nodes, nodes[1:]):
                ledger.reserve_edge(a, b, width)
            flow = FlowLikeGraph(demand_id, demand.source, demand.destination)
            flow.add_path(nodes, width=width)
            plan.add_flow(flow)

        demand_rates = plan.demand_rates(
            network, link_model, swap_model, rate_cache
        )
        return RoutingResult(
            algorithm=self.name,
            plan=plan,
            total_rate=sum(demand_rates.values()),
            demand_rates=demand_rates,
            remaining_qubits=ledger.total_free_switch_qubits(),
        )

"""Q-CAST — classic BSM-based entanglement routing.

The paper defines its Q-CAST series as "a special version of ALG-N-FUSION
where N = 2": a switch performs only Bell-state measurements, so it can
dedicate exactly two qubits to any one demanded state.  Consequently every
state is served by a single width-1 path, there are no flow-like graphs,
and leftover qubits cannot widen channels (a third link at a switch would
need a 3-fusion).  This mirrors the greedy highest-throughput-path-first
structure of Shi & Qian's Q-Cast.

Routing is greedy: repeatedly find, over all still-unrouted demands, the
feasible width-1 path with the largest entanglement rate, admit it, charge
its qubits, and continue until no demand has a feasible path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.allocation import QubitLedger
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.routing.nfusion import RoutingResult
from repro.routing.plan import RoutingPlan
from repro.routing.registry import register_router


@register_router("q-cast", aliases=("qcast",))
@dataclass
class QCastRouter:
    """Greedy width-1 classic-swapping router (the Q-CAST baseline)."""

    name: str = "Q-CAST"

    def route(
        self,
        network: QuantumNetwork,
        demands: DemandSet,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
    ) -> RoutingResult:
        """Route every demand over its best width-1 path, greedily."""
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        ledger = QubitLedger(network)
        plan = RoutingPlan()
        rate_cache = ChannelRateCache(network, link_model)
        unrouted: Dict[int, Demand] = {d.demand_id: d for d in demands}

        while unrouted:
            best: Optional[Tuple[float, int, Tuple[int, ...]]] = None
            for demand in unrouted.values():
                found = largest_entanglement_rate_path(
                    network,
                    link_model,
                    swap_model,
                    demand.source,
                    demand.destination,
                    width=1,
                    ledger=ledger,
                    rate_cache=rate_cache,
                )
                if found is None:
                    continue
                nodes, rate = found
                if best is None or rate > best[0]:
                    best = (rate, demand.demand_id, nodes)
            if best is None:
                break
            _, demand_id, nodes = best
            demand = unrouted.pop(demand_id)
            for a, b in zip(nodes, nodes[1:]):
                ledger.reserve_edge(a, b, 1)
            flow = FlowLikeGraph(demand_id, demand.source, demand.destination)
            flow.add_path(nodes, width=1)
            plan.add_flow(flow)

        demand_rates = plan.demand_rates(
            network, link_model, swap_model, rate_cache
        )
        return RoutingResult(
            algorithm=self.name,
            plan=plan,
            total_rate=sum(demand_rates.values()),
            demand_rates=demand_rates,
            remaining_qubits=ledger.total_free_switch_qubits(),
        )

"""MCF — multicommodity-flow LP baseline (extension).

Chakraborty et al. ([37] in the paper) route entanglement by solving a
multicommodity-flow linear program.  This baseline adapts that approach
to the paper's model as an additional comparator:

* **Variables** — directed per-demand arc flows ``f[d, (a, b)] >= 0``
  measuring how many parallel links demand *d* places on edge ``{a, b}``
  in direction ``a -> b``.
* **Constraints** — flow conservation at switches (per demand), a source
  out-flow of at most ``max_width`` per demand, and switch qubit
  capacities shared across demands (each unit of flow through a switch
  consumes one qubit per incident direction).
* **Objective** — maximise total delivered flow minus a per-arc cost
  ``-log(p_e * q)``, the LP surrogate for the multiplicative rate metric.

The fractional solution is decomposed into at most ``max_paths`` paths
per demand (greedy max-bottleneck extraction) and admitted through the
same ledger/flow-graph machinery as every other router, so the reported
entanglement rate is computed by the identical Equation 1 code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import RoutingError
from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.allocation import QubitLedger
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.routing.nfusion import RoutingResult
from repro.routing.plan import RoutingPlan
from repro.routing.registry import register_router

Arc = Tuple[int, int]


@register_router("mcf")
@dataclass
class MCFRouter:
    """LP-relaxation multicommodity-flow router."""

    max_width: int = 3
    max_paths: int = 3
    cost_weight: float = 0.15
    name: str = "MCF"

    def route(
        self,
        network: QuantumNetwork,
        demands: DemandSet,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
    ) -> RoutingResult:
        """Solve the LP, decompose, admit, and report analytic rates."""
        try:
            from scipy.optimize import linprog
        except ImportError as exc:  # pragma: no cover - scipy is a test dep
            raise RoutingError(
                "MCFRouter requires scipy; install the [test] extra"
            ) from exc
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        demand_list = list(demands)
        arcs = self._arcs(network)
        arc_index = {arc: i for i, arc in enumerate(arcs)}
        num_demands = len(demand_list)
        num_vars = num_demands * len(arcs)

        def var(d: int, arc: Arc) -> int:
            return d * len(arcs) + arc_index[arc]

        objective = np.zeros(num_vars)
        q = swap_model.success_probability(2)
        for d in range(num_demands):
            for arc in arcs:
                a, b = arc
                p = link_model.success_probability(network.edge_length(a, b))
                cost = -math.log(max(p, 1e-9) * max(q, 1e-9))
                objective[var(d, arc)] = self.cost_weight * cost
        # Reward delivered flow: subtract 1 per unit of source out-flow.
        for d, demand in enumerate(demand_list):
            for arc in arcs:
                if arc[0] == demand.source:
                    objective[var(d, arc)] -= 1.0
                if arc[1] == demand.source:
                    objective[var(d, arc)] += 1.0

        a_eq, b_eq = self._conservation(network, demand_list, arcs, var)
        a_ub, b_ub = self._capacities(network, demand_list, arcs, var)
        bounds = [(0.0, float(self.max_width))] * num_vars
        solution = linprog(
            objective,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        flows_vector = (
            solution.x if solution.status == 0 and solution.x is not None
            else np.zeros(num_vars)
        )

        ledger = QubitLedger(network)
        plan = RoutingPlan()
        for d, demand in enumerate(demand_list):
            arc_flow = {
                arc: float(flows_vector[var(d, arc)])
                for arc in arcs
                if flows_vector[var(d, arc)] > 1e-6
            }
            flow_graph = self._decompose_and_admit(
                network, demand, arc_flow, ledger
            )
            if flow_graph is not None:
                plan.add_flow(flow_graph)

        rate_cache = ChannelRateCache(network, link_model)
        demand_rates = plan.demand_rates(
            network, link_model, swap_model, rate_cache
        )
        return RoutingResult(
            algorithm=self.name,
            plan=plan,
            total_rate=sum(demand_rates.values()),
            demand_rates=demand_rates,
            remaining_qubits=ledger.total_free_switch_qubits(),
        )

    # ------------------------------------------------------------------

    def _arcs(self, network: QuantumNetwork) -> List[Arc]:
        arcs: List[Arc] = []
        for edge in network.edges():
            arcs.append((edge.u, edge.v))
            arcs.append((edge.v, edge.u))
        return arcs

    def _conservation(self, network, demand_list, arcs, var):
        """Per-demand conservation at switches; users only source/sink.

        Built sparsely: the constraint matrix has one row per
        (demand, switch) pair but only ``degree`` nonzeros per row.
        """
        from scipy.sparse import csr_matrix

        data: List[float] = []
        row_idx: List[int] = []
        col_idx: List[int] = []
        rhs: List[float] = []
        num_vars = len(demand_list) * len(arcs)
        row = 0
        for d, demand in enumerate(demand_list):
            for node in network.switches():
                for arc in arcs:
                    if arc[0] == node:
                        data.append(1.0)
                        row_idx.append(row)
                        col_idx.append(var(d, arc))
                    elif arc[1] == node:
                        data.append(-1.0)
                        row_idx.append(row)
                        col_idx.append(var(d, arc))
                rhs.append(0.0)
                row += 1
            # Forbid relaying through other users.
            for user in network.users():
                if user in (demand.source, demand.destination):
                    continue
                for arc in arcs:
                    if user in arc:
                        data.append(1.0)
                        row_idx.append(row)
                        col_idx.append(var(d, arc))
                rhs.append(0.0)
                row += 1
        if row == 0:
            return None, None
        matrix = csr_matrix(
            (data, (row_idx, col_idx)), shape=(row, num_vars)
        )
        return matrix, np.array(rhs)

    def _capacities(self, network, demand_list, arcs, var):
        from scipy.sparse import csr_matrix

        data: List[float] = []
        row_idx: List[int] = []
        col_idx: List[int] = []
        rhs: List[float] = []
        num_vars = len(demand_list) * len(arcs)
        row = 0
        for node in network.switches():
            for d in range(len(demand_list)):
                for arc in arcs:
                    if node in arc:
                        # Each unit of undirected width at this switch
                        # costs one qubit; arcs double-count direction, so
                        # weight by 1/2 per direction.
                        data.append(0.5)
                        row_idx.append(row)
                        col_idx.append(var(d, arc))
            rhs.append(float(network.qubit_capacity(node)))
            row += 1
        # Cap the per-demand source out-flow at max_width.
        for d, demand in enumerate(demand_list):
            for arc in arcs:
                if arc[0] == demand.source:
                    data.append(1.0)
                    row_idx.append(row)
                    col_idx.append(var(d, arc))
                elif arc[1] == demand.source:
                    data.append(-1.0)
                    row_idx.append(row)
                    col_idx.append(var(d, arc))
            rhs.append(float(self.max_width))
            row += 1
        matrix = csr_matrix(
            (data, (row_idx, col_idx)), shape=(row, num_vars)
        )
        return matrix, np.array(rhs)

    def _decompose_and_admit(
        self,
        network: QuantumNetwork,
        demand: Demand,
        arc_flow: Dict[Arc, float],
        ledger: QubitLedger,
    ) -> Optional[FlowLikeGraph]:
        """Greedy max-bottleneck path extraction + ledger admission."""
        flow_graph: Optional[FlowLikeGraph] = None
        remaining = dict(arc_flow)
        for _ in range(self.max_paths):
            path = self._extract_path(network, demand, remaining)
            if path is None:
                break
            bottleneck = min(
                remaining[(a, b)] for a, b in zip(path, path[1:])
            )
            width = max(1, int(round(bottleneck)))
            for a, b in zip(path, path[1:]):
                remaining[(a, b)] -= bottleneck
                if remaining[(a, b)] <= 1e-6:
                    del remaining[(a, b)]
            candidate = flow_graph.copy() if flow_graph else FlowLikeGraph(
                demand.demand_id, demand.source, demand.destination
            )
            new_edges = [
                (min(a, b), max(a, b))
                for a, b in zip(path, path[1:])
                if not candidate.contains_edge(a, b)
            ]
            snapshot = ledger.snapshot()
            feasible = True
            try:
                for u, v in new_edges:
                    ledger.reserve_edge(u, v, width)
                candidate.add_path(tuple(path), width)
            except Exception:
                ledger.restore(snapshot)
                feasible = False
            if feasible:
                flow_graph = candidate
        return flow_graph

    def _extract_path(
        self,
        network: QuantumNetwork,
        demand: Demand,
        remaining: Dict[Arc, float],
    ) -> Optional[List[int]]:
        """Widest path through the residual fractional flow (BFS over
        arcs with positive flow, max-bottleneck via binary relaxation)."""
        # Simple approach: repeatedly follow the highest-flow outgoing arc
        # with loop avoidance; fall back to BFS if greedy stalls.
        path = self._greedy_walk(network, demand, remaining)
        if path is not None:
            return path
        return self._bfs_walk(network, demand, remaining)

    def _greedy_walk(self, network, demand, remaining):
        path = [demand.source]
        seen = {demand.source}
        current = demand.source
        for _ in range(network.num_nodes):
            if current == demand.destination:
                return path
            candidates = [
                (flow, arc)
                for arc, flow in remaining.items()
                if arc[0] == current and arc[1] not in seen
            ]
            if not candidates:
                return None
            _, best = max(candidates, key=lambda item: item[0])
            current = best[1]
            path.append(current)
            seen.add(current)
        return None

    def _bfs_walk(self, network, demand, remaining):
        parents = {demand.source: None}
        frontier = [demand.source]
        while frontier:
            node = frontier.pop(0)
            if node == demand.destination:
                path = [node]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            for arc in remaining:
                if arc[0] == node and arc[1] not in parents:
                    parents[arc[1]] = node
                    frontier.append(arc[1])
        return None

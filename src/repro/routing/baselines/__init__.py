"""Baseline routing algorithms the paper compares against.

* :class:`~repro.routing.baselines.qcast.QCastRouter` — classic
  BSM-swapping routing (the paper's Q-CAST series: ALG-N-FUSION with
  fusion arity capped at 2, i.e. width-1 single paths).
* :class:`~repro.routing.baselines.qcast_n.QCastNRouter` — Q-Cast-style
  uniform-width path selection, re-evaluated under n-fusion.
* :class:`~repro.routing.baselines.b1.B1Router` — Patil et al.'s
  single-pair GHZ protocol extended to multiple pairs sequentially.
"""

from repro.routing.baselines.qcast import QCastRouter
from repro.routing.baselines.qcast_n import QCastNRouter
from repro.routing.baselines.b1 import B1Router
from repro.routing.baselines.mcf import MCFRouter

__all__ = ["QCastRouter", "QCastNRouter", "B1Router", "MCFRouter"]

"""B1 — Patil et al.'s single-pair GHZ protocol, extended to many pairs.

The paper extends [21] (distance-independent entanglement generation with
space-time multiplexed GHZ measurements) "from single pair to multiple
pairs.  For each pair, we run the algorithm once and remove the occupied
resources."  [21] studies 3- and 4-fusion on a lattice for one user pair,
so the extension implemented here gives each demand, in arrival order, a
flow-like graph built from at most two paths of width at most two on the
*residual* network (switch fusion arity therefore stays <= 4, matching
[21]'s measurement capability), then permanently removes those qubits.

What B1 lacks relative to ALG-N-FUSION — and what the evaluation isolates:
no cross-demand coordination (demands are served in arrival order rather
than widest/best first), no arity beyond 4, and no residual-qubit pass.
This substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.demands import DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg2_path_selection import select_paths
from repro.routing.alg3_merge import merge_paths
from repro.routing.allocation import QubitLedger
from repro.routing.metrics import ChannelRateCache
from repro.routing.nfusion import RoutingResult
from repro.routing.plan import RoutingPlan
from repro.routing.registry import register_router


@register_router("b1")
@dataclass
class B1Router:
    """Sequential per-pair n-fusion routing with [21]'s fusion-arity cap."""

    max_paths: int = 2
    max_width: int = 2
    max_fusion_arity: int = 4
    name: str = "B1"

    def _violates_arity_cap(self, network, flow) -> bool:
        """True when any switch would fuse more links than [21] allows."""
        return any(
            flow.fusion_arity(node) > self.max_fusion_arity
            for node in flow.nodes()
            if network.node(node).is_switch
        )

    def route(
        self,
        network: QuantumNetwork,
        demands: DemandSet,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
    ) -> RoutingResult:
        """Serve demands one at a time on the residual network."""
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        ledger = QubitLedger(network)
        plan = RoutingPlan()
        rate_cache = ChannelRateCache(network, link_model)

        for demand in demands:
            path_set = select_paths(
                network,
                link_model,
                swap_model,
                demand,
                h=self.max_paths,
                max_width=self.max_width,
                ledger=ledger,
                rate_cache=rate_cache,
            )
            if not path_set:
                continue
            single = DemandSet([demand])
            # [21]'s switches perform at most 4-qubit GHZ measurements, so
            # merged flows must keep every switch's fusion arity <= 4 and
            # at most two branch paths.  Try progressively smaller
            # candidate sets until the caps hold.
            attempts = [
                path_set,
                {w: paths[:1] for w, paths in path_set.items()},
                {
                    w: paths[:1]
                    for w, paths in path_set.items()
                    if w == min(path_set)
                },
            ]
            flow = None
            for candidate_set in attempts:
                snapshot = ledger.snapshot()
                sub_plan = merge_paths(
                    network,
                    link_model,
                    swap_model,
                    single,
                    {demand.demand_id: candidate_set},
                    ledger,
                )
                flow = sub_plan.flow_for(demand.demand_id)
                if flow is None:
                    ledger.restore(snapshot)
                    continue
                if (
                    flow.num_paths <= self.max_paths
                    and not self._violates_arity_cap(network, flow)
                ):
                    break
                ledger.restore(snapshot)
                flow = None
            if flow is not None:
                plan.add_flow(flow)

        demand_rates = plan.demand_rates(
            network, link_model, swap_model, rate_cache
        )
        return RoutingResult(
            algorithm=self.name,
            plan=plan,
            total_rate=sum(demand_rates.values()),
            demand_rates=demand_rates,
            remaining_qubits=ledger.total_free_switch_qubits(),
        )

"""Algorithm 2 — Paths Selection: h best paths per width via Yen + Alg. 1.

For every width from ``max_width`` down to 1, the routine finds the *h*
paths with the largest entanglement rate between the demand's endpoints,
using Yen's k-shortest-path deviation scheme with Algorithm 1 as the
underlying single-path solver (the paper plugs its Algorithm 1 into Yen's
structure the same way).

Resources may be reused freely across candidate paths — the paper lets the
path set over-subscribe the network because admission happens later in
Algorithm 3.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.exceptions import RoutingError
from repro.network.demands import Demand
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.allocation import QubitLedger
from repro.routing.compiled import (
    active_routing_core,
    compiled_select_paths,
    yen_deviation_loop,
)
from repro.routing.metrics import ChannelRateCache, path_entanglement_rate
from repro.routing.paths import PathCandidate

EdgeKey = Tuple[int, int]


def select_paths(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    demand: Demand,
    h: int = 3,
    max_width: Optional[int] = None,
    ledger: Optional[QubitLedger] = None,
    max_hops: Optional[int] = None,
    rate_cache: Optional[ChannelRateCache] = None,
    banned_nodes: FrozenSet[int] = frozenset(),
    banned_edges: FrozenSet[EdgeKey] = frozenset(),
) -> Dict[int, List[PathCandidate]]:
    """Select up to *h* candidate paths per width for one demand.

    Returns ``{width: [PathCandidate, ...]}`` with paths sorted by
    decreasing rate.  Widths whose best path is infeasible are omitted.
    ``max_hops`` drops longer candidates — the fidelity-constrained
    extension derives it from a minimum end-to-end fidelity.
    ``rate_cache`` shares memoised channel rates across the whole
    selection (and, when a router passes one, across demands).
    ``banned_nodes``/``banned_edges`` exclude elements from every
    candidate — the serving loop passes its down-element sets here so
    fault state is a search-time mask (bit-identical to the elements
    being absent) instead of a topology mutation.
    """
    if h < 1:
        raise RoutingError(f"h must be >= 1, got {h}")
    if max_width is None:
        max_width = default_max_width(network)
    if max_width < 1:
        raise RoutingError(f"max_width must be >= 1, got {max_width}")
    if rate_cache is None:
        rate_cache = ChannelRateCache(network, link_model)
    if active_routing_core() == "compiled":
        # One CSR snapshot and one set of mask buffers serve every
        # width and every Yen deviation; results are bit-identical.
        result = compiled_select_paths(
            network, link_model, swap_model, demand, h, max_width,
            ledger, rate_cache, banned_nodes, banned_edges,
        )
    else:
        if ledger is None:
            ledger = QubitLedger(network)
        result = {}
        for width in range(max_width, 0, -1):
            paths = _yen_best_paths(
                network, link_model, swap_model, demand, width, h, ledger,
                rate_cache, banned_nodes, banned_edges,
            )
            if paths:
                result[width] = paths
    if max_hops is not None:
        result = {
            width: kept
            for width, paths in result.items()
            if (kept := [p for p in paths if p.hops <= max_hops])
        }
    return result


def default_max_width(network: QuantumNetwork) -> int:
    """The largest width worth trying: an intermediate switch needs
    ``2 * width`` qubits, so half the largest switch capacity."""
    capacities = [
        network.qubit_capacity(s)
        for s in network.switches()
        if network.qubit_capacity(s) is not None
    ]
    if not capacities:
        return 1
    return max(1, max(capacities) // 2)


def _yen_best_paths(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    demand: Demand,
    width: int,
    h: int,
    ledger: QubitLedger,
    rate_cache: Optional[ChannelRateCache] = None,
    banned_nodes: FrozenSet[int] = frozenset(),
    banned_edges: FrozenSet[EdgeKey] = frozenset(),
) -> List[PathCandidate]:
    """Yen's algorithm with Algorithm 1 as the shortest-path subroutine.

    The deviation orchestration itself is the shared
    :func:`~repro.routing.compiled.yen_deviation_loop`; only the solver
    and path scorer below are reference-core specific.  The caller's
    *banned_nodes*/*banned_edges* union with each deviation's own bans.
    """

    def search(spur_source, banned_node_ids, banned_edge_keys):
        return largest_entanglement_rate_path(
            network,
            link_model,
            swap_model,
            spur_source,
            demand.destination,
            width,
            ledger,
            banned_nodes=banned_nodes | frozenset(banned_node_ids),
            banned_edges=banned_edges | frozenset(banned_edge_keys),
            rate_cache=rate_cache,
        )

    def path_rate(nodes):
        try:
            return path_entanglement_rate(
                network, link_model, swap_model, nodes, width, rate_cache
            )
        except RoutingError:  # pragma: no cover - spur paths are valid
            return None

    first = search(demand.source, (), ())
    if first is None:
        return []
    accepted = yen_deviation_loop(first, h, search, path_rate)
    return [
        PathCandidate(demand.demand_id, nodes, width, rate)
        for nodes, rate in accepted
    ]

"""Algorithm 2 — Paths Selection: h best paths per width via Yen + Alg. 1.

For every width from ``max_width`` down to 1, the routine finds the *h*
paths with the largest entanglement rate between the demand's endpoints,
using Yen's k-shortest-path deviation scheme with Algorithm 1 as the
underlying single-path solver (the paper plugs its Algorithm 1 into Yen's
structure the same way).

Resources may be reused freely across candidate paths — the paper lets the
path set over-subscribe the network because admission happens later in
Algorithm 3.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import RoutingError
from repro.network.demands import Demand
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.allocation import QubitLedger
from repro.routing.metrics import ChannelRateCache, path_entanglement_rate
from repro.routing.paths import PathCandidate

EdgeKey = Tuple[int, int]


def _ekey(a: int, b: int) -> EdgeKey:
    return (a, b) if a < b else (b, a)


def select_paths(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    demand: Demand,
    h: int = 3,
    max_width: Optional[int] = None,
    ledger: Optional[QubitLedger] = None,
    max_hops: Optional[int] = None,
    rate_cache: Optional[ChannelRateCache] = None,
) -> Dict[int, List[PathCandidate]]:
    """Select up to *h* candidate paths per width for one demand.

    Returns ``{width: [PathCandidate, ...]}`` with paths sorted by
    decreasing rate.  Widths whose best path is infeasible are omitted.
    ``max_hops`` drops longer candidates — the fidelity-constrained
    extension derives it from a minimum end-to-end fidelity.
    ``rate_cache`` shares memoised channel rates across the whole
    selection (and, when a router passes one, across demands).
    """
    if h < 1:
        raise RoutingError(f"h must be >= 1, got {h}")
    if max_width is None:
        max_width = default_max_width(network)
    if max_width < 1:
        raise RoutingError(f"max_width must be >= 1, got {max_width}")
    if ledger is None:
        ledger = QubitLedger(network)
    if rate_cache is None:
        rate_cache = ChannelRateCache(network, link_model)
    result: Dict[int, List[PathCandidate]] = {}
    for width in range(max_width, 0, -1):
        paths = _yen_best_paths(
            network, link_model, swap_model, demand, width, h, ledger,
            rate_cache,
        )
        if max_hops is not None:
            paths = [p for p in paths if p.hops <= max_hops]
        if paths:
            result[width] = paths
    return result


def default_max_width(network: QuantumNetwork) -> int:
    """The largest width worth trying: an intermediate switch needs
    ``2 * width`` qubits, so half the largest switch capacity."""
    capacities = [
        network.qubit_capacity(s)
        for s in network.switches()
        if network.qubit_capacity(s) is not None
    ]
    if not capacities:
        return 1
    return max(1, max(capacities) // 2)


def _yen_best_paths(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    demand: Demand,
    width: int,
    h: int,
    ledger: QubitLedger,
    rate_cache: Optional[ChannelRateCache] = None,
) -> List[PathCandidate]:
    """Yen's algorithm with Algorithm 1 as the shortest-path subroutine."""
    first = largest_entanglement_rate_path(
        network,
        link_model,
        swap_model,
        demand.source,
        demand.destination,
        width,
        ledger,
        rate_cache=rate_cache,
    )
    if first is None:
        return []
    accepted: List[Tuple[Tuple[int, ...], float]] = [first]
    seen: Set[Tuple[int, ...]] = {first[0]}
    counter = itertools.count()
    # Max-heap of candidate deviations: (-rate, tiebreak, nodes).
    candidates: List[Tuple[float, int, Tuple[int, ...]]] = []

    while len(accepted) < h:
        previous_nodes = accepted[-1][0]
        for deviation_index in range(len(previous_nodes) - 1):
            root = previous_nodes[: deviation_index + 1]
            spur_node = previous_nodes[deviation_index]
            banned_edges: Set[EdgeKey] = set()
            for path_nodes, _ in accepted:
                if tuple(path_nodes[: deviation_index + 1]) == root:
                    banned_edges.add(
                        _ekey(
                            path_nodes[deviation_index],
                            path_nodes[deviation_index + 1],
                        )
                    )
            banned_nodes = frozenset(root[:-1])
            spur = largest_entanglement_rate_path(
                network,
                link_model,
                swap_model,
                spur_node,
                demand.destination,
                width,
                ledger,
                banned_nodes=banned_nodes,
                banned_edges=frozenset(banned_edges),
                rate_cache=rate_cache,
            )
            if spur is None:
                continue
            total_nodes = root[:-1] + spur[0]
            if total_nodes in seen:
                continue
            seen.add(total_nodes)
            try:
                total_rate = path_entanglement_rate(
                    network, link_model, swap_model, total_nodes, width,
                    rate_cache,
                )
            except RoutingError:  # pragma: no cover - spur paths are valid
                continue
            heapq.heappush(
                candidates, (-total_rate, next(counter), total_nodes)
            )
        if not candidates:
            break
        negative_rate, _, nodes = heapq.heappop(candidates)
        accepted.append((nodes, -negative_rate))

    return [
        PathCandidate(demand.demand_id, nodes, width, rate)
        for nodes, rate in accepted
    ]

"""Flow-like graphs (paper Definition 1) and their entanglement rate.

A flow-like graph is the union of several source->destination paths serving
the *same* demanded state; nodes shared by more than one of those paths are
*branch nodes* that fuse all their incident links for the state in a single
GHZ measurement.  The entanglement rate follows the paper's Equation 1:

    P(a, D) = 1 - prod_{c in children(a)} (1 - P_channel(a, c) * q_c * P(c, D))

evaluated recursively from the source, where ``q_c`` is the fusion success
probability of child ``c`` (1 for the destination user) and ``P_channel``
the width-dependent channel rate.  The recursion assumes branch subtrees
succeed independently — the same approximation the paper makes; the Monte
Carlo engine in :mod:`repro.simulation` quantifies the error.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import RoutingError
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.compiled import active_routing_core
from repro.routing.metrics import ChannelRateCache, channel_rate

EdgeKey = Tuple[int, int]


def _ekey(a: int, b: int) -> EdgeKey:
    return (a, b) if a < b else (b, a)


#: Spacing between consecutive topological positions.  Midpoint
#: insertion halves a gap per new node squeezed between the same two
#: anchors; 2^20 allows ~20 such squeezes before the (cheap, lazy)
#: renumber — far beyond what a flow's handful of paths can trigger.
_ORDER_GAP = 1 << 20

#: Edge count from which an evaluation goes to the vectorized
#: Equation-1 evaluator.  Below it the scalar walk wins outright: the
#: fixed cost of the numpy gathers and the evaluation-program build
#: exceeds a small flow's whole per-child loop.  Same calibration logic
#: as the compiled kernel's ``_VECTOR_ROW_MIN``.
_VECTOR_EVAL_MIN = 64


class _Eq1Program:
    """Flattened Equation-1 evaluation schedule for one flow structure.

    A pure function of the child map and the destination: the flow's
    nodes grouped by *dependency level* (a node's level is one above
    its deepest child; the destination is level 0), each node with its
    slice of *terms* — one per (node, child) edge, carrying the
    canonical edge key, the child's memo slot and the child id when
    the child might fuse (``None`` for the destination, whose factor
    is an exact 1.0).  All nodes of one level depend only on lower
    levels, so a whole level evaluates as three array operations:
    an elementwise ``1 - coef * memo[child]`` over the level's term
    slice, one ``np.multiply.reduceat`` for the per-node failure
    products (sequential left-to-right within each slice — the exact
    floats of the scalar loop), and one scatter of ``1 - failure``
    into the memo vector.  Widths, rates, swap factors and
    ``extra_widths`` stay out of the program — they are gathered per
    evaluation — so the program survives
    :meth:`FlowLikeGraph.widen_edge` and is invalidated only by
    structural mutations, exactly like the topological-order memo.
    """

    __slots__ = (
        "term_keys",
        "term_fusing_child",
        "levels",
        "num_slots",
        "source_slot",
    )

    def __init__(
        self,
        term_keys: List[EdgeKey],
        term_fusing_child: List[Optional[int]],
        levels: List[Tuple[int, int, "np.ndarray", "np.ndarray", "np.ndarray"]],
        num_slots: int,
        source_slot: int,
    ):
        self.term_keys = term_keys
        self.term_fusing_child = term_fusing_child
        #: Per level: (term start, term end, child memo slots of the
        #: level's terms, reduceat offsets relative to the start, memo
        #: slots the level's nodes write).
        self.levels = levels
        self.num_slots = num_slots
        self.source_slot = source_slot


class FlowLikeGraph:
    """The route of one demanded state: one or more merged paths.

    The graph stores the set of constituent paths, the directed child map
    induced by traversing each path from source to destination, and the
    channel width of every edge.  Paths whose direction would conflict with
    the existing orientation (creating a directed cycle) are rejected at
    :meth:`add_path` time, keeping Equation 1 well defined.

    Admission loops probe many trial merges per accepted one (Algorithm 3
    copies the flow, adds a candidate, evaluates the rate), so the
    structural state behind those probes is maintained incrementally
    rather than recomputed per trial: a topological *position map* over
    the whole child map certifies acyclicity in O(path length) for the
    common case (an exact no-copy DFS handles the rest), the
    fusion-arity map absorbs per-edge width deltas in place, and
    :meth:`copy` clones all memos instead of dropping them.  Every memo
    is invalidated the same way: any mutation it cannot absorb exactly
    resets it to ``None`` for a lazy rebuild.
    """

    def __init__(self, demand_id: int, source: int, destination: int):
        if source == destination:
            raise RoutingError("source and destination must differ")
        self.demand_id = demand_id
        self.source = source
        self.destination = destination
        self._paths: List[Tuple[int, ...]] = []
        # Per-path widths in merge order: the record remove_path needs
        # to recompute shared-edge widths after a departure.
        self._path_widths: List[int] = []
        self._children: Dict[int, Set[int]] = {}
        self._edge_widths: Dict[EdgeKey, int] = {}
        # Derived-state memos: the node->fusion-arity map (else every
        # rate call rescans all edges per node), the topological order
        # the iterative Equation-1 evaluator walks, and the node->int
        # position map witnessing that order (every edge goes from a
        # lower to a higher position).  The position map is add_path's
        # incremental cycle check: a candidate whose existing nodes
        # appear in increasing position order provably cannot close a
        # cycle, and its new nodes slot into the integer gaps.  All
        # three are maintained in place where a mutation's effect is
        # exact and reset to ``None`` (lazy rebuild) where it is not.
        self._arity_cache: Optional[Dict[int, int]] = None
        self._topo_cache: Optional[List[int]] = None
        self._order_pos: Optional[Dict[int, int]] = {}
        # The vectorized Equation-1 evaluator's flattened schedule,
        # invalidated by structural mutations (widths are gathered live
        # per evaluation, so pure width changes keep it).
        self._eq1_cache: Optional[_Eq1Program] = None

    # ------------------------------------------------------------------
    # Construction

    def add_path(self, nodes: Sequence[int], width: int) -> None:
        """Merge a source->destination path of channel *width* into the graph.

        Edges already present are *shared* with the earlier paths (the
        paper's merge rule) and keep the larger of the two widths; new
        edges get *width*.  Callers charging qubits must charge the width
        delta on shared edges (see Algorithm 3's admission).  Raises
        :class:`RoutingError` if the path endpoints do not match the
        demand or if merging would create a directed cycle.
        """
        nodes = tuple(nodes)
        if len(nodes) < 2:
            raise RoutingError(f"path needs >= 2 nodes, got {nodes}")
        if nodes[0] != self.source or nodes[-1] != self.destination:
            raise RoutingError(
                f"path {nodes} does not connect demand endpoints "
                f"({self.source}, {self.destination})"
            )
        if len(set(nodes)) != len(nodes):
            raise RoutingError(f"path must be loopless, got {nodes}")
        if width < 1:
            raise RoutingError(f"width must be >= 1, got {width}")
        arities = self._arity_cache
        edge_widths = self._edge_widths
        if nodes in self._paths:
            # Re-adding an existing path is a pure width upgrade.
            index = self._paths.index(nodes)
            self._path_widths[index] = max(self._path_widths[index], width)
            for a, b in zip(nodes, nodes[1:]):
                key = _ekey(a, b)
                old = edge_widths[key]
                if width > old:
                    edge_widths[key] = width
                    if arities is not None:
                        delta = width - old
                        arities[a] = arities.get(a, 0) + delta
                        arities[b] = arities.get(b, 0) + delta
            return
        # Incremental cycle check: if the path's already-known nodes
        # appear in strictly increasing topological position, no edge of
        # the candidate can point "backwards", so the merged graph has a
        # valid order (slot the new nodes into the gaps) and is acyclic.
        # Otherwise fall back to an exact DFS over the virtual union —
        # no trial copy of the child map either way, and a rejected
        # merge leaves the graph untouched because nothing has mutated
        # yet.
        pos = self._order_pos
        if pos is None:
            pos = self._rebuild_order()
        anchors: List[Tuple[int, int]] = []
        ordered = True
        previous = None
        for i, node in enumerate(nodes):
            p = pos.get(node)
            if p is None:
                continue
            if previous is not None and p <= previous:
                ordered = False
                break
            previous = p
            anchors.append((i, p))
        if ordered:
            if not _place_between_anchors(nodes, anchors, pos):
                self._order_pos = None  # gap exhausted; renumber lazily
        else:
            if _union_has_cycle(self._children, list(zip(nodes, nodes[1:]))):
                raise RoutingError(
                    f"merging path {nodes} would create a directed cycle "
                    "in the flow-like graph"
                )
            self._order_pos = None
        children = self._children
        for a, b in zip(nodes, nodes[1:]):
            children.setdefault(a, set()).add(b)
        self._paths.append(nodes)
        self._path_widths.append(width)
        for a, b in zip(nodes, nodes[1:]):
            key = _ekey(a, b)
            old = edge_widths.get(key, 0)
            if width > old:
                edge_widths[key] = width
                if arities is not None:
                    delta = width - old
                    arities[a] = arities.get(a, 0) + delta
                    arities[b] = arities.get(b, 0) + delta
        self._topo_cache = None
        self._eq1_cache = None

    def remove_path(self, nodes: Sequence[int]) -> Dict[EdgeKey, int]:
        """Remove one constituent path; returns the per-edge freed widths.

        The inverse of :meth:`add_path`, for online departures.  Edges no
        remaining constituent path covers are dropped entirely — taking
        any :meth:`widen_edge` extras piled onto them with them — while
        shared edges shrink to the largest remaining constituent width
        plus their surviving extras.  The returned ``{edge: width}`` map
        is exactly the capacity a qubit ledger should release at each
        endpoint; an empty graph (last path removed) evaluates to rate 0.
        Raises :class:`RoutingError` when *nodes* is not a constituent.
        """
        nodes = tuple(nodes)
        try:
            index = self._paths.index(nodes)
        except ValueError:
            raise RoutingError(
                f"path {nodes} is not a constituent of this flow-like graph"
            ) from None
        # Width cover by constituent paths before/after the removal; the
        # difference between the live edge width and the full cover is
        # the widen_edge extras, which survive on edges that stay.
        full_cover: Dict[EdgeKey, int] = {}
        for path, width in zip(self._paths, self._path_widths):
            for a, b in zip(path, path[1:]):
                key = _ekey(a, b)
                full_cover[key] = max(full_cover.get(key, 0), width)
        del self._paths[index]
        del self._path_widths[index]
        remaining_cover: Dict[EdgeKey, int] = {}
        children: Dict[int, Set[int]] = {}
        for path, width in zip(self._paths, self._path_widths):
            for a, b in zip(path, path[1:]):
                children.setdefault(a, set()).add(b)
                key = _ekey(a, b)
                remaining_cover[key] = max(remaining_cover.get(key, 0), width)
        self._children = children
        released: Dict[EdgeKey, int] = {}
        for a, b in zip(nodes, nodes[1:]):
            key = _ekey(a, b)
            current = self._edge_widths[key]
            kept = remaining_cover.get(key, 0)
            if kept == 0:
                released[key] = current
                del self._edge_widths[key]
                continue
            new_width = kept + (current - full_cover[key])
            if new_width < current:
                released[key] = current - new_width
                self._edge_widths[key] = new_width
        self._arity_cache = None
        self._topo_cache = None
        self._order_pos = None
        self._eq1_cache = None
        return released

    def copy(self) -> "FlowLikeGraph":
        """Independent deep copy (used for trial merges).

        Clones the derived-state memos too: a trial merge mutates the
        copy once and evaluates its rate once, so arriving with warm
        arity/order state is exactly the admission loop's hot pattern.
        """
        clone = FlowLikeGraph(self.demand_id, self.source, self.destination)
        clone._paths = list(self._paths)
        clone._path_widths = list(self._path_widths)
        clone._children = {k: set(v) for k, v in self._children.items()}
        clone._edge_widths = dict(self._edge_widths)
        arities = self._arity_cache
        clone._arity_cache = dict(arities) if arities is not None else None
        # The topo list is rebuilt whole, never edited, so sharing is safe.
        clone._topo_cache = self._topo_cache
        pos = self._order_pos
        clone._order_pos = dict(pos) if pos is not None else None
        # The Equation-1 program is immutable and structure-pure, so the
        # clone shares it (and the heat that built it) until either side
        # mutates — each then drops only its own reference.
        clone._eq1_cache = self._eq1_cache
        return clone

    def widen_edge(self, u: int, v: int, extra: int = 1) -> None:
        """Increase the width of an existing edge (Algorithm 4's action)."""
        key = _ekey(u, v)
        if key not in self._edge_widths:
            raise RoutingError(f"edge {key} is not part of this flow-like graph")
        if extra < 1:
            raise RoutingError(f"extra width must be >= 1, got {extra}")
        self._edge_widths[key] += extra
        arities = self._arity_cache
        if arities is not None:
            arities[u] = arities.get(u, 0) + extra
            arities[v] = arities.get(v, 0) + extra

    # ------------------------------------------------------------------
    # Queries

    @property
    def paths(self) -> List[Tuple[int, ...]]:
        """The constituent paths, in merge order."""
        return list(self._paths)

    @property
    def num_paths(self) -> int:
        """Number of merged paths."""
        return len(self._paths)

    def edges(self) -> List[EdgeKey]:
        """Canonical keys of all edges, sorted."""
        return sorted(self._edge_widths)

    def edge_width(self, u: int, v: int) -> int:
        """Channel width of edge (*u*, *v*)."""
        key = _ekey(u, v)
        try:
            return self._edge_widths[key]
        except KeyError:
            raise RoutingError(
                f"edge {key} is not part of this flow-like graph"
            ) from None

    def edge_widths(self) -> Dict[EdgeKey, int]:
        """Copy of the edge->width map."""
        return dict(self._edge_widths)

    def contains_edge(self, u: int, v: int) -> bool:
        """True iff the graph uses edge (*u*, *v*)."""
        return _ekey(u, v) in self._edge_widths

    def nodes(self) -> List[int]:
        """All nodes appearing in any merged path, sorted."""
        seen: Set[int] = set()
        for path in self._paths:
            seen.update(path)
        return sorted(seen)

    def branch_nodes(self) -> List[int]:
        """Nodes with more than one child (paper's branch nodes)."""
        return sorted(
            node for node, children in self._children.items() if len(children) > 1
        )

    def children_of(self, node: int) -> List[int]:
        """Directed children of *node* (towards the destination)."""
        return sorted(self._children.get(node, ()))

    def fusion_arity(self, node: int) -> int:
        """Number of quantum links *node* fuses for this state.

        Counts one link per unit of width on every incident edge; the
        destination/source users terminate rather than fuse.
        """
        return self._fusion_arities().get(node, 0)

    def _fusion_arities(self) -> Dict[int, int]:
        """The node->fusion-arity map, memoised until the next mutation.

        Equation 1 queries the arity of every child per evaluation and
        Algorithm 4 evaluates per (edge, flow, probe); without the memo
        each query rescans every edge of the graph.
        """
        cache = self._arity_cache
        if cache is None:
            cache = {}
            for (a, b), width in self._edge_widths.items():
                cache[a] = cache.get(a, 0) + width
                cache[b] = cache.get(b, 0) + width
            self._arity_cache = cache
        return cache

    def _topological_order(self) -> List[int]:
        """All nodes of the graph, parents before children.

        Every node lies on some source->destination constituent path, so
        this covers exactly the source-reachable set.  Derived from the
        maintained position map (sorting by position is a valid
        topological order by the map's invariant) and memoised until the
        next structural mutation; well defined because merges that would
        create a directed cycle are rejected.  Equation 1's result does
        not depend on *which* valid order is walked — each node's value
        is a function of its children's memoised values only.
        """
        order = self._topo_cache
        if order is None:
            pos = self._order_pos
            if pos is None:
                pos = self._rebuild_order()
            order = sorted(pos, key=pos.__getitem__)
            self._topo_cache = order
        return order

    def _rebuild_order(self) -> Dict[int, int]:
        """Recompute the topological position map from the child map.

        The fallback for mutations the incremental placement cannot
        absorb exactly (an exact-DFS admission, a removal, a gap
        collision).  DFS reverse-post-order over the (acyclic by
        invariant) child map, positions spaced ``_ORDER_GAP`` apart.
        """
        children = self._children
        order: List[int] = []
        visited: Set[int] = set()
        roots = set(children)
        for kids in children.values():
            roots.update(kids)
        for root in sorted(roots):
            if root in visited:
                continue
            visited.add(root)
            stack: List[Tuple[int, object]] = [
                (root, iter(sorted(children.get(root, ()))))
            ]
            while stack:
                node, iterator = stack[-1]
                advanced = False
                for child in iterator:
                    if child not in visited:
                        visited.add(child)
                        stack.append(
                            (child, iter(sorted(children.get(child, ()))))
                        )
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()
        order.reverse()
        pos = {node: i * _ORDER_GAP for i, node in enumerate(order)}
        self._order_pos = pos
        return pos

    def qubits_used_at(self, node: int) -> int:
        """Communication qubits this state consumes at *node*."""
        return self.fusion_arity(node)

    # ------------------------------------------------------------------
    # Rate (paper Equation 1)

    def entanglement_rate(
        self,
        network: QuantumNetwork,
        link_model: LinkModel,
        swap_model: SwapModel,
        extra_widths: Optional[Dict[EdgeKey, int]] = None,
        rate_cache: Optional[ChannelRateCache] = None,
    ) -> float:
        """Analytic entanglement rate of this flow-like graph.

        ``extra_widths`` adds hypothetical width to edges without mutating
        the graph — Algorithm 4 uses this to evaluate marginal gains.
        ``rate_cache`` memoises per-(edge, width) channel rates across
        calls sharing one (network, link_model) pair; passing it changes
        nothing but the amount of recomputation.

        Under the compiled core three bit-identical evaluators share the
        work: the vectorized one (numpy gathers over the compiled
        snapshot's rate columns through a cached evaluation program)
        handles flows at least ``_VECTOR_EVAL_MIN`` edges wide — where
        the array multiply outruns the per-child loop — the iterative
        scalar loop handles smaller flows and every graph without a
        compiled snapshot, and the recursive reference remains the
        oracle.
        """
        if not self._paths:
            return 0.0
        if active_routing_core() == "compiled":
            snapshot = (
                rate_cache.compiled_snapshot
                if rate_cache is not None
                else None
            )
            if (
                snapshot is not None
                and len(self._edge_widths) >= _VECTOR_EVAL_MIN
            ):
                return self._rate_vectorized(
                    swap_model, extra_widths or {}, rate_cache,
                    snapshot,
                )
            return self._rate_iterative(
                network, link_model, swap_model, extra_widths or {},
                rate_cache,
            )
        memo: Dict[int, float] = {}
        return self._rate_from(
            self.source, network, link_model, swap_model, memo,
            extra_widths or {}, rate_cache,
        )

    def _rate_iterative(
        self,
        network: QuantumNetwork,
        link_model: LinkModel,
        swap_model: SwapModel,
        extra_widths: Dict[EdgeKey, int],
        rate_cache: Optional[ChannelRateCache],
    ) -> float:
        """Equation 1 evaluated bottom-up in reverse topological order.

        Per-node the failure product iterates the same child set in the
        same order as the recursive reference, so the result is
        bit-identical; the win is the memoised arity map, one bulk
        channel-rate gather up front
        (:meth:`~repro.routing.metrics.ChannelRateCache.rates_bulk`)
        and the absence of Python call frames per node.
        """
        arities = self._fusion_arities()
        destination = self.destination
        memo: Dict[int, float] = {destination: 1.0}
        children_of = self._children
        edge_widths = self._edge_widths
        has_extra = bool(extra_widths)
        if rate_cache is not None:
            # Every flow edge is exactly one (node, child) term, so one
            # bulk lookup over the effective widths prefetches every
            # edge rate of the walk below.
            if has_extra:
                effective = {
                    key: width + extra_widths.get(key, 0)
                    for key, width in edge_widths.items()
                }
            else:
                effective = edge_widths
            edge_rates: Optional[Dict[EdgeKey, float]] = dict(
                zip(
                    effective,
                    rate_cache.rates_bulk(
                        effective.keys(), effective.values()
                    ),
                )
            )
        else:
            edge_rates = None
        # The snapshot the routing call already compiled (if any) turns
        # the per-child user test into an array read; the flags were
        # copied from the same node records, so the outcome is equal.
        snapshot = (
            rate_cache.compiled_snapshot if rate_cache is not None else None
        )
        if snapshot is not None:
            snapshot_is_user = snapshot.is_user
            snapshot_index_of = snapshot.index_of
        swap_fn = swap_model.success_probability
        # success_probability is a pure function of the arity; one memo
        # per evaluation skips its re-validation for repeated arities.
        swap_memo: Dict[int, float] = {}
        for node in reversed(self._topological_order()):
            if node == destination:
                continue
            failure = 1.0
            for child in children_of.get(node, ()):
                key = (node, child) if node < child else (child, node)
                if edge_rates is not None:
                    edge_rate = edge_rates[key]
                else:
                    width = edge_widths[key]
                    if has_extra:
                        width += extra_widths.get(key, 0)
                    edge_rate = channel_rate(
                        network, link_model, node, child, width
                    )
                if child == destination:
                    swap = 1.0
                elif (
                    snapshot_is_user[snapshot_index_of[child]]
                    if snapshot is not None
                    else network.node(child).is_user
                ):
                    swap = 1.0
                else:
                    arity = arities[child]
                    if has_extra:
                        arity += extra_widths_total(extra_widths, child)
                    swap = swap_memo.get(arity)
                    if swap is None:
                        swap = swap_fn(arity)
                        swap_memo[arity] = swap
                failure *= 1.0 - edge_rate * swap * memo[child]
            memo[node] = 1.0 - failure
        return memo[self.source]

    def _eq1_program(self) -> _Eq1Program:
        """The flow's Equation-1 evaluation program, built lazily.

        Nodes are emitted level by level (a node's level is one above
        its deepest child), preserving the reverse topological order
        within each level; per node the builder iterates its child set
        exactly once in the same set order the scalar walk uses, so
        the per-node product order (and with it every float) is
        pinned.  Every child sits at a strictly lower level than its
        parents, so a level's terms only read memo slots written by
        earlier levels.  The node order differs from the scalar
        walk's, which cannot change any float: each node's value is a
        pure function of its own terms.
        """
        program = self._eq1_cache
        if program is None:
            destination = self.destination
            children_of = self._children
            order = [
                node
                for node in reversed(self._topological_order())
                if node != destination
            ]
            level: Dict[int, int] = {destination: 0}
            by_level: Dict[int, List[int]] = {}
            for node in order:
                depth = 1 + max(
                    level[child] for child in children_of[node]
                )
                level[node] = depth
                by_level.setdefault(depth, []).append(node)
            term_keys: List[EdgeKey] = []
            term_fusing_child: List[Optional[int]] = []
            levels = []
            slot_of: Dict[int, int] = {destination: 0}
            for depth in sorted(by_level):
                start = len(term_keys)
                offsets: List[int] = []
                child_slots: List[int] = []
                slots: List[int] = []
                for node in by_level[depth]:
                    offsets.append(len(term_keys) - start)
                    for child in children_of[node]:
                        term_keys.append(
                            (node, child) if node < child else (child, node)
                        )
                        child_slots.append(slot_of[child])
                        term_fusing_child.append(
                            None if child == destination else child
                        )
                    slot = len(slot_of)
                    slot_of[node] = slot
                    slots.append(slot)
                levels.append((
                    start,
                    len(term_keys),
                    np.asarray(child_slots, dtype=np.intp),
                    np.asarray(offsets, dtype=np.intp),
                    np.asarray(slots, dtype=np.intp),
                ))
            program = _Eq1Program(
                term_keys,
                term_fusing_child,
                levels,
                len(slot_of),
                slot_of[self.source],
            )
            self._eq1_cache = program
        return program

    def _rate_vectorized(
        self,
        swap_model: SwapModel,
        extra_widths: Dict[EdgeKey, int],
        rate_cache: ChannelRateCache,
        snapshot,
    ) -> float:
        """Equation 1 over the compiled snapshot's arrays, bit-exact.

        The cached program (:meth:`_eq1_program`) fixes the term
        layout; per call the effective widths are gathered from the
        live edge-width map, every term's channel rate comes from one
        :meth:`~repro.routing.metrics.ChannelRateCache.rates_bulk`
        gather over the snapshot's width-indexed columns, the swap
        factors from the snapshot's user flags and the memoised arity
        map, and the per-term coefficient ``rate * swap`` from one
        numpy elementwise multiply.  The failure products then run
        level by level: one elementwise ``1 - coef * memo[child]``
        over each level's term slice and one
        ``np.multiply.reduceat`` per level for the per-node products.
        Identical floats to the scalar walk: float64 elementwise
        products equal the scalar products bit for bit
        (``(rate * swap) * memo`` is exactly how the scalar walk
        associates), and ``reduceat`` multiplies each node's slice
        sequentially left to right — the scalar loop's order.
        """
        program = self._eq1_program()
        term_keys = program.term_keys
        edge_widths = self._edge_widths
        has_extra = bool(extra_widths)
        if has_extra:
            widths = [
                edge_widths[key] + extra_widths.get(key, 0)
                for key in term_keys
            ]
        else:
            widths = [edge_widths[key] for key in term_keys]
        rates = rate_cache.rates_bulk(term_keys, widths)
        arities = self._fusion_arities()
        is_user = snapshot.is_user
        index_of = snapshot.index_of
        swap_fn = swap_model.success_probability
        swap_memo: Dict[int, float] = {}
        swaps = np.ones(len(term_keys))
        for i, child in enumerate(program.term_fusing_child):
            if child is None or is_user[index_of[child]]:
                continue
            arity = arities[child]
            if has_extra:
                arity += extra_widths_total(extra_widths, child)
            swap = swap_memo.get(arity)
            if swap is None:
                swap = swap_fn(arity)
                swap_memo[arity] = swap
            swaps[i] = swap
        coef = np.asarray(rates) * swaps
        memo_vec = np.zeros(program.num_slots)
        memo_vec[0] = 1.0  # the destination's slot
        for start, end, child_slots, offsets, slots in program.levels:
            terms = 1.0 - coef[start:end] * memo_vec.take(child_slots)
            memo_vec[slots] = 1.0 - np.multiply.reduceat(terms, offsets)
        return float(memo_vec[program.source_slot])

    def _rate_from(
        self,
        node: int,
        network: QuantumNetwork,
        link_model: LinkModel,
        swap_model: SwapModel,
        memo: Dict[int, float],
        extra_widths: Dict[EdgeKey, int],
        rate_cache: Optional[ChannelRateCache],
    ) -> float:
        if node == self.destination:
            return 1.0
        if node in memo:
            return memo[node]
        failure = 1.0
        for child in self._children.get(node, ()):
            key = _ekey(node, child)
            width = self._edge_widths[key] + extra_widths.get(key, 0)
            if rate_cache is not None:
                edge_rate = rate_cache.rate(node, child, width)
            else:
                edge_rate = channel_rate(network, link_model, node, child, width)
            if child == self.destination or network.node(child).is_user:
                swap = 1.0
            else:
                # The child fuses every link it holds for this state: one
                # per unit of width on each incident edge (matters only
                # for arity-dependent swap models; the paper's constant-q
                # model ignores the arity).
                swap = swap_model.success_probability(
                    self.fusion_arity(child) + extra_widths_total(
                        extra_widths, child
                    )
                )
            downstream = self._rate_from(
                child, network, link_model, swap_model, memo, extra_widths,
                rate_cache,
            )
            failure *= 1.0 - edge_rate * swap * downstream
        rate = 1.0 - failure
        memo[node] = rate
        return rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlowLikeGraph(demand={self.demand_id}, "
            f"{self.source}->{self.destination}, paths={self.num_paths}, "
            f"edges={len(self._edge_widths)})"
        )


def extra_widths_total(extra_widths: Dict[EdgeKey, int], node: int) -> int:
    """Extra fusion arity *node* gains from hypothetical widths."""
    return sum(
        extra for (u, v), extra in extra_widths.items() if node in (u, v)
    )


def _place_between_anchors(
    nodes: Sequence[int],
    anchors: List[Tuple[int, int]],
    pos: Dict[int, int],
) -> bool:
    """Slot a path's new nodes into the position-map gaps, in place.

    ``anchors`` are the ``(path index, position)`` pairs of the path's
    already-known nodes, strictly increasing in position (the caller's
    fast-path certificate).  Every stretch of new nodes lies between
    two anchors — constituent paths start and end at the demand
    endpoints, which are known the moment the graph is non-empty — and
    gets evenly spaced positions inside the anchor gap.  The one
    exception is the very first path of an empty graph (no anchors):
    its nodes seed the map at ``_ORDER_GAP`` spacing.  Returns False
    without mutating anything if some gap is too tight to hold its new
    nodes distinctly, in which case the caller renumbers.
    """
    if not anchors:
        for i, node in enumerate(nodes):
            pos[node] = i * _ORDER_GAP
        return True
    for (i0, p0), (i1, p1) in zip(anchors, anchors[1:]):
        if i1 - i0 > 1 and p1 - p0 <= i1 - i0 - 1:
            return False
    for (i0, p0), (i1, p1) in zip(anchors, anchors[1:]):
        squeezed = i1 - i0 - 1
        if squeezed:
            step = (p1 - p0) // (squeezed + 1)
            for j in range(1, squeezed + 1):
                pos[nodes[i0 + j]] = p0 + j * step
    return True


def _union_has_cycle(
    children: Dict[int, Set[int]], new_edges: List[Tuple[int, int]]
) -> bool:
    """Directed-cycle test over ``children`` plus a candidate path's edges.

    The exact fallback for merges the incremental position check cannot
    certify: iterative DFS colouring over the *virtual* union — the
    child map is read, never copied, and each path node contributes at
    most one extra successor.
    """
    extra = {a: b for a, b in new_edges}
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    roots = list(children)
    roots.extend(extra)
    for root in roots:
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[int, Optional[object]]] = [(root, None)]
        while stack:
            node, iterator = stack.pop()
            if iterator is None:
                if color.get(node, WHITE) != WHITE:
                    continue
                color[node] = GRAY
                successors = sorted(children.get(node, ()))
                bonus = extra.get(node)
                if bonus is not None and bonus not in children.get(node, ()):
                    successors.append(bonus)
                iterator = iter(successors)
            advanced = False
            for child in iterator:
                state = color.get(child, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    stack.append((node, iterator))
                    stack.append((child, None))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
    return False

"""Algorithm 4 — Remaining Qubits Assignment.

After Algorithm 3 a few qubits usually remain in switches (width rounding,
rejected paths).  Algorithm 4 converts them into extra parallel links: for
every edge whose endpoints both still hold a free qubit, the extra link is
granted to the demand whose flow-like graph gains the most entanglement
rate from widening that edge, repeating until the edge's endpoints run dry
or no demand benefits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.allocation import QubitLedger
from repro.routing.metrics import ChannelRateCache
from repro.routing.plan import RoutingPlan

EdgeKey = Tuple[int, int]

#: Gains below this threshold are treated as zero (floating-point guard).
_MIN_GAIN = 1e-15


def assign_remaining_qubits(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    plan: RoutingPlan,
    ledger: QubitLedger,
    rate_cache: Optional[ChannelRateCache] = None,
) -> List[Tuple[EdgeKey, int]]:
    """Run Algorithm 4, widening edges of *plan* in place.

    Returns the list of ``(edge, demand_id)`` assignments made, in order.
    Residual scoring re-evaluates Equation 1 once per (edge, flow)
    candidate, so the per-(edge, width) channel rates repeat heavily;
    ``rate_cache`` (created here when not handed down from the caller's
    search phase) memoises them without changing any result.
    """
    assignments: List[Tuple[EdgeKey, int]] = []
    flows = plan.flows()
    if not flows:
        return assignments
    if rate_cache is None:
        rate_cache = ChannelRateCache(network, link_model)
    # Only edges used by some flow can absorb an extra link; a link on an
    # unused edge has no state to join.
    candidate_edges = sorted(
        {edge for flow in flows for edge in flow.edges()}
    )
    # A flow's base rate only changes when the flow itself is widened,
    # yet the candidate loop re-reads it per (edge, probe); memoise it
    # per demand and drop the entry on widening.
    base_rates: Dict[int, float] = {}
    for u, v in candidate_edges:
        while ledger.can_reserve_edge(u, v, 1):
            best_gain = 0.0
            best_flow = None
            for flow in flows:
                if not flow.contains_edge(u, v):
                    continue
                base = base_rates.get(flow.demand_id)
                if base is None:
                    base = flow.entanglement_rate(
                        network, link_model, swap_model, rate_cache=rate_cache
                    )
                    base_rates[flow.demand_id] = base
                widened = flow.entanglement_rate(
                    network, link_model, swap_model,
                    extra_widths={(u, v) if u < v else (v, u): 1},
                    rate_cache=rate_cache,
                )
                gain = widened - base
                if gain > best_gain + _MIN_GAIN:
                    best_gain = gain
                    best_flow = flow
            if best_flow is None:
                break
            ledger.reserve_edge(u, v, 1)
            best_flow.widen_edge(u, v)
            base_rates.pop(best_flow.demand_id, None)
            assignments.append(((u, v) if u < v else (v, u), best_flow.demand_id))
    return assignments

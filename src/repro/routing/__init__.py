"""Entanglement routing: metrics, the paper's Algorithms 1-4 and baselines.

Public entry points:

* :class:`~repro.routing.nfusion.AlgNFusion` — the paper's ALG-N-FUSION
  (Algorithms 1-4 composed), producing a :class:`~repro.routing.plan.RoutingPlan`.
* :mod:`repro.routing.baselines` — Q-CAST, Q-CAST-N, B1 and MCF
  comparators.
* :mod:`repro.routing.registry` — the router spec/registry API:
  :class:`~repro.routing.registry.RouterSpec`,
  :func:`~repro.routing.registry.make_router` and
  :func:`~repro.routing.registry.register_router` address any router by
  key + parameters instead of a hand-built object.
* :func:`~repro.routing.metrics.path_entanglement_rate` and
  :class:`~repro.routing.flow_graph.FlowLikeGraph` — the routing metrics
  (paper Section III-C, Equation 1).
"""

from repro.routing.metrics import (
    ChannelRateCache,
    channel_rate,
    path_entanglement_rate,
    path_entanglement_rate_nonuniform,
)
from repro.routing.compiled import (
    ROUTING_CORE_ENV,
    CompiledNetwork,
    WidthSearchBatch,
    active_routing_core,
    compile_network,
    search_widths,
    snapshot_for,
)
from repro.routing.paths import PathCandidate, validate_path
from repro.routing.allocation import QubitLedger
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.plan import RoutingPlan
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.alg2_path_selection import select_paths
from repro.routing.alg3_merge import merge_paths
from repro.routing.alg4_residual import assign_remaining_qubits
from repro.routing.nfusion import AlgNFusion, RoutingResult
from repro.routing.baselines import (
    B1Router,
    MCFRouter,
    QCastNRouter,
    QCastRouter,
)
from repro.routing.registry import (
    Router,
    RouterSpec,
    RouterSpecError,
    as_spec,
    make_router,
    parse_router_specs,
    register_router,
    router_class,
    router_keys,
)
from repro.routing.report import render_plan_report
from repro.routing.scheduler import OnlineScheduler, ScheduleResult
from repro.routing.multipartite import (
    MultipartiteDemand,
    MultipartiteRouter,
    StarRoute,
)

__all__ = [
    "ChannelRateCache",
    "ROUTING_CORE_ENV",
    "CompiledNetwork",
    "WidthSearchBatch",
    "active_routing_core",
    "compile_network",
    "search_widths",
    "snapshot_for",
    "channel_rate",
    "path_entanglement_rate",
    "path_entanglement_rate_nonuniform",
    "PathCandidate",
    "validate_path",
    "QubitLedger",
    "FlowLikeGraph",
    "RoutingPlan",
    "largest_entanglement_rate_path",
    "select_paths",
    "merge_paths",
    "assign_remaining_qubits",
    "AlgNFusion",
    "RoutingResult",
    "QCastRouter",
    "QCastNRouter",
    "B1Router",
    "MCFRouter",
    "Router",
    "RouterSpec",
    "RouterSpecError",
    "as_spec",
    "make_router",
    "parse_router_specs",
    "register_router",
    "router_class",
    "router_keys",
    "render_plan_report",
    "OnlineScheduler",
    "ScheduleResult",
    "MultipartiteDemand",
    "MultipartiteRouter",
    "StarRoute",
]

"""Routing plans: the output of an entanglement routing algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import RoutingError
from repro.network.demands import DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache


class RoutingPlan:
    """The set of flow-like graphs chosen for a demand set.

    One :class:`~repro.routing.flow_graph.FlowLikeGraph` per *routed*
    demand; demands that could not be served are simply absent and
    contribute zero to the entanglement rate.
    """

    def __init__(self) -> None:
        self._flows: Dict[int, FlowLikeGraph] = {}

    def add_flow(self, flow: FlowLikeGraph) -> None:
        """Register the route of one demand."""
        if flow.demand_id in self._flows:
            raise RoutingError(f"demand {flow.demand_id} already has a route")
        self._flows[flow.demand_id] = flow

    def flow_for(self, demand_id: int) -> Optional[FlowLikeGraph]:
        """The flow-like graph serving *demand_id*, or ``None``."""
        return self._flows.get(demand_id)

    def flows(self) -> List[FlowLikeGraph]:
        """All flows, ordered by demand id."""
        return [self._flows[d] for d in sorted(self._flows)]

    def routed_demand_ids(self) -> List[int]:
        """Ids of demands that received a route, ascending."""
        return sorted(self._flows)

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, demand_id: int) -> bool:
        return demand_id in self._flows

    # ------------------------------------------------------------------
    # Rates

    def demand_rates(
        self,
        network: QuantumNetwork,
        link_model: LinkModel,
        swap_model: SwapModel,
        rate_cache: Optional[ChannelRateCache] = None,
    ) -> Dict[int, float]:
        """Analytic entanglement rate per routed demand.

        ``rate_cache`` memoises per-(edge, width) channel rates across
        the flows (and with the router's earlier search phases).
        """
        return {
            demand_id: flow.entanglement_rate(
                network, link_model, swap_model, rate_cache=rate_cache
            )
            for demand_id, flow in sorted(self._flows.items())
        }

    def total_rate(
        self,
        network: QuantumNetwork,
        link_model: LinkModel,
        swap_model: SwapModel,
        rate_cache: Optional[ChannelRateCache] = None,
    ) -> float:
        """Network entanglement rate: expected number of shared states."""
        return sum(
            self.demand_rates(
                network, link_model, swap_model, rate_cache
            ).values()
        )

    def qubits_used(self) -> Dict[int, int]:
        """Total qubits consumed per node across all flows."""
        usage: Dict[int, int] = {}
        for flow in self._flows.values():
            for (u, v), width in flow.edge_widths().items():
                usage[u] = usage.get(u, 0) + width
                usage[v] = usage.get(v, 0) + width
        return usage

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoutingPlan(routed={len(self._flows)})"

"""Path candidate records produced by Algorithms 1 and 2."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import RoutingError
from repro.network.graph import QuantumNetwork


@dataclass(frozen=True)
class PathCandidate:
    """A candidate route for one demanded state.

    Attributes
    ----------
    demand_id:
        The demand this path serves.
    nodes:
        Node ids from source user to destination user inclusive.
    width:
        Channel width the path was constructed for (uniform at selection
        time; Algorithm 4 may widen individual edges later).
    rate:
        Analytic entanglement rate of the path at this width.
    """

    demand_id: int
    nodes: Tuple[int, ...]
    width: int
    rate: float

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise RoutingError(f"path must have >= 2 nodes, got {self.nodes}")
        if len(set(self.nodes)) != len(self.nodes):
            raise RoutingError(f"path must be loopless, got {self.nodes}")
        if self.width < 1:
            raise RoutingError(f"width must be >= 1, got {self.width}")
        if not 0.0 <= self.rate <= 1.0:
            raise RoutingError(f"rate must be in [0, 1], got {self.rate}")

    @property
    def source(self) -> int:
        """First node (the source user)."""
        return self.nodes[0]

    @property
    def destination(self) -> int:
        """Last node (the destination user)."""
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        """Number of edges."""
        return len(self.nodes) - 1

    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Canonical (min, max) keys of the path's edges, in path order."""
        return tuple(
            (a, b) if a < b else (b, a) for a, b in zip(self.nodes, self.nodes[1:])
        )


def validate_path(network: QuantumNetwork, nodes: Sequence[int]) -> None:
    """Raise unless *nodes* is a loopless path over existing edges whose
    intermediate nodes are all switches."""
    nodes = list(nodes)
    if len(nodes) < 2:
        raise RoutingError(f"path must have >= 2 nodes, got {nodes}")
    if len(set(nodes)) != len(nodes):
        raise RoutingError(f"path must be loopless, got {nodes}")
    for a, b in zip(nodes, nodes[1:]):
        if not network.has_edge(a, b):
            raise RoutingError(f"path uses missing edge ({a}, {b})")
    for node in nodes[1:-1]:
        if network.node(node).is_user:
            raise RoutingError(
                f"path relays through user {node}; users may only be endpoints"
            )

"""Qubit allocation ledger.

Tracks the remaining communication qubits of every node while routes are
being admitted.  Users have unlimited qubits (the paper's assumption), so
only switches are really constrained; the ledger still answers queries for
users so callers need no special cases.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.exceptions import AllocationError, CapacityError
from repro.network.graph import QuantumNetwork


class QubitLedger:
    """Remaining-qubit bookkeeping over one network."""

    def __init__(self, network: QuantumNetwork):
        self._network = network
        self._remaining: Dict[int, Optional[int]] = {}
        for node_id in network.nodes():
            self._remaining[node_id] = network.qubit_capacity(node_id)

    def remaining(self, node_id: int) -> float:
        """Remaining qubits of *node_id* (``math.inf`` for users)."""
        value = self._lookup(node_id)
        return math.inf if value is None else value

    def has_at_least(self, node_id: int, count: int) -> bool:
        """True iff *node_id* still holds at least *count* qubits."""
        if count < 0:
            raise AllocationError(f"count must be >= 0, got {count}")
        value = self._lookup(node_id)
        return value is None or value >= count

    def reserve(self, node_id: int, count: int) -> None:
        """Consume *count* qubits of *node_id*; raises on overdraft."""
        if count < 0:
            raise AllocationError(f"count must be >= 0, got {count}")
        value = self._lookup(node_id)
        if value is None:
            return
        if value < count:
            raise CapacityError(
                f"node {node_id} has {value} qubits left, cannot reserve {count}"
            )
        self._remaining[node_id] = value - count

    def release(self, node_id: int, count: int) -> None:
        """Return *count* qubits to *node_id*; raises if the release would
        exceed the node's physical capacity."""
        if count < 0:
            raise AllocationError(f"count must be >= 0, got {count}")
        value = self._lookup(node_id)
        if value is None:
            return
        capacity = self._network.qubit_capacity(node_id)
        if capacity is not None and value + count > capacity:
            raise AllocationError(
                f"releasing {count} qubits would take node {node_id} above its "
                f"capacity of {capacity}"
            )
        self._remaining[node_id] = value + count

    def reserve_edge(self, u: int, v: int, width: int) -> None:
        """Consume *width* qubits at each endpoint of edge (*u*, *v*).

        Atomic: if the second endpoint lacks qubits, the first endpoint's
        reservation is rolled back before raising.
        """
        self.reserve(u, width)
        try:
            self.reserve(v, width)
        except CapacityError:
            self.release(u, width)
            raise

    def can_reserve_edge(self, u: int, v: int, width: int) -> bool:
        """True iff both endpoints can supply *width* qubits."""
        return self.has_at_least(u, width) and self.has_at_least(v, width)

    def snapshot(self) -> Dict[int, Optional[int]]:
        """Copy of the remaining-qubit map (None = unlimited)."""
        return dict(self._remaining)

    def restore(self, snapshot: Dict[int, Optional[int]]) -> None:
        """Restore a map previously produced by :meth:`snapshot`."""
        if set(snapshot) != set(self._remaining):
            raise AllocationError("snapshot does not match this ledger's nodes")
        self._remaining = dict(snapshot)

    def total_free_switch_qubits(self) -> int:
        """Total remaining qubits across all switches."""
        return sum(
            value
            for node_id, value in self._remaining.items()
            if value is not None
        )

    def copy(self) -> "QubitLedger":
        """Independent copy of this ledger over the same network."""
        clone = QubitLedger(self._network)
        clone._remaining = dict(self._remaining)
        return clone

    def _lookup(self, node_id: int) -> Optional[int]:
        try:
            return self._remaining[node_id]
        except KeyError:
            raise AllocationError(f"node {node_id} is not in the ledger") from None

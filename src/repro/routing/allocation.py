"""Qubit allocation ledger.

Tracks the remaining communication qubits of every node while routes are
being admitted.  Users have unlimited qubits (the paper's assumption), so
only switches are really constrained; the ledger still answers queries for
users so callers need no special cases.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.exceptions import AllocationError, CapacityError
from repro.network.graph import QuantumNetwork


class QubitLedger:
    """Remaining-qubit bookkeeping over one network."""

    def __init__(self, network: QuantumNetwork):
        self._network = network
        self._remaining: Dict[int, Optional[int]] = {}
        for node_id in network.nodes():
            self._remaining[node_id] = network.qubit_capacity(node_id)
        # Feasibility journal: the ids of nodes whose remaining count
        # changed, in mutation order, plus an epoch bumped on wholesale
        # rewrites (restore / compaction).  The compiled core's cached
        # relay-feasibility flags patch themselves from the journal tail
        # instead of rescanning every node per search batch — the hook
        # online serving's incremental re-planning rides on.
        self._epoch = 0
        self._journal: List[int] = []

    # ------------------------------------------------------------------
    # Feasibility journal (consumed by CompiledNetwork.relay_feasible)

    def feasibility_token(self) -> Tuple[int, int]:
        """``(epoch, journal_length)`` describing the mutation history.

        Equal tokens mean no per-node counts changed in between; a grown
        journal at the same epoch means exactly the nodes in
        :meth:`journal_since` changed; a new epoch invalidates
        everything derived from earlier tokens.
        """
        return (self._epoch, len(self._journal))

    def journal_since(self, start: int) -> List[int]:
        """Node ids whose remaining count changed since journal length
        *start* (ids may repeat; order is mutation order)."""
        return self._journal[start:]

    def _record(self, node_id: int) -> None:
        journal = self._journal
        journal.append(node_id)
        # Compact before the journal dwarfs the node map: a full flag
        # rebuild costs O(nodes), so forcing one every ~8n mutations
        # keeps patching amortised-cheap and the memory bounded over
        # arbitrarily long serving sessions.
        if len(journal) > max(1024, 8 * len(self._remaining)):
            self._epoch += 1
            journal.clear()

    def remaining(self, node_id: int) -> float:
        """Remaining qubits of *node_id* (``math.inf`` for users)."""
        value = self._lookup(node_id)
        return math.inf if value is None else value

    def has_at_least(self, node_id: int, count: int) -> bool:
        """True iff *node_id* still holds at least *count* qubits."""
        if count < 0:
            raise AllocationError(f"count must be >= 0, got {count}")
        value = self._lookup(node_id)
        return value is None or value >= count

    def reserve(self, node_id: int, count: int) -> None:
        """Consume *count* qubits of *node_id*; raises on overdraft."""
        if count < 0:
            raise AllocationError(f"count must be >= 0, got {count}")
        value = self._lookup(node_id)
        if value is None:
            return
        if value < count:
            raise CapacityError(
                f"node {node_id} has {value} qubits left, cannot reserve {count}"
            )
        if count:
            self._remaining[node_id] = value - count
            self._record(node_id)

    def release(self, node_id: int, count: int) -> None:
        """Return *count* qubits to *node_id*; raises if the release would
        exceed the node's physical capacity."""
        if count < 0:
            raise AllocationError(f"count must be >= 0, got {count}")
        value = self._lookup(node_id)
        if value is None:
            return
        capacity = self._network.qubit_capacity(node_id)
        if capacity is not None and value + count > capacity:
            raise AllocationError(
                f"releasing {count} qubits would take node {node_id} above its "
                f"capacity of {capacity}"
            )
        if count:
            self._remaining[node_id] = value + count
            self._record(node_id)

    def reserve_edge(self, u: int, v: int, width: int) -> None:
        """Consume *width* qubits at each endpoint of edge (*u*, *v*).

        Atomic: if the second endpoint lacks qubits, the first endpoint's
        reservation is rolled back before raising.
        """
        self.reserve(u, width)
        try:
            self.reserve(v, width)
        except CapacityError:
            self.release(u, width)
            raise

    def can_reserve_edge(self, u: int, v: int, width: int) -> bool:
        """True iff both endpoints can supply *width* qubits."""
        return self.has_at_least(u, width) and self.has_at_least(v, width)

    def snapshot(self) -> Dict[int, Optional[int]]:
        """Copy of the remaining-qubit map (None = unlimited)."""
        return dict(self._remaining)

    def restore(self, snapshot: Dict[int, Optional[int]]) -> None:
        """Restore a map previously produced by :meth:`snapshot`."""
        if set(snapshot) != set(self._remaining):
            raise AllocationError("snapshot does not match this ledger's nodes")
        self._remaining = dict(snapshot)
        # A wholesale rewrite: anything derived from earlier tokens is
        # stale, so bump the epoch rather than journal every node.
        self._epoch += 1
        self._journal.clear()

    def total_free_switch_qubits(self) -> int:
        """Total remaining qubits across all switches."""
        return sum(
            value
            for node_id, value in self._remaining.items()
            if value is not None
        )

    def copy(self) -> "QubitLedger":
        """Independent copy of this ledger over the same network."""
        clone = QubitLedger(self._network)
        clone._remaining = dict(self._remaining)
        return clone

    def _lookup(self, node_id: int) -> Optional[int]:
        try:
            return self._remaining[node_id]
        except KeyError:
            raise AllocationError(f"node {node_id} is not in the ledger") from None

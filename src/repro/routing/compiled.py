"""Compiled routing core: CSR network snapshots for the hot search paths.

Every experiment reduces to thousands of runs of Algorithm 1's modified
Dijkstra inside Yen's deviation loop plus repeated Equation-1
evaluations.  The reference implementations traverse Python objects —
``network.neighbors()`` allocates a sorted list per relaxation,
``network.node(n).is_user`` and ``ledger.has_at_least()`` are dict
lookups per edge, and every channel rate goes through a tuple-keyed
memo.  :class:`CompiledNetwork` flattens one ``(QuantumNetwork,
LinkModel)`` pair into flat arrays once, after which the search kernels
run over integer indices:

* **CSR adjacency** — ``indptr``/``adj_nodes``/``adj_edges`` with
  neighbours in ascending node-id order (the exact order the reference
  relaxes them, so heap tie-breaking and therefore the returned paths
  are bit-identical);
* **per-node flags** — ``is_user`` and qubit capacities as positional
  arrays;
* **width-indexed rate tables** — one per-edge column per channel
  width, filled through the same scalar
  :func:`~repro.quantum.noise.channel_success_probability` the
  reference :class:`~repro.routing.metrics.ChannelRateCache` uses, so
  every rate is bit-identical;
* **reusable mask/scratch buffers** — banned nodes/edges are byte
  masks and the Dijkstra state is stamp-versioned, so Yen's deviation
  loop resets them in O(1) instead of reallocating per spur search.

Core selection
--------------

``REPRO_ROUTING_CORE`` selects the implementation (``compiled`` is the
default; ``reference`` keeps the original object-graph code).  The
switch is read per routing call, so a test or CI job can flip cores
without restarting the process.  Both cores produce bit-identical
paths, rates and plans; the parity suite in
``tests/test_routing_cores.py`` and the ``routing-parity`` CI job
enforce this.

Snapshot lifetime
-----------------

A snapshot freezes the network *topology* (nodes, edges, lengths,
capacities) and the link model at compile time.  It stays valid for as
long as a :class:`~repro.routing.metrics.ChannelRateCache` over the
same pair would — i.e. until the network is structurally mutated
(``add_edge``/``remove_edge``/``add_node``) or a different link model
is wanted; after that a new snapshot must be compiled.  Qubit *ledger*
state is deliberately not baked in: feasibility flags are rebuilt from
the live ledger per search (cheap, O(nodes)), so admission loops can
keep one snapshot across an entire routing call.  Routers get this for
free: :func:`snapshot_for` hangs the snapshot off the
``ChannelRateCache`` they already thread through the call.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, RoutingError
from repro.network.demands import Demand
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel, channel_success_probability
from repro.routing.paths import PathCandidate

EdgeKey = Tuple[int, int]

#: Environment variable selecting the routing core.
ROUTING_CORE_ENV = "REPRO_ROUTING_CORE"

#: Valid core names; ``compiled`` is the default.
ROUTING_CORES = ("compiled", "reference")

# Last (raw env value, parsed core) pair: the switch is consulted on
# every routing call, so avoid re-validating an unchanged setting.
_core_memo: Tuple[Optional[str], str] = (None, "compiled")


def active_routing_core() -> str:
    """The routing core selected by ``REPRO_ROUTING_CORE``.

    Returns ``"compiled"`` (the default) or ``"reference"``; raises
    :class:`~repro.exceptions.ConfigurationError` on any other value.
    Read at call time so tests and CI can flip cores per invocation.
    """
    global _core_memo
    # Deferred import: the accessor lives in the experiments layer
    # (the one sanctioned environment read path — lint rule RPL003),
    # and routing must not pull that package in at module load.
    from repro.experiments.config import env_raw

    raw = env_raw(ROUTING_CORE_ENV)
    memo_raw, memo_core = _core_memo
    if raw == memo_raw:
        return memo_core
    core = "compiled" if raw is None else raw.strip().lower()
    if core not in ROUTING_CORES:
        raise ConfigurationError(
            f"{ROUTING_CORE_ENV} must be one of "
            f"{', '.join(ROUTING_CORES)}; got {raw!r}"
        )
    _core_memo = (raw, core)
    return core


def _ekey(a: int, b: int) -> EdgeKey:
    return (a, b) if a < b else (b, a)


class CompiledNetwork:
    """Flat-array snapshot of one ``(QuantumNetwork, LinkModel)`` pair.

    See the module docstring for the layout and lifetime rules.  Use
    :func:`compile_network` (or :func:`snapshot_for` inside a routing
    call) rather than constructing instances ad hoc, so snapshots are
    shared where the rate cache already is.
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "is_user",
        "capacity",
        "indptr",
        "adj_nodes",
        "adj_edges",
        "edge_keys",
        "edge_index",
        "edge_probability",
        "node_mask",
        "edge_mask",
        "_relay_cache",
        "_width_columns",
        "_best",
        "_pred",
        "_seen",
        "_visited",
        "_stamp",
    )

    def __init__(self, network: QuantumNetwork, link_model: LinkModel):
        node_ids = network.nodes()
        self.node_ids: List[int] = node_ids
        self.index_of: Dict[int, int] = {
            nid: i for i, nid in enumerate(node_ids)
        }
        self.is_user: List[bool] = [
            network.node(nid).is_user for nid in node_ids
        ]
        self.capacity: List[Optional[int]] = [
            network.qubit_capacity(nid) for nid in node_ids
        ]
        edge_keys = network.edge_keys()
        self.edge_keys: List[EdgeKey] = edge_keys
        self.edge_index: Dict[EdgeKey, int] = {
            key: e for e, key in enumerate(edge_keys)
        }
        # The same scalar chain the ChannelRateCache memoises:
        # link probability from the edge length, so the width columns
        # built from it are bit-identical to the reference rates.
        self.edge_probability: List[float] = [
            link_model.success_probability(network.edge_length(u, v))
            for u, v in edge_keys
        ]
        indptr: List[int] = [0]
        adj_nodes: List[int] = []
        adj_edges: List[int] = []
        index_of = self.index_of
        edge_index = self.edge_index
        for nid in node_ids:
            # network.neighbors() is ascending by node id; the id->index
            # map is monotone, so CSR order == reference relax order.
            for nbr in network.neighbors(nid):
                adj_nodes.append(index_of[nbr])
                adj_edges.append(edge_index[_ekey(nid, nbr)])
            indptr.append(len(adj_nodes))
        self.indptr = indptr
        self.adj_nodes = adj_nodes
        self.adj_edges = adj_edges
        n = len(node_ids)
        self.node_mask = bytearray(n)
        self.edge_mask = bytearray(len(edge_keys))
        # Per-width relay-feasibility flags, patched incrementally from
        # the owning ledger's feasibility journal (see relay_feasible):
        # width -> [ledger, epoch, consumed_journal_length, flags].
        self._relay_cache: Dict[int, list] = {}
        self._width_columns: Dict[int, List[float]] = {}
        self._best: List[float] = [0.0] * n
        self._pred: List[int] = [0] * n
        self._seen: List[int] = [0] * n
        self._visited: List[int] = [0] * n
        self._stamp = 0

    @property
    def num_nodes(self) -> int:
        """Node count of the snapshot."""
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Edge count of the snapshot."""
        return len(self.edge_keys)

    # ------------------------------------------------------------------
    # Rate tables and feasibility flags

    def width_rates(self, width: int) -> List[float]:
        """The per-edge channel-rate column for *width*, filled once.

        ``column[edge_id]`` equals ``ChannelRateCache.rate(u, v, width)``
        for the edge's endpoints — same scalar function, same inputs.
        """
        column = self._width_columns.get(width)
        if column is None:
            column = [
                channel_success_probability(p, width)
                for p in self.edge_probability
            ]
            self._width_columns[width] = column
        return column

    def relay_feasible(self, ledger, width: int) -> List[bool]:
        """Per-node "may relay at this width" flags for one search batch.

        A relay must be a switch holding ``2 * width`` free qubits
        (*width* towards each side).  ``ledger`` is a
        :class:`~repro.routing.allocation.QubitLedger` or ``None`` for
        full capacities — matching the reference's default ledger.

        Flags for a journalled ledger are cached per width and patched
        incrementally: between two calls only the nodes the ledger's
        feasibility journal names (reserves *and* releases — the online
        serving loop's departures) are recomputed, so a long-lived
        session re-plans against a mutating snapshot in O(changes)
        instead of O(nodes) per search batch.  The patched flags equal a
        full rebuild bit-for-bit — each flag is a pure function of that
        node's remaining count.  Callers must not mutate the ledger
        while holding the returned list.
        """
        need = 2 * width
        if ledger is None:
            return [
                (not user) and (cap is None or cap >= need)
                for user, cap in zip(self.is_user, self.capacity)
            ]
        has = ledger.has_at_least
        token = getattr(ledger, "feasibility_token", None)
        if token is None:  # a ledger-like without a journal: full scan
            return [
                (not user) and has(nid, need)
                for user, nid in zip(self.is_user, self.node_ids)
            ]
        epoch, length = token()
        entry = self._relay_cache.get(width)
        if entry is not None and entry[0] is ledger and entry[1] == epoch:
            flags = entry[3]
            if entry[2] != length:
                index_of = self.index_of
                is_user = self.is_user
                for nid in ledger.journal_since(entry[2]):
                    i = index_of[nid]
                    if not is_user[i]:
                        flags[i] = has(nid, need)
                entry[2] = length
            return flags
        flags = [
            (not user) and has(nid, need)
            for user, nid in zip(self.is_user, self.node_ids)
        ]
        self._relay_cache[width] = [ledger, epoch, length, flags]
        return flags

    def endpoint_feasible(self, ledger, node_id: int, width: int) -> bool:
        """True iff *node_id* can commit *width* qubits as an endpoint."""
        if ledger is None:
            cap = self.capacity[self.index_of[node_id]]
            return cap is None or cap >= width
        return ledger.has_at_least(node_id, width)

    # ------------------------------------------------------------------
    # The Algorithm 1 kernel

    def search(
        self,
        source: int,
        destination: int,
        rates: Sequence[float],
        relay_ok: Sequence[bool],
        swap2: float,
    ) -> Optional[Tuple[List[int], float]]:
        """Algorithm 1's modified Dijkstra over the CSR arrays.

        *source*/*destination* are node **indices**; banned nodes and
        edges are whatever the caller currently has set in
        ``node_mask``/``edge_mask`` (cleared by the caller afterwards).
        The Dijkstra state is stamp-versioned, so entering the kernel
        resets it in O(1).  Returns ``(index_path, rate)`` or ``None``.

        The relaxation replays the reference implementation move for
        move — same push sequence, same tie-break counters, same strict
        improvement test — so the returned path is bit-identical, not
        merely rate-equal.
        """
        self._stamp += 1
        stamp = self._stamp
        best = self._best
        seen = self._seen
        visited = self._visited
        pred = self._pred
        node_mask = self.node_mask
        edge_mask = self.edge_mask
        indptr = self.indptr
        adj_nodes = self.adj_nodes
        adj_edges = self.adj_edges
        heappush = heapq.heappush
        heappop = heapq.heappop
        best[source] = 1.0
        seen[source] = stamp
        heap: List[Tuple[float, int, int]] = [(-1.0, 0, source)]
        counter = 1
        while heap:
            negative_rate, _, node = heappop(heap)
            if visited[node] == stamp:
                continue
            visited[node] = stamp
            if node == destination:
                break
            rate = -negative_rate
            if node != source:
                if not relay_ok[node]:
                    continue
                rate *= swap2
            for slot in range(indptr[node], indptr[node + 1]):
                nbr = adj_nodes[slot]
                if visited[nbr] == stamp or node_mask[nbr]:
                    continue
                eid = adj_edges[slot]
                if edge_mask[eid]:
                    continue
                if nbr != destination and not relay_ok[nbr]:
                    continue
                candidate = rate * rates[eid]
                if candidate > (best[nbr] if seen[nbr] == stamp else 0.0):
                    best[nbr] = candidate
                    seen[nbr] = stamp
                    pred[nbr] = node
                    heappush(heap, (-candidate, counter, nbr))
                    counter += 1
        if visited[destination] != stamp:
            return None
        path = [destination]
        while path[-1] != source:
            path.append(pred[path[-1]])
        path.reverse()
        return path, best[destination]

    def masked_search(
        self,
        source: int,
        destination: int,
        rates: Sequence[float],
        relay_ok: Sequence[bool],
        swap2: float,
        banned_node_idx: Sequence[int],
        banned_edge_idx: Sequence[int],
    ) -> Optional[Tuple[Tuple[int, ...], float]]:
        """:meth:`search` under the given banned **indices**, translated
        back to node ids.

        Sets the shared masks, searches, and always clears them again —
        the one masking protocol every compiled entry point (standalone
        Algorithm 1 and Yen's deviations) goes through.
        """
        node_mask = self.node_mask
        edge_mask = self.edge_mask
        for i in banned_node_idx:
            node_mask[i] = 1
        for e in banned_edge_idx:
            edge_mask[e] = 1
        try:
            found = self.search(source, destination, rates, relay_ok, swap2)
        finally:
            for i in banned_node_idx:
                node_mask[i] = 0
            for e in banned_edge_idx:
                edge_mask[e] = 0
        if found is None:
            return None
        path, rate = found
        ids = self.node_ids
        return tuple(ids[i] for i in path), rate


def compile_network(
    network: QuantumNetwork, link_model: LinkModel
) -> CompiledNetwork:
    """Flatten *network* + *link_model* into a :class:`CompiledNetwork`."""
    return CompiledNetwork(network, link_model)


def snapshot_for(
    network: QuantumNetwork,
    link_model: LinkModel,
    rate_cache=None,
) -> CompiledNetwork:
    """The snapshot for ``(network, link_model)``, shared via *rate_cache*.

    Routers already thread one
    :class:`~repro.routing.metrics.ChannelRateCache` through a
    ``route()`` call; hanging the snapshot off it gives every search in
    the call one snapshot with no new plumbing.  A cache bound to a
    different network or link model is ignored (fresh snapshot) rather
    than trusted.
    """
    if (
        rate_cache is not None
        and rate_cache.network is network
        and rate_cache.link_model is link_model
    ):
        snapshot = rate_cache.compiled_snapshot
        if snapshot is None:
            snapshot = CompiledNetwork(network, link_model)
            rate_cache.compiled_snapshot = snapshot
        return snapshot
    return CompiledNetwork(network, link_model)


# ----------------------------------------------------------------------
# Compiled Algorithm 1 entry point


def compiled_search(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    source: int,
    destination: int,
    width: int,
    ledger=None,
    banned_nodes: FrozenSet[int] = frozenset(),
    banned_edges: FrozenSet[EdgeKey] = frozenset(),
    rate_cache=None,
) -> Optional[Tuple[Tuple[int, ...], float]]:
    """Compiled body of Algorithm 1 (arguments as the reference wrapper).

    The caller —
    :func:`~repro.routing.alg1_largest_rate.largest_entanglement_rate_path`
    — has already validated widths, endpoints and banned-endpoint
    cases; this function only snapshots, masks and searches.
    """
    snapshot = snapshot_for(network, link_model, rate_cache)
    if not snapshot.endpoint_feasible(ledger, source, width):
        return None
    if not snapshot.endpoint_feasible(ledger, destination, width):
        return None
    relay_ok = snapshot.relay_feasible(ledger, width)
    rates = snapshot.width_rates(width)
    swap2 = swap_model.success_probability(2)
    index_of = snapshot.index_of
    # Banned entries outside the network are unreachable anyway.
    banned_node_idx = [
        index_of[n] for n in banned_nodes if n in index_of
    ]
    banned_edge_idx = [
        snapshot.edge_index[e]
        for e in banned_edges
        if e in snapshot.edge_index
    ]
    return snapshot.masked_search(
        index_of[source], index_of[destination], rates, relay_ok, swap2,
        banned_node_idx, banned_edge_idx,
    )


# ----------------------------------------------------------------------
# Yen's deviation scheme (core-independent orchestration)


def yen_deviation_loop(first, h, search, path_rate):
    """Yen's k-best deviation scheme around a single-path solver.

    ``first`` is the solver's ``(nodes, rate)`` for the full demand;
    ``search(spur_source, banned_node_ids, banned_edge_keys)`` returns
    the best ``(nodes, rate)`` under those bans or ``None``;
    ``path_rate(nodes)`` scores a stitched root+spur candidate (``None``
    skips it).  Returns the accepted ``(nodes, rate)`` list, best first.

    This single driver serves both routing cores — only the solver and
    the path scorer differ — so the orchestration that bit-parity
    depends on (banned-edge accumulation, dedup, candidate heap,
    tie-break counters) cannot drift between them.
    """
    accepted: List[Tuple[Tuple[int, ...], float]] = [first]
    seen = {first[0]}
    counter = itertools.count()
    candidates: List[Tuple[float, int, Tuple[int, ...]]] = []

    while len(accepted) < h:
        previous_nodes = accepted[-1][0]
        for deviation_index in range(len(previous_nodes) - 1):
            root = previous_nodes[: deviation_index + 1]
            spur_node = previous_nodes[deviation_index]
            banned_edges = set()
            for path_nodes, _ in accepted:
                if tuple(path_nodes[: deviation_index + 1]) == root:
                    banned_edges.add(
                        _ekey(
                            path_nodes[deviation_index],
                            path_nodes[deviation_index + 1],
                        )
                    )
            spur = search(spur_node, root[:-1], banned_edges)
            if spur is None:
                continue
            total_nodes = root[:-1] + spur[0]
            if total_nodes in seen:
                continue
            seen.add(total_nodes)
            total_rate = path_rate(total_nodes)
            if total_rate is None:  # pragma: no cover - spur paths are valid
                continue
            heapq.heappush(
                candidates, (-total_rate, next(counter), total_nodes)
            )
        if not candidates:
            break
        negative_rate, _, nodes = heapq.heappop(candidates)
        accepted.append((nodes, -negative_rate))

    return accepted


# ----------------------------------------------------------------------
# Compiled Algorithm 2 (Yen + the kernel)


def compiled_select_paths(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    demand: Demand,
    h: int,
    max_width: int,
    ledger=None,
    rate_cache=None,
) -> Dict[int, List[PathCandidate]]:
    """Compiled body of Algorithm 2's per-width Yen loop.

    One snapshot and one set of mask buffers serve every deviation of
    every width; per-width relay feasibility is computed once instead of
    per ``ledger.has_at_least`` call inside the relaxations.  Parameter
    validation and the ``max_hops`` filter stay in
    :func:`~repro.routing.alg2_path_selection.select_paths`.
    """
    snapshot = snapshot_for(network, link_model, rate_cache)
    source, destination = demand.source, demand.destination
    if source == destination:
        raise RoutingError("source and destination must differ")
    if source not in snapshot.index_of or destination not in snapshot.index_of:
        raise RoutingError(
            f"endpoints ({source}, {destination}) must exist in the network"
        )
    swap2 = swap_model.success_probability(2)
    result: Dict[int, List[PathCandidate]] = {}
    for width in range(max_width, 0, -1):
        paths = _compiled_yen_best_paths(
            snapshot, swap_model, swap2, demand, width, h, ledger
        )
        if paths:
            result[width] = paths
    return result


def _compiled_yen_best_paths(
    snapshot: CompiledNetwork,
    swap_model: SwapModel,
    swap2: float,
    demand: Demand,
    width: int,
    h: int,
    ledger,
) -> List[PathCandidate]:
    """The shared :func:`yen_deviation_loop` driven by the compiled
    kernel, with the per-width feasibility flags and rate column hoisted
    out of the deviation searches."""
    source, destination = demand.source, demand.destination
    if not snapshot.endpoint_feasible(ledger, destination, width):
        # Every (spur) search shares this endpoint; the reference
        # re-checks it per Algorithm 1 call with the same outcome.
        return []
    rates = snapshot.width_rates(width)
    relay_ok = snapshot.relay_feasible(ledger, width)
    index_of = snapshot.index_of
    edge_index = snapshot.edge_index
    destination_idx = index_of[destination]

    def run_alg1(spur_source, banned_node_ids, banned_edge_keys):
        if not snapshot.endpoint_feasible(ledger, spur_source, width):
            return None
        return snapshot.masked_search(
            index_of[spur_source], destination_idx, rates, relay_ok, swap2,
            [index_of[n] for n in banned_node_ids],
            [edge_index[e] for e in banned_edge_keys],
        )

    first = run_alg1(source, (), ())
    if first is None:
        return []
    accepted = yen_deviation_loop(
        first, h, run_alg1,
        lambda nodes: _compiled_path_rate(snapshot, nodes, rates, swap2),
    )
    return [
        PathCandidate(demand.demand_id, nodes, width, rate)
        for nodes, rate in accepted
    ]


def _compiled_path_rate(
    snapshot: CompiledNetwork,
    nodes: Tuple[int, ...],
    rates: Sequence[float],
    swap2: float,
) -> float:
    """Uniform-width path rate over the snapshot's rate column.

    Multiplication order matches
    :func:`~repro.routing.metrics.path_entanglement_rate` — edges in
    path order, then intermediate swap factors in path order (users
    contribute an exact 1.0, i.e. no multiply) — so the float result is
    bit-identical.
    """
    edge_index = snapshot.edge_index
    rate = 1.0
    for a, b in zip(nodes, nodes[1:]):
        rate *= rates[edge_index[(a, b) if a < b else (b, a)]]
    is_user = snapshot.is_user
    index_of = snapshot.index_of
    for node in nodes[1:-1]:
        if not is_user[index_of[node]]:
            rate *= swap2
    return rate

"""Compiled routing core: CSR network snapshots for the hot search paths.

Every experiment reduces to thousands of runs of Algorithm 1's modified
Dijkstra inside Yen's deviation loop plus repeated Equation-1
evaluations.  The reference implementations traverse Python objects —
``network.neighbors()`` allocates a sorted list per relaxation,
``network.node(n).is_user`` and ``ledger.has_at_least()`` are dict
lookups per edge, and every channel rate goes through a tuple-keyed
memo.  :class:`CompiledNetwork` flattens one ``(QuantumNetwork,
LinkModel)`` pair into numpy arrays once, after which the search kernel
runs masked array operations over whole CSR rows:

* **CSR adjacency** — ``indptr``/``adj_nodes``/``adj_edges`` with
  neighbours in ascending node-id order (the exact order the reference
  relaxes them, so heap tie-breaking and therefore the returned paths
  are bit-identical);
* **width-indexed rate tables** — one per-edge column per channel
  width, filled through the same scalar
  :func:`~repro.quantum.noise.channel_success_probability` the
  reference :class:`~repro.routing.metrics.ChannelRateCache` uses, so
  every rate is bit-identical, plus slot-aligned copies so a whole CSR
  row's candidate rates come from one vector multiply;
* **masked-row relaxation** — feasibility is folded into precomputed
  per-(width, flags-version, destination) rate rows with infeasible
  slots zeroed (one vectorised build, cached), so relaxing a popped
  node's row is a bare multiply + strict-improvement compare per slot
  with no per-edge lookups; pushes happen in ascending slot order with
  sequential tie-break counters, replaying the reference push sequence
  move for move.  Rows of ``_VECTOR_ROW_MIN``+ slots (hub nodes)
  relax through numpy array ops over the row slice; shorter rows use
  a scalar loop over the same masked values, the measured win at mesh
  degrees where array-dispatch overhead dominates.  The relax-time
  ``visited`` test the reference performs is provably redundant under
  the strict ``candidate > best`` rule (every rate factor is <= 1, so
  a candidate can never beat a settled node's rate), which is what
  reduces the row mask to feasibility x improvement only;
* **version-tokened feasibility flags** — per-width relay flags are
  patched from the ledger's feasibility journal in O(changes) and carry
  a version that only advances when some flag actually flips, giving
  downstream caches an exact "has anything changed" key.

Batched search API
------------------

Callers no longer drive the kernel per ``(demand, width)``:
:class:`WidthSearchBatch` binds one snapshot + one demand + the widths
under consideration, and :func:`search_widths` (or
``WidthSearchBatch.search_widths``) answers every width of the batch in
one call.  Batches of at least :func:`fused_width_min` widths (default
2; env knob ``REPRO_FUSED_WIDTH_MIN``) answer every memo-missing width
through one **fused multi-width Dijkstra pass**: a flattened
``(n_widths, n_nodes)`` distance/parent matrix, one shared heap whose
entries carry the width in the slot id, the banned sets resolved and
each width's rate row masked once for the whole pass.  The pop/push
subsequence of each width is provably identical to the standalone
kernel (one global monotone tie-break counter preserves every
same-width comparison), so fused answers are bit-exact and land in the
same memo slots; smaller batches — and any run with the knob raised —
take the scalar per-width path, the fused kernel's parity oracle.
All batch searches — every width and every Yen deviation —
share the snapshot's scratch buffers, per-width rate rows, feasibility
flags and a **search-result memo** keyed on the exact kernel inputs
``(source, destination, width, flags-version, swap, banned sets)``.
Identical queries (Algorithm 2 re-runs the same spur searches across
widths and refill rounds; ``route_online`` repeats them across
arrivals) are answered from the memo, which is bit-identity-safe
because a hit requires every input byte to match.  Algorithm 1
(:func:`compiled_search`) and Algorithm 2
(:func:`compiled_select_paths`) both dispatch through the batch API.

Core selection
--------------

``REPRO_ROUTING_CORE`` selects the implementation (``compiled`` is the
default; ``reference`` keeps the original object-graph code).  The
switch is read per routing call, so a test or CI job can flip cores
without restarting the process.  Both cores produce bit-identical
paths, rates and plans; the parity suite in
``tests/test_routing_cores.py`` and the ``routing-parity`` CI job
enforce this.

Snapshot lifetime
-----------------

A snapshot freezes the network *topology* (nodes, edges, lengths,
capacities) and the link model at compile time.  It stays valid for as
long as a :class:`~repro.routing.metrics.ChannelRateCache` over the
same pair would — i.e. until the network is structurally mutated
(``add_edge``/``remove_edge``/``add_node``) or a different link model
is wanted; after that a new snapshot must be compiled.  Qubit *ledger*
state is deliberately not baked in: feasibility flags are patched from
the live ledger's journal per search batch, so admission loops can
keep one snapshot across an entire routing call and the serving loop
can keep one across a whole session.  Routers get this for free:
:func:`snapshot_for` hangs the snapshot off the ``ChannelRateCache``
they already thread through the call.  A :class:`WidthSearchBatch` is
a cheap per-demand view over a snapshot: create as many as needed,
but never use one after its snapshot's network mutated.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, RoutingError
from repro.network.demands import Demand
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel, channel_success_probability
from repro.routing.paths import PathCandidate

EdgeKey = Tuple[int, int]

#: Environment variable selecting the routing core.
ROUTING_CORE_ENV = "REPRO_ROUTING_CORE"

#: Valid core names; ``compiled`` is the default.
ROUTING_CORES = ("compiled", "reference")

#: Environment variable overriding the fused-kernel width threshold.
FUSED_WIDTH_MIN_ENV = "REPRO_FUSED_WIDTH_MIN"

#: Width count from which ``WidthSearchBatch.search_widths`` runs the
#: fused multi-width kernel; smaller batches (and any value the env
#: knob raises this to) fall back to the scalar per-width path, which
#: doubles as the fused kernel's parity oracle.
FUSED_WIDTH_MIN_DEFAULT = 2

# Last (raw env value, parsed core) pair: the switch is consulted on
# every routing call, so avoid re-validating an unchanged setting.
_core_memo: Tuple[Optional[str], str] = (None, "compiled")

# Same memo shape for the fused-width threshold knob.
_fused_memo: Tuple[Optional[str], int] = (None, FUSED_WIDTH_MIN_DEFAULT)

# The environment accessor, bound on first use (the hot paths consult
# the core switch per call; a function-level ``import`` statement there
# costs more than the read itself).
_env_raw = None

#: Search-result memo entries kept before a wholesale clear (the clear
#: is deterministic: it depends only on the query sequence).
_SEARCH_MEMO_LIMIT = 65536

#: Cached masked rate rows (per width/flags-version/destination) kept
#: before a wholesale clear.
_MASKED_ROW_CACHE_LIMIT = 4096

#: Memo sentinel distinguishing "no entry" from a memoised ``None``.
_MISS = object()

#: Shared empty frozenset: the common no-bans search skips building one.
_EMPTY: FrozenSet[int] = frozenset()

#: Row length from which the kernel relaxes a CSR row with array ops
#: instead of the scalar masked loop.  Measured on the regression
#: fixture: below ~32 slots the fixed dispatch cost of the numpy calls
#: exceeds the whole scalar loop (typical mesh degrees are 4-10), so
#: vectorised relaxation only pays on hub-heavy rows.
_VECTOR_ROW_MIN = 32


def active_routing_core() -> str:
    """The routing core selected by ``REPRO_ROUTING_CORE``.

    Returns ``"compiled"`` (the default) or ``"reference"``; raises
    :class:`~repro.exceptions.ConfigurationError` on any other value.
    Read at call time so tests and CI can flip cores per invocation.
    """
    global _core_memo, _env_raw
    if _env_raw is None:
        # Deferred import: the accessor lives in the experiments layer
        # (the one sanctioned environment read path — lint rule RPL003),
        # and routing must not pull that package in at module load.
        from repro.experiments.config import env_raw

        _env_raw = env_raw
    raw = _env_raw(ROUTING_CORE_ENV)
    memo_raw, memo_core = _core_memo
    if raw == memo_raw:
        return memo_core
    core = "compiled" if raw is None else raw.strip().lower()
    if core not in ROUTING_CORES:
        raise ConfigurationError(
            f"{ROUTING_CORE_ENV} must be one of "
            f"{', '.join(ROUTING_CORES)}; got {raw!r}"
        )
    _core_memo = (raw, core)
    return core


def fused_width_min() -> int:
    """The width count from which batched searches fuse their frontiers.

    Reads ``REPRO_FUSED_WIDTH_MIN`` (default
    :data:`FUSED_WIDTH_MIN_DEFAULT`) per call, like the core switch, so
    tests and CI can force the scalar per-width fallback — the fused
    kernel's parity oracle — by raising the threshold above any batch
    size.  Values below 2 are rejected: a single-width batch has
    nothing to fuse.
    """
    global _fused_memo, _env_raw
    if _env_raw is None:
        from repro.experiments.config import env_raw

        _env_raw = env_raw
    raw = _env_raw(FUSED_WIDTH_MIN_ENV)
    memo_raw, memo_value = _fused_memo
    if raw == memo_raw:
        return memo_value
    if raw is None:
        value = FUSED_WIDTH_MIN_DEFAULT
    else:
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{FUSED_WIDTH_MIN_ENV} must be an integer >= 2; got {raw!r}"
            ) from None
        if value < 2:
            raise ConfigurationError(
                f"{FUSED_WIDTH_MIN_ENV} must be an integer >= 2; got {raw!r}"
            )
    _fused_memo = (raw, value)
    return value


def _ekey(a: int, b: int) -> EdgeKey:
    return (a, b) if a < b else (b, a)


class CompiledNetwork:
    """Flat-array snapshot of one ``(QuantumNetwork, LinkModel)`` pair.

    See the module docstring for the layout and lifetime rules.  Use
    :func:`compile_network` (or :func:`snapshot_for` inside a routing
    call) rather than constructing instances ad hoc, so snapshots are
    shared where the rate cache already is.
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "is_user",
        "capacity",
        "indptr",
        "indptr_list",
        "adj_nodes",
        "adj_nodes_list",
        "adj_edges",
        "edge_keys",
        "edge_index",
        "edge_slots",
        "edge_probability",
        "_relay_cache",
        "_static_relay",
        "_flags_serial",
        "_flags_versions",
        "_flags_lists",
        "_width_columns",
        "_row_rate_cache",
        "_row_list_cache",
        "_base_row_cache",
        "_masked_row_cache",
        "_in_slots",
        "_in_slots_lists",
        "edge_slots_list",
        "_search_memo",
        "_best",
        "_pred",
        "_visited",
        "_stamp",
        "_multi_best",
        "_multi_pred",
        "_multi_visited",
        "_multi_stamp",
    )

    def __init__(self, network: QuantumNetwork, link_model: LinkModel):
        node_ids = network.nodes()
        self.node_ids: List[int] = node_ids
        self.index_of: Dict[int, int] = {
            nid: i for i, nid in enumerate(node_ids)
        }
        self.is_user: List[bool] = [
            network.node(nid).is_user for nid in node_ids
        ]
        self.capacity: List[Optional[int]] = [
            network.qubit_capacity(nid) for nid in node_ids
        ]
        edge_keys = network.edge_keys()
        self.edge_keys: List[EdgeKey] = edge_keys
        self.edge_index: Dict[EdgeKey, int] = {
            key: e for e, key in enumerate(edge_keys)
        }
        # The same scalar chain the ChannelRateCache memoises:
        # link probability from the edge length, so the width columns
        # built from it are bit-identical to the reference rates.
        self.edge_probability: List[float] = [
            link_model.success_probability(network.edge_length(u, v))
            for u, v in edge_keys
        ]
        indptr: List[int] = [0]
        adj_nodes: List[int] = []
        adj_edges: List[int] = []
        index_of = self.index_of
        edge_index = self.edge_index
        for nid in node_ids:
            # network.neighbors() is ascending by node id; the id->index
            # map is monotone, so CSR order == reference relax order.
            for nbr in network.neighbors(nid):
                adj_nodes.append(index_of[nbr])
                adj_edges.append(edge_index[_ekey(nid, nbr)])
            indptr.append(len(adj_nodes))
        # Both layouts are kept: numpy arrays feed the vectorised row
        # masking/relaxation, while the plain lists serve the kernel's
        # scalar reads (a list index is ~3x cheaper than an ndarray
        # scalar index, and the hot loop does several per pop).
        self.indptr_list: List[int] = indptr
        self.adj_nodes_list: List[int] = adj_nodes
        self.indptr = np.asarray(indptr, dtype=np.intp)
        self.adj_nodes = np.asarray(adj_nodes, dtype=np.intp)
        self.adj_edges = np.asarray(adj_edges, dtype=np.intp)
        # Each undirected edge occupies exactly two CSR slots (one per
        # endpoint row); grouping the stable eid argsort two-by-two maps
        # an edge id to both its slots for banned-edge masking.
        if self.adj_edges.size:
            order = np.argsort(self.adj_edges, kind="stable")
            self.edge_slots = order.reshape(len(edge_keys), 2)
        else:
            self.edge_slots = np.zeros((0, 2), dtype=np.intp)
        self.edge_slots_list: List[List[int]] = self.edge_slots.tolist()
        n = len(node_ids)
        # Per-width relay-feasibility flags, patched incrementally from
        # the owning ledger's feasibility journal (see relay_feasible):
        # width -> [ledger, epoch, consumed_length, flags, version].
        self._relay_cache: Dict[int, list] = {}
        # Ledger-free flags per width: (flags, version), immutable.
        self._static_relay: Dict[int, Tuple[np.ndarray, int]] = {}
        self._flags_serial = itertools.count()
        # Content-addressed flag versions per width: equal contents map
        # to equal versions across ledgers, restores and routing calls,
        # which is what keeps the search/masked-row memos hitting.
        self._flags_versions: Dict[int, Dict[bytes, int]] = {}
        self._flags_lists: Dict[int, List[bool]] = {}
        self._width_columns: Dict[int, np.ndarray] = {}
        self._row_rate_cache: Dict[int, np.ndarray] = {}
        self._row_list_cache: Dict[int, List[float]] = {}
        self._base_row_cache: Dict[
            Tuple[int, int], Tuple[np.ndarray, List[float]]
        ] = {}
        self._masked_row_cache: Dict[
            Tuple[int, int, int, FrozenSet[int]],
            Tuple[np.ndarray, List[float]],
        ] = {}
        self._in_slots: Dict[int, np.ndarray] = {}
        self._in_slots_lists: Dict[int, List[int]] = {}
        self._search_memo: Dict[tuple, object] = {}
        # Dijkstra scratch: plain lists, reset via the touched set (and
        # a stamp for visited), so back-to-back searches skip the O(n)
        # clear.  Heap entries therefore stay native floats, which also
        # compare faster than float64 scalars.
        self._best: List[float] = [0.0] * n
        self._pred: List[int] = [0] * n
        self._visited: List[int] = [0] * n
        self._stamp = 0
        # Fused multi-width scratch: the same stamp/touched discipline
        # over flattened (width, node) slots, grown lazily to the
        # largest batch seen (see _kernel_multi).
        self._multi_best: List[float] = []
        self._multi_pred: List[int] = []
        self._multi_visited: List[int] = []
        self._multi_stamp = 0

    @property
    def num_nodes(self) -> int:
        """Node count of the snapshot."""
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Edge count of the snapshot."""
        return len(self.edge_keys)

    # ------------------------------------------------------------------
    # Rate tables and feasibility flags

    def width_rates(self, width: int) -> np.ndarray:
        """The per-edge channel-rate column for *width*, filled once.

        ``column[edge_id]`` equals ``ChannelRateCache.rate(u, v, width)``
        for the edge's endpoints — same scalar function, same inputs.
        """
        column = self._width_columns.get(width)
        if column is None:
            column = np.fromiter(
                (
                    channel_success_probability(p, width)
                    for p in self.edge_probability
                ),
                dtype=np.float64,
                count=len(self.edge_probability),
            )
            self._width_columns[width] = column
        return column

    def _row_rates(self, width: int) -> np.ndarray:
        """``width_rates(width)`` broadcast to CSR slots, filled once."""
        rows = self._row_rate_cache.get(width)
        if rows is None:
            rows = self.width_rates(width)[self.adj_edges]
            self._row_rate_cache[width] = rows
        return rows

    def _row_list(self, width: int) -> List[float]:
        """``_row_rates(width).tolist()``, filled once (``tolist``
        round-trips float64 bits exactly)."""
        lst = self._row_list_cache.get(width)
        if lst is None:
            lst = self._row_rates(width).tolist()
            self._row_list_cache[width] = lst
        return lst

    def relay_feasible(self, ledger, width: int) -> np.ndarray:
        """Per-node "may relay at this width" flags for one search batch.

        See :meth:`relay_state`; this is the flags array alone, kept as
        the stable public accessor (the parity suite reads it)."""
        return self.relay_state(ledger, width)[0]

    def relay_state(self, ledger, width: int) -> Tuple[np.ndarray, int]:
        """``(flags, version)`` for relaying at *width* under *ledger*.

        A relay must be a switch holding ``2 * width`` free qubits
        (*width* towards each side).  ``ledger`` is a
        :class:`~repro.routing.allocation.QubitLedger` or ``None`` for
        full capacities — matching the reference's default ledger.

        Flags for a journalled ledger are cached per width and patched
        incrementally: between two calls only the nodes the ledger's
        feasibility journal names (reserves *and* releases — the online
        serving loop's departures) are recomputed, so a long-lived
        session re-plans against a mutating snapshot in O(changes)
        instead of O(nodes) per search batch.  The patched flags equal a
        full rebuild bit-for-bit — each flag is a pure function of that
        node's remaining count.  ``version`` advances exactly when the
        flag *contents* change (a rebuild, or a journal patch that flips
        at least one flag), so equal versions guarantee equal flags —
        the key the search-result memo relies on.  Callers must not
        mutate the ledger while holding the returned array.
        """
        need = 2 * width
        n = len(self.node_ids)
        if ledger is None:
            entry = self._static_relay.get(width)
            if entry is None:
                flags = np.fromiter(
                    (
                        (not user) and (cap is None or cap >= need)
                        for user, cap in zip(self.is_user, self.capacity)
                    ),
                    dtype=bool,
                    count=n,
                )
                entry = (flags, next(self._flags_serial))
                self._static_relay[width] = entry
            return entry
        has = ledger.has_at_least
        token = getattr(ledger, "feasibility_token", None)
        if token is None:  # a ledger-like without a journal: full scan
            flags = np.fromiter(
                (
                    (not user) and has(nid, need)
                    for user, nid in zip(self.is_user, self.node_ids)
                ),
                dtype=bool,
                count=n,
            )
            return flags, self._flags_version_for(width, flags)
        epoch, length = token()
        entry = self._relay_cache.get(width)
        if entry is not None and entry[0] is ledger and entry[1] == epoch:
            flags = entry[3]
            if entry[2] != length:
                index_of = self.index_of
                is_user = self.is_user
                changed = False
                for nid in ledger.journal_since(entry[2]):
                    i = index_of[nid]
                    if not is_user[i]:
                        flag = has(nid, need)
                        if flag != bool(flags[i]):
                            flags[i] = flag
                            changed = True
                entry[2] = length
                if changed:
                    entry[4] = self._flags_version_for(width, flags)
            return flags, entry[4]
        flags = np.fromiter(
            (
                (not user) and has(nid, need)
                for user, nid in zip(self.is_user, self.node_ids)
            ),
            dtype=bool,
            count=n,
        )
        # An epoch change (a ledger restore, a journal compaction) or a
        # new ledger entirely (the next routing call on a persistent
        # snapshot) forces this rebuild, but often lands back on flag
        # contents already seen — admission trials restore to the exact
        # snapshot the last search ran against, and back-to-back calls
        # start from the same full capacities.  The content-addressed
        # version map then re-issues the old version, and with it every
        # memoised search, masked row and flags list.
        version = self._flags_version_for(width, flags)
        self._relay_cache[width] = [ledger, epoch, length, flags, version]
        return flags, version

    def _flags_version_for(self, width: int, flags: np.ndarray) -> int:
        """The version for these flag *contents* at *width*, memoised.

        A version is issued once per distinct contents and never reused
        (the serial is global and monotone), so "equal versions imply
        equal flags" — the invariant every version-keyed memo relies on
        — holds by construction.  Clearing a full map only forfeits
        future hits; it cannot alias old versions to new contents.
        """
        by_content = self._flags_versions.setdefault(width, {})
        key = flags.tobytes()
        version = by_content.get(key)
        if version is None:
            if len(by_content) >= 1024:
                by_content.clear()
            version = next(self._flags_serial)
            by_content[key] = version
        return version

    def _flags_list(self, flags: np.ndarray, version: int) -> List[bool]:
        """``flags.tolist()`` cached per version (the kernel reads flags
        one scalar at a time; a list read beats an ndarray read ~3x).
        Exact for the same reason the masked-row cache is: the version
        advances whenever the flag contents change."""
        lst = self._flags_lists.get(version)
        if lst is None:
            if len(self._flags_lists) >= 512:
                self._flags_lists.clear()
            lst = flags.tolist()
            self._flags_lists[version] = lst
        return lst

    def endpoint_feasible(self, ledger, node_id: int, width: int) -> bool:
        """True iff *node_id* can commit *width* qubits as an endpoint."""
        if ledger is None:
            cap = self.capacity[self.index_of[node_id]]
            return cap is None or cap >= width
        return ledger.has_at_least(node_id, width)

    # ------------------------------------------------------------------
    # The Algorithm 1 kernel

    def _slots_into(self, node_idx: int) -> np.ndarray:
        """CSR slots whose neighbour is *node_idx* (topology-static)."""
        slots = self._in_slots.get(node_idx)
        if slots is None:
            slots = np.flatnonzero(self.adj_nodes == node_idx)
            self._in_slots[node_idx] = slots
        return slots

    def _slots_into_list(self, node_idx: int) -> List[int]:
        """``_slots_into(node_idx).tolist()``, filled once."""
        slots = self._in_slots_lists.get(node_idx)
        if slots is None:
            slots = self._slots_into(node_idx).tolist()
            self._in_slots_lists[node_idx] = slots
        return slots

    def _base_row(
        self, width: int, flags: np.ndarray, version: int
    ) -> Tuple[np.ndarray, List[float]]:
        """Destination-agnostic masked rate row per (width, version).

        The expensive part of a masked row — folding the relay flags
        into the rate row and converting to the list layout — does not
        depend on the destination or the banned set, so it is built once
        per (width, flags version) and the per-destination / per-ban
        variants patch a copy (a handful of slots each).
        """
        key = (width, version)
        pair = self._base_row_cache.get(key)
        if pair is None:
            if len(self._base_row_cache) >= _MASKED_ROW_CACHE_LIMIT:
                self._base_row_cache.clear()
            masked = np.where(flags[self.adj_nodes], self._row_rates(width), 0.0)
            pair = (masked, masked.tolist())
            self._base_row_cache[key] = pair
        return pair

    def _masked_row_rates(
        self,
        width: int,
        flags: np.ndarray,
        version: int,
        destination_idx: int,
        banned_edge_ids: FrozenSet[int] = frozenset(),
    ) -> Tuple[np.ndarray, List[float]]:
        """Slot-aligned candidate rates with infeasible slots zeroed.

        The feasibility mask is folded straight into the rate row: a
        slot whose neighbour may not relay (and is not the destination,
        which needs only endpoint feasibility — the caller's check)
        carries rate 0.0, which the kernel's strict ``candidate > best``
        test rejects exactly like the reference's explicit skip (``best``
        is never below 0).  This reduces relaxing a row to one multiply
        + one compare per slot with no per-edge feasibility lookups.
        Returns the row as ``(ndarray, list)`` — same values, two
        layouts — so the kernel can pick array ops or the scalar loop
        per row without converting.  Banned edges (Yen's deviation
        searches) zero both slots of each named edge on top of the base
        row.  Cached per (width, flags version, destination, banned
        set) — exact because the version changes whenever the flag
        contents do, and a hit for a banned variant is common: the same
        root-prefix bans recur across every width of the sweep and
        every refill round.
        """
        key = (width, version, destination_idx, banned_edge_ids)
        pair = self._masked_row_cache.get(key)
        if pair is None:
            if len(self._masked_row_cache) >= _MASKED_ROW_CACHE_LIMIT:
                self._masked_row_cache.clear()
            if banned_edge_ids:
                base_np, base_list = self._masked_row_rates(
                    width, flags, version, destination_idx
                )
                masked = base_np.copy()
                masked_list = base_list.copy()
                for eid in sorted(banned_edge_ids):
                    s0, s1 = self.edge_slots_list[eid]
                    masked[s0] = 0.0
                    masked[s1] = 0.0
                    masked_list[s0] = 0.0
                    masked_list[s1] = 0.0
            else:
                base_np, base_list = self._base_row(width, flags, version)
                rows = self._row_rates(width)
                rows_list = self._row_list(width)
                into_destination = self._slots_into(destination_idx)
                masked = base_np.copy()
                masked[into_destination] = rows[into_destination]
                masked_list = base_list.copy()
                for slot in self._slots_into_list(destination_idx):
                    masked_list[slot] = rows_list[slot]
            pair = (masked, masked_list)
            self._masked_row_cache[key] = pair
        return pair

    def _kernel(
        self,
        source: int,
        destination: int,
        masked_np: np.ndarray,
        masked_list: List[float],
        flags_list: List[bool],
        swap2: float,
        banned_idx: Sequence[int],
    ) -> Optional[Tuple[List[int], float]]:
        """Algorithm 1's modified Dijkstra over masked rate rows.

        *source*/*destination*/*banned_idx* are node **indices**;
        ``masked_np``/``masked_list`` are the same slot-aligned rate row
        with infeasible slots zeroed, in both layouts (see
        :meth:`_masked_row_rates`).  Returns ``(index_path, rate)`` or
        ``None``.

        The relaxation replays the reference implementation move for
        move: each popped node's CSR row is relaxed slot-ascending with
        sequential tie-break counters — the same push sequence, so the
        returned path is bit-identical, not merely rate-equal.  Rows of
        at least ``_VECTOR_ROW_MIN`` slots relax through array ops
        (masked multiply + nonzero survivor scan); shorter rows use a
        scalar loop over the list layout, because at typical mesh
        degrees the fixed dispatch cost of the array calls exceeds the
        whole loop.  Both branches make identical update decisions:
        a zeroed slot can never pass the strict ``candidate > best``
        test (``best`` is never below 0), so pre-skipping zeros in the
        vector branch equals comparing them in the scalar branch.
        Banned nodes are excluded by pinning their ``best`` to ``+inf``
        (the strict test then never updates or pushes them), which also
        covers the reference's relax-time visited test: every rate
        factor is <= 1, so a settled node's rate is never strictly
        beaten.
        """
        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        best = self._best
        pred = self._pred
        indptr = self.indptr_list
        adj = self.adj_nodes_list
        heappush = heapq.heappush
        heappop = heapq.heappop
        vector_min = _VECTOR_ROW_MIN
        touched = [source]
        found = False
        try:
            if banned_idx:
                inf = float("inf")
                for i in banned_idx:
                    best[i] = inf
                    touched.append(i)
            best[source] = 1.0
            heap: List[Tuple[float, int, int]] = [(-1.0, 0, source)]
            counter = 1
            while heap:
                negative_rate, _, node = heappop(heap)
                if visited[node] == stamp:
                    continue
                visited[node] = stamp
                if node == destination:
                    found = True
                    break
                rate = -negative_rate
                if node != source:
                    if not flags_list[node]:
                        continue
                    rate = rate * swap2
                lo = indptr[node]
                hi = indptr[node + 1]
                if hi - lo >= vector_min:
                    cand = rate * masked_np[lo:hi]
                    hits = cand.nonzero()[0]
                    for off, c in zip(hits.tolist(),
                                      cand.take(hits).tolist()):
                        nbr = adj[lo + off]
                        if c > best[nbr]:
                            best[nbr] = c
                            pred[nbr] = node
                            heappush(heap, (-c, counter, nbr))
                            counter += 1
                            touched.append(nbr)
                else:
                    for slot in range(lo, hi):
                        c = rate * masked_list[slot]
                        nbr = adj[slot]
                        if c > best[nbr]:
                            best[nbr] = c
                            pred[nbr] = node
                            heappush(heap, (-c, counter, nbr))
                            counter += 1
                            touched.append(nbr)
            if not found:
                return None
            path = [destination]
            while path[-1] != source:
                path.append(pred[path[-1]])
            path.reverse()
            rate_found = best[destination]
        finally:
            for i in touched:
                best[i] = 0.0
        return path, rate_found

    def _kernel_multi(
        self,
        source: int,
        destination: int,
        masked_nps: Sequence[np.ndarray],
        masked_lists: Sequence[List[float]],
        flags_lists: Sequence[List[bool]],
        swap2: float,
        banned_idx: Sequence[int],
    ) -> List[Optional[Tuple[List[int], float]]]:
        """One fused Dijkstra pass answering every width of a batch.

        The per-width rows in ``masked_nps``/``masked_lists``/
        ``flags_lists`` are aligned; the pass carries one flattened
        ``(n_widths, n_nodes)`` best/pred/visited matrix (slot
        ``w * n + node``) and a single shared heap whose entries encode
        the width in the slot id, so the widths advance through one
        frontier and share the heap, the CSR layout and the scratch
        reset instead of each paying its own pass.

        Bit-exactness per width: a heap entry is ``(-rate, counter,
        slot)`` with one global monotone counter.  Restricted to one
        width's entries, the counter is a monotone relabelling of the
        standalone kernel's per-width counter, so every comparison
        between two same-width entries resolves exactly as it would
        standalone, and a pop of width *w* reads and writes only width
        *w*'s slots.  By induction the pop/push subsequence of each
        width — and therefore its best/pred state and returned path —
        is identical to :meth:`_kernel` run per width, float for float.
        A width whose destination has been popped is finished; its
        stale heap entries are skipped rather than relaxed, exactly as
        the standalone kernel's early break discards them.
        """
        n = len(self.node_ids)
        k = len(masked_lists)
        size = k * n
        best = self._multi_best
        if len(best) < size:
            self._multi_best = best = [0.0] * size
            self._multi_pred = [0] * size
            self._multi_visited = [0] * size
        pred = self._multi_pred
        visited = self._multi_visited
        self._multi_stamp += 1
        stamp = self._multi_stamp
        indptr = self.indptr_list
        adj = self.adj_nodes_list
        heappush = heapq.heappush
        heappop = heapq.heappop
        vector_min = _VECTOR_ROW_MIN
        results: List[Optional[Tuple[List[int], float]]] = [None] * k
        done = [False] * k
        remaining = k
        touched: List[int] = []
        heap: List[Tuple[float, int, int]] = []
        counter = 0
        try:
            if banned_idx:
                inf = float("inf")
                for base in range(0, size, n):
                    for i in banned_idx:
                        key = base + i
                        best[key] = inf
                        touched.append(key)
            for base in range(0, size, n):
                key = base + source
                best[key] = 1.0
                touched.append(key)
                # Equal rates, ascending counters: the literal list is
                # already heap-ordered.
                heap.append((-1.0, counter, key))
                counter += 1
            while heap:
                negative_rate, _, key = heappop(heap)
                if visited[key] == stamp:
                    continue
                visited[key] = stamp
                w, node = divmod(key, n)
                if done[w]:
                    continue
                if node == destination:
                    base = key - node
                    path = [destination]
                    while path[-1] != source:
                        path.append(pred[base + path[-1]])
                    path.reverse()
                    results[w] = (path, best[key])
                    done[w] = True
                    remaining -= 1
                    if not remaining:
                        break
                    continue
                rate = -negative_rate
                if node != source:
                    if not flags_lists[w][node]:
                        continue
                    rate = rate * swap2
                base = key - node
                lo = indptr[node]
                hi = indptr[node + 1]
                if hi - lo >= vector_min:
                    cand = rate * masked_nps[w][lo:hi]
                    hits = cand.nonzero()[0]
                    for off, c in zip(hits.tolist(),
                                      cand.take(hits).tolist()):
                        nkey = base + adj[lo + off]
                        if c > best[nkey]:
                            best[nkey] = c
                            pred[nkey] = node
                            heappush(heap, (-c, counter, nkey))
                            counter += 1
                            touched.append(nkey)
                else:
                    masked = masked_lists[w]
                    for slot in range(lo, hi):
                        c = rate * masked[slot]
                        nkey = base + adj[slot]
                        if c > best[nkey]:
                            best[nkey] = c
                            pred[nkey] = node
                            heappush(heap, (-c, counter, nkey))
                            counter += 1
                            touched.append(nkey)
        finally:
            for key in touched:
                best[key] = 0.0
        return results

    def run_search(
        self,
        source: int,
        destination: int,
        width: int,
        swap2: float,
        ledger=None,
        banned_nodes: Iterable[int] = (),
        banned_edges: Iterable[EdgeKey] = (),
    ) -> Optional[Tuple[Tuple[int, ...], float]]:
        """One memoised Algorithm-1 search in node **ids**.

        Endpoint feasibility (and the banned-endpoint short-circuit) is
        the caller's job — see :meth:`WidthSearchBatch.search`, the
        normal way in.  Results are memoised on the snapshot keyed by
        the exact kernel inputs, so a hit is bitwise-identical to a
        fresh search by construction; the relay-flags *version* in the
        key invalidates entries the moment any flag flips.
        """
        index_of = self.index_of
        flags, version = self.relay_state(ledger, width)
        # Banned entries outside the network are unreachable anyway.
        if banned_nodes:
            banned_node_idx = frozenset(
                index_of[n] for n in banned_nodes if n in index_of
            )
        else:
            banned_node_idx = _EMPTY
        if banned_edges:
            edge_index = self.edge_index
            banned_edge_ids = frozenset(
                edge_index[e] for e in banned_edges if e in edge_index
            )
        else:
            banned_edge_ids = _EMPTY
        key = (
            index_of[source],
            index_of[destination],
            width,
            version,
            swap2,
            banned_node_idx,
            banned_edge_ids,
        )
        memo = self._search_memo
        hit = memo.get(key, _MISS)
        if hit is not _MISS:
            return hit
        masked_np, masked_list = self._masked_row_rates(
            width, flags, version, key[1], banned_edge_ids
        )
        found = self._kernel(
            key[0], key[1], masked_np, masked_list,
            self._flags_list(flags, version), swap2,
            sorted(banned_node_idx),
        )
        if found is None:
            result = None
        else:
            ids = self.node_ids
            result = (tuple(ids[i] for i in found[0]), found[1])
        if len(memo) >= _SEARCH_MEMO_LIMIT:
            memo.clear()
        memo[key] = result
        return result


def compile_network(
    network: QuantumNetwork, link_model: LinkModel
) -> CompiledNetwork:
    """Flatten *network* + *link_model* into a :class:`CompiledNetwork`."""
    return CompiledNetwork(network, link_model)


def snapshot_for(
    network: QuantumNetwork,
    link_model: LinkModel,
    rate_cache=None,
) -> CompiledNetwork:
    """The snapshot for ``(network, link_model)``, shared via *rate_cache*.

    Routers already thread one
    :class:`~repro.routing.metrics.ChannelRateCache` through a
    ``route()`` call; hanging the snapshot off it gives every search in
    the call one snapshot with no new plumbing.  A cache bound to a
    different network or link model is ignored (fresh snapshot) rather
    than trusted.
    """
    if (
        rate_cache is not None
        and rate_cache.network is network
        and rate_cache.link_model is link_model
    ):
        snapshot = rate_cache.compiled_snapshot
        if snapshot is None:
            snapshot = _persistent_snapshot(network, link_model)
            rate_cache.compiled_snapshot = snapshot
        return snapshot
    return _persistent_snapshot(network, link_model)


#: Snapshot memo entries kept per network before a wholesale clear.
_SNAPSHOT_MEMO_LIMIT = 4


def _persistent_snapshot(
    network: QuantumNetwork, link_model: LinkModel
) -> CompiledNetwork:
    """A :class:`CompiledNetwork` for ``(network, link_model)``, memoised
    on the network object across routing calls.

    Sweeps and Monte-Carlo trials route the same network hundreds of
    times; the snapshot (CSR layout, rate columns, masked rows, search
    memo) is a pure function of the topology and the link model, so it
    is kept on the network keyed by ``(link_model, topology_version)``
    — the frozen-dataclass link model compares by value and the version
    counter changes exactly when the topology mutates, so a stale
    snapshot can never be returned.  Network-likes without the counter
    (or without a ``__dict__``) just get a fresh snapshot.
    """
    version = getattr(network, "topology_version", None)
    if version is None:
        return CompiledNetwork(network, link_model)
    key = (link_model, version)
    try:
        memo = network.__dict__.setdefault("_compiled_snapshots", {})
    except AttributeError:
        return CompiledNetwork(network, link_model)
    snapshot = memo.get(key)
    if snapshot is None:
        if len(memo) >= _SNAPSHOT_MEMO_LIMIT:
            memo.clear()
        snapshot = CompiledNetwork(network, link_model)
        memo[key] = snapshot
    return snapshot


# ----------------------------------------------------------------------
# Batched width search — the kernel-facing API


class WidthSearchBatch:
    """All Algorithm-1 searches of one demand against one snapshot.

    Binds ``(snapshot, swap model, endpoints, widths, ledger)`` once, so
    every width and every Yen deviation of the demand runs through the
    same hoisted state and the snapshot's shared search-result memo.
    Construct per demand (cheap: index lookups only) and discard freely;
    the lifetime rules are the snapshot's (see the module docstring).
    """

    __slots__ = (
        "snapshot",
        "ledger",
        "swap2",
        "source",
        "destination",
        "widths",
    )

    def __init__(
        self,
        snapshot: CompiledNetwork,
        swap_model: SwapModel,
        source: int,
        destination: int,
        widths: Sequence[int],
        ledger=None,
    ):
        if source == destination:
            raise RoutingError("source and destination must differ")
        index_of = snapshot.index_of
        if source not in index_of or destination not in index_of:
            raise RoutingError(
                f"endpoints ({source}, {destination}) must exist in the network"
            )
        self.widths: Tuple[int, ...] = tuple(widths)
        for width in self.widths:
            if width < 1:
                raise RoutingError(f"width must be >= 1, got {width}")
        self.snapshot = snapshot
        self.ledger = ledger
        self.swap2 = swap_model.success_probability(2)
        self.source = source
        self.destination = destination

    def search(
        self,
        width: int,
        spur_source: Optional[int] = None,
        banned_nodes: Iterable[int] = (),
        banned_edges: Iterable[EdgeKey] = (),
    ) -> Optional[Tuple[Tuple[int, ...], float]]:
        """The best path at *width*, optionally from a Yen spur source.

        Checks endpoint feasibility against the live ledger (never
        memoised — endpoint counts can change without any relay flag
        flipping), then answers from the snapshot's search memo or runs
        the kernel.  Returns ``(nodes, rate)`` or ``None``.
        """
        snapshot = self.snapshot
        ledger = self.ledger
        source = self.source if spur_source is None else spur_source
        destination = self.destination
        if source in banned_nodes or destination in banned_nodes:
            return None
        if not snapshot.endpoint_feasible(ledger, source, width):
            return None
        if not snapshot.endpoint_feasible(ledger, destination, width):
            return None
        return snapshot.run_search(
            source, destination, width, self.swap2, ledger,
            banned_nodes, banned_edges,
        )

    def search_widths(
        self,
        spur_source: Optional[int] = None,
        banned_nodes: Iterable[int] = (),
        banned_edges: Iterable[EdgeKey] = (),
    ) -> Dict[int, Optional[Tuple[Tuple[int, ...], float]]]:
        """:meth:`search` for every batch width in one call.

        Returns ``{width: (nodes, rate) | None}`` covering exactly the
        batch's widths, each answer bit-identical to a standalone
        :meth:`search`.  Batches of at least :func:`fused_width_min`
        widths run every memo-missing width through one fused
        multi-width Dijkstra pass (:meth:`CompiledNetwork._kernel_multi`
        — shared frontier, one flattened distance/parent matrix, the
        banned sets resolved and each width's rate row masked once for
        the whole pass); smaller batches fall back to the scalar
        per-width path, which also serves as the fused kernel's parity
        oracle.  Per-width endpoint feasibility, the banned-endpoint
        short-circuit and the snapshot's search memo are consulted
        exactly as :meth:`search` does, and fused results are stored
        under the same memo keys, so the two paths are interchangeable
        call by call.
        """
        widths = self.widths
        if len(widths) < fused_width_min():
            return {
                width: self.search(
                    width, spur_source, banned_nodes, banned_edges
                )
                for width in widths
            }
        snapshot = self.snapshot
        ledger = self.ledger
        swap2 = self.swap2
        source = self.source if spur_source is None else spur_source
        destination = self.destination
        endpoint_banned = (
            source in banned_nodes or destination in banned_nodes
        )
        index_of = snapshot.index_of
        if banned_nodes:
            banned_node_idx = frozenset(
                index_of[x] for x in banned_nodes if x in index_of
            )
        else:
            banned_node_idx = _EMPTY
        if banned_edges:
            edge_index = snapshot.edge_index
            banned_edge_ids = frozenset(
                edge_index[e] for e in banned_edges if e in edge_index
            )
        else:
            banned_edge_ids = _EMPTY
        src_idx = index_of[source]
        dst_idx = index_of[destination]
        memo = snapshot._search_memo
        results: Dict[int, Optional[Tuple[Tuple[int, ...], float]]] = {}
        pending: List[tuple] = []
        for width in widths:
            if endpoint_banned:
                results[width] = None
                continue
            if not snapshot.endpoint_feasible(ledger, source, width):
                results[width] = None
                continue
            if not snapshot.endpoint_feasible(ledger, destination, width):
                results[width] = None
                continue
            flags, version = snapshot.relay_state(ledger, width)
            key = (
                src_idx,
                dst_idx,
                width,
                version,
                swap2,
                banned_node_idx,
                banned_edge_ids,
            )
            hit = memo.get(key, _MISS)
            if hit is not _MISS:
                results[width] = hit
                continue
            masked_np, masked_list = snapshot._masked_row_rates(
                width, flags, version, dst_idx, banned_edge_ids
            )
            pending.append(
                (
                    width,
                    key,
                    masked_np,
                    masked_list,
                    snapshot._flags_list(flags, version),
                )
            )
        if not pending:
            return results
        banned_sorted = sorted(banned_node_idx)
        node_ids = snapshot.node_ids
        if len(pending) == 1:
            # One miss left: the single-width kernel is the same search
            # without the flattened-matrix overhead.
            width, key, masked_np, masked_list, flags_list = pending[0]
            founds = [
                snapshot._kernel(
                    src_idx, dst_idx, masked_np, masked_list, flags_list,
                    swap2, banned_sorted,
                )
            ]
        else:
            founds = snapshot._kernel_multi(
                src_idx,
                dst_idx,
                [entry[2] for entry in pending],
                [entry[3] for entry in pending],
                [entry[4] for entry in pending],
                swap2,
                banned_sorted,
            )
        for entry, found in zip(pending, founds):
            width, key = entry[0], entry[1]
            if found is None:
                result = None
            else:
                result = (tuple(node_ids[i] for i in found[0]), found[1])
            if len(memo) >= _SEARCH_MEMO_LIMIT:
                memo.clear()
            memo[key] = result
            results[width] = result
        return results


def search_widths(
    snapshot: CompiledNetwork,
    swap_model: SwapModel,
    demand: Demand,
    widths: Sequence[int],
    *,
    ledger=None,
    banned_nodes: Iterable[int] = (),
    banned_edges: Iterable[EdgeKey] = (),
) -> Dict[int, Optional[Tuple[Tuple[int, ...], float]]]:
    """Batched kernel entry point: one demand, every width, one call.

    Builds a :class:`WidthSearchBatch` for *demand* and answers every
    width in *widths* (see :meth:`WidthSearchBatch.search_widths`).
    """
    batch = WidthSearchBatch(
        snapshot, swap_model, demand.source, demand.destination, widths,
        ledger,
    )
    return batch.search_widths(
        banned_nodes=banned_nodes, banned_edges=banned_edges
    )


# ----------------------------------------------------------------------
# Compiled Algorithm 1 entry point


def compiled_search(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    source: int,
    destination: int,
    width: int,
    ledger=None,
    banned_nodes: FrozenSet[int] = frozenset(),
    banned_edges: FrozenSet[EdgeKey] = frozenset(),
    rate_cache=None,
) -> Optional[Tuple[Tuple[int, ...], float]]:
    """Compiled body of Algorithm 1 (arguments as the reference wrapper).

    The caller —
    :func:`~repro.routing.alg1_largest_rate.largest_entanglement_rate_path`
    — has already validated widths, endpoints and banned-endpoint
    cases; this dispatches a single-width :class:`WidthSearchBatch`
    so standalone Algorithm-1 calls share the snapshot's search memo
    with the Algorithm-2 sweeps.
    """
    snapshot = snapshot_for(network, link_model, rate_cache)
    batch = WidthSearchBatch(
        snapshot, swap_model, source, destination, (width,), ledger
    )
    return batch.search(
        width, banned_nodes=banned_nodes, banned_edges=banned_edges
    )


# ----------------------------------------------------------------------
# Yen's deviation scheme (core-independent orchestration)


def yen_deviation_loop(first, h, search, path_rate):
    """Yen's k-best deviation scheme around a single-path solver.

    ``first`` is the solver's ``(nodes, rate)`` for the full demand;
    ``search(spur_source, banned_node_ids, banned_edge_keys)`` returns
    the best ``(nodes, rate)`` under those bans or ``None``;
    ``path_rate(nodes)`` scores a stitched root+spur candidate (``None``
    skips it).  Returns the accepted ``(nodes, rate)`` list, best first.

    This single driver serves both routing cores — only the solver and
    the path scorer differ — so the orchestration that bit-parity
    depends on (banned-edge accumulation, dedup, candidate heap,
    tie-break counters) cannot drift between them.
    """
    accepted: List[Tuple[Tuple[int, ...], float]] = [first]
    seen = {first[0]}
    counter = itertools.count()
    candidates: List[Tuple[float, int, Tuple[int, ...]]] = []

    while len(accepted) < h:
        previous_nodes = accepted[-1][0]
        for deviation_index in range(len(previous_nodes) - 1):
            root = previous_nodes[: deviation_index + 1]
            spur_node = previous_nodes[deviation_index]
            banned_edges = set()
            for path_nodes, _ in accepted:
                if tuple(path_nodes[: deviation_index + 1]) == root:
                    banned_edges.add(
                        _ekey(
                            path_nodes[deviation_index],
                            path_nodes[deviation_index + 1],
                        )
                    )
            spur = search(spur_node, root[:-1], banned_edges)
            if spur is None:
                continue
            total_nodes = root[:-1] + spur[0]
            if total_nodes in seen:
                continue
            seen.add(total_nodes)
            total_rate = path_rate(total_nodes)
            if total_rate is None:  # pragma: no cover - spur paths are valid
                continue
            heapq.heappush(
                candidates, (-total_rate, next(counter), total_nodes)
            )
        if not candidates:
            break
        negative_rate, _, nodes = heapq.heappop(candidates)
        accepted.append((nodes, -negative_rate))

    return accepted


# ----------------------------------------------------------------------
# Compiled Algorithm 2 (Yen + the batched kernel)


def compiled_select_paths(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    demand: Demand,
    h: int,
    max_width: int,
    ledger=None,
    rate_cache=None,
    banned_nodes: FrozenSet[int] = frozenset(),
    banned_edges: FrozenSet[EdgeKey] = frozenset(),
) -> Dict[int, List[PathCandidate]]:
    """Compiled body of Algorithm 2's per-width Yen loop.

    One :class:`WidthSearchBatch` serves every width: the initial
    searches of all widths run as one :meth:`~WidthSearchBatch.
    search_widths` sweep, then each feasible width's Yen deviations
    drive the same batch (and therefore the same snapshot memo — spur
    searches repeated across widths and refill rounds are answered
    once).  *banned_nodes*/*banned_edges* are session-wide masks (the
    serving loop's down elements); they reach every search — including
    each Yen deviation, unioned with the deviation's own bans — as
    memo-keyed mask sets, so fault state changes cost O(changes) of
    re-masked rows rather than a snapshot rebuild.  Parameter
    validation and the ``max_hops`` filter stay in
    :func:`~repro.routing.alg2_path_selection.select_paths`.
    """
    snapshot = snapshot_for(network, link_model, rate_cache)
    widths = tuple(range(max_width, 0, -1))
    batch = WidthSearchBatch(
        snapshot, swap_model, demand.source, demand.destination, widths,
        ledger,
    )
    firsts = batch.search_widths(
        banned_nodes=banned_nodes, banned_edges=banned_edges
    )
    result: Dict[int, List[PathCandidate]] = {}
    for width in widths:
        first = firsts[width]
        if first is None:
            continue
        paths = _compiled_yen_best_paths(
            batch, demand, width, h, first, banned_nodes, banned_edges
        )
        if paths:
            result[width] = paths
    return result


def _compiled_yen_best_paths(
    batch: WidthSearchBatch,
    demand: Demand,
    width: int,
    h: int,
    first: Tuple[Tuple[int, ...], float],
    banned_nodes: FrozenSet[int] = frozenset(),
    banned_edges: FrozenSet[EdgeKey] = frozenset(),
) -> List[PathCandidate]:
    """The shared :func:`yen_deviation_loop` driven by one width of a
    :class:`WidthSearchBatch`."""
    snapshot = batch.snapshot
    rates = snapshot.width_rates(width)
    swap2 = batch.swap2

    def run_alg1(spur_source, banned_node_ids, banned_edge_keys):
        return batch.search(
            width,
            spur_source,
            banned_nodes | frozenset(banned_node_ids),
            banned_edges | frozenset(banned_edge_keys),
        )

    accepted = yen_deviation_loop(
        first, h, run_alg1,
        lambda nodes: _compiled_path_rate(snapshot, nodes, rates, swap2),
    )
    return [
        PathCandidate(demand.demand_id, nodes, width, rate)
        for nodes, rate in accepted
    ]


def _compiled_path_rate(
    snapshot: CompiledNetwork,
    nodes: Tuple[int, ...],
    rates: Sequence[float],
    swap2: float,
) -> float:
    """Uniform-width path rate over the snapshot's rate column.

    Multiplication order matches
    :func:`~repro.routing.metrics.path_entanglement_rate` — edges in
    path order, then intermediate swap factors in path order (users
    contribute an exact 1.0, i.e. no multiply) — so the float result is
    bit-identical.
    """
    edge_index = snapshot.edge_index
    rate = 1.0
    for a, b in zip(nodes, nodes[1:]):
        rate *= rates[edge_index[(a, b) if a < b else (b, a)]]
    is_user = snapshot.is_user
    index_of = snapshot.index_of
    for node in nodes[1:-1]:
        if not is_user[index_of[node]]:
            rate *= swap2
    # The rate column is float64; hand back a plain float like the
    # reference scorer (same bits, friendlier repr downstream).
    return float(rate)

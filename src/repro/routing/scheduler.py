"""Online demand scheduling (extension).

The paper computes routes offline for a known demand set (Phase I).  A
deployed center server instead sees demands *arrive* over time slots and
must route each slot's batch on whatever the topology offers.  The
:class:`OnlineScheduler` models the simplest such operation:

* at each slot, new demands arrive (Poisson by default);
* the slot's pending demands are routed with a configurable router on the
  full network (allocations are one-shot: the entangled pairs produced in
  a slot are consumed by the applications, so qubits return afterwards);
* demands that received no route stay pending for up to ``patience``
  further slots, then are dropped.

Metrics: per-slot expected throughput, service rate, and drop rate — a
convenient harness for comparing routers under load rather than on a
single batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate outcome of an online run."""

    num_slots: int
    arrived: int
    served: int
    dropped: int
    expected_throughput: float

    @property
    def service_fraction(self) -> float:
        """Fraction of arrived demands that received a route."""
        return self.served / self.arrived if self.arrived else 0.0

    @property
    def mean_throughput_per_slot(self) -> float:
        """Expected states delivered per slot."""
        return self.expected_throughput / self.num_slots


@dataclass
class OnlineScheduler:
    """Slot-by-slot batching of arriving demands onto a router."""

    router: object
    arrival_rate: float = 2.0
    patience: int = 3

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be > 0, got {self.arrival_rate}"
            )
        if self.patience < 0:
            raise ConfigurationError(
                f"patience must be >= 0, got {self.patience}"
            )

    def run(
        self,
        network: QuantumNetwork,
        num_slots: int,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
        rng: Optional[RandomState] = None,
    ) -> ScheduleResult:
        """Simulate *num_slots* of Poisson demand arrivals."""
        if num_slots < 1:
            raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")
        rng = ensure_rng(rng)
        link_model = link_model or LinkModel()
        swap_model = swap_model or SwapModel()
        users = network.users()
        if len(users) < 2:
            raise ConfigurationError("network needs at least 2 users")

        pending: List[Tuple[Demand, int]] = []  # (demand, slots waited)
        next_id = 0
        arrived = served = dropped = 0
        expected_throughput = 0.0

        for _ in range(num_slots):
            num_arrivals = int(rng.poisson(self.arrival_rate))
            for _ in range(num_arrivals):
                i, j = rng.choice(len(users), size=2, replace=False)
                pending.append(
                    (Demand(next_id, users[int(i)], users[int(j)]), 0)
                )
                next_id += 1
                arrived += 1
            if not pending:
                continue
            batch = DemandSet([demand for demand, _ in pending])
            result = self.router.route(network, batch, link_model, swap_model)
            expected_throughput += result.total_rate
            still_pending: List[Tuple[Demand, int]] = []
            for demand, waited in pending:
                if demand.demand_id in result.demand_rates:
                    served += 1
                elif waited + 1 > self.patience:
                    dropped += 1
                else:
                    still_pending.append((demand, waited + 1))
            pending = still_pending

        # Demands still pending at the end count as neither served nor
        # dropped; report them as dropped for a conservative figure.
        dropped += len(pending)
        return ScheduleResult(
            num_slots=num_slots,
            arrived=arrived,
            served=served,
            dropped=dropped,
            expected_throughput=expected_throughput,
        )

"""Router spec/registry: address routers by name + parameters.

Every routing algorithm in the library is registered under a short key
("alg-n-fusion", "q-cast", "q-cast-n", "b1", "mcf") and can be built
from a :class:`RouterSpec` — a serializable ``(key, params)`` record —
instead of a hand-constructed Python object.  This gives every layer a
common currency:

* the CLIs accept ``--routers KEY[:param=val,...]`` strings and parse
  them with :func:`parse_router_specs`;
* the experiments runner expands specs into router instances right
  before execution (specs are tiny and picklable, so they cross process
  boundaries cheaply);
* the result cache derives router identity from ``config_dict()``,
  which is stable across processes and releases (unlike ``repr`` or
  instance identity).

Registering a new router is one decorator::

    @register_router("my-router")
    @dataclass
    class MyRouter:
        threshold: float = 0.5
        name: str = "MY-ROUTER"

        def route(self, network, demands, link_model=None, swap_model=None):
            ...

after which ``RouterSpec.from_string("my-router:threshold=0.25")``,
``make_router("my-router")`` and every experiment CLI's ``--routers``
flag can address it.
"""

from __future__ import annotations

import dataclasses
import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.network.demands import DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
import repro.specs as specs
from repro.specs import SpecBase, SpecError


class RouterSpecError(SpecError):
    """A router key, parameter or spec string is invalid.

    Subclasses :class:`ValueError` as well so ``argparse`` type callables
    can surface the message as a normal usage error.
    """


@runtime_checkable
class Router(Protocol):
    """What the experiments layer requires of a routing algorithm."""

    name: str

    def route(
        self,
        network: QuantumNetwork,
        demands: DemandSet,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
    ) -> "RoutingResult":  # noqa: F821 - avoids a circular import
        """Route *demands* over *network* and report analytic rates."""
        ...

    def config_dict(self) -> Dict:
        """Stable, JSON-ready identity: registry key + full parameters."""
        ...


# Write-once at import time (decorators run as modules load), identical
# in every worker process — deliberate registries, not accumulating
# caches, hence the RPL006 suppressions.
_REGISTRY: Dict[str, type] = {}  # repro: noqa[RPL006]
_ALIASES: Dict[str, str] = {}  # repro: noqa[RPL006]
_BUILTINS_LOADED = False


def _load_builtins() -> None:
    """Import the bundled router modules so their registrations run.

    Deferred to first lookup: the router modules import this module for
    the decorator, so importing them here at module load would cycle.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.routing.baselines  # noqa: F401
        import repro.routing.nfusion  # noqa: F401


#: Legal registry keys/aliases: lowercase, and free of the spec-string
#: separators (``:`` ``,`` ``=``) and whitespace that would make them
#: unparseable from the CLI.
_KEY_PATTERN = re.compile(r"[a-z0-9][a-z0-9._-]*")


def _default_config_dict(self) -> Dict:
    """Registry key plus every dataclass field (defaults included)."""
    cls = type(self)
    if _REGISTRY.get(cls.registry_key) is not cls:
        # An unregistered subclass inherits registry_key; claiming the
        # base class's identity would poison cache keys and specs.
        raise RouterSpecError(
            f"{cls.__name__} is not a registered router (it inherits "
            f"{cls.registry_key!r} from a base class); decorate it with "
            "@register_router to give it its own identity"
        )
    return {
        "key": cls.registry_key,
        "params": dataclasses.asdict(self),
    }


def register_router(key: str, aliases: Tuple[str, ...] = ()):
    """Class decorator registering a router dataclass under *key*.

    Stamps ``registry_key`` on the class and, unless the class defines
    its own, a ``config_dict()`` deriving the router's stable identity
    from its dataclass fields.  *aliases* are accepted anywhere a key is
    (CLI strings, :func:`make_router`) and normalize to *key*.
    """

    def decorate(cls):
        # Make sure the bundled routers are present before collision
        # checks (no-op while the builtin modules themselves load).
        _load_builtins()
        if not dataclasses.is_dataclass(cls):
            raise TypeError(
                f"register_router requires a dataclass, got {cls.__name__}"
            )
        for name in (key, *aliases):
            if not _KEY_PATTERN.fullmatch(name):
                # Lookups lowercase their input and spec strings reserve
                # the separator characters, so such a name would be
                # permanently unreachable or unparseable.
                raise RouterSpecError(
                    f"invalid router key/alias {name!r}: must be "
                    "lowercase and match "
                    f"{_KEY_PATTERN.pattern!r}"
                )
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise RouterSpecError(
                f"router key {key!r} already registered to "
                f"{existing.__name__}"
            )
        if _ALIASES.get(key, key) != key:
            raise RouterSpecError(
                f"router key {key!r} is already an alias of "
                f"{_ALIASES[key]!r}"
            )
        for alias in aliases:
            # An alias may neither shadow a registered key (aliases win
            # during lookup, so that would silently hijack the key) nor
            # redirect an alias some other router already owns.
            if alias in _REGISTRY and _REGISTRY[alias] is not cls:
                raise RouterSpecError(
                    f"alias {alias!r} collides with the registered "
                    f"router key {alias!r}"
                )
            if _ALIASES.get(alias, key) != key:
                raise RouterSpecError(
                    f"alias {alias!r} already points to {_ALIASES[alias]!r}"
                )
        _REGISTRY[key] = cls
        cls.registry_key = key
        if "config_dict" not in cls.__dict__:
            cls.config_dict = _default_config_dict
        for alias in aliases:
            _ALIASES[alias] = key
        return cls

    return decorate


def router_keys() -> List[str]:
    """All registered canonical router keys, sorted."""
    _load_builtins()
    return sorted(_REGISTRY)


def normalize_key(key: str) -> str:
    """Resolve *key* (or an alias) to its canonical registry key."""
    _load_builtins()
    candidate = key.strip().lower()
    candidate = _ALIASES.get(candidate, candidate)
    if candidate not in _REGISTRY:
        raise RouterSpecError(
            f"unknown router key {key!r}; known routers: "
            f"{', '.join(router_keys())}"
        )
    return candidate


def router_class(key: str) -> type:
    """The router class registered under *key* (aliases accepted)."""
    return _REGISTRY[normalize_key(key)]


@dataclass(frozen=True)
class RouterSpec(SpecBase):
    """A router addressed by registry key plus explicit parameters.

    ``params`` holds only the parameters that differ from the router
    class's defaults as a sorted tuple of ``(name, value)`` pairs, so
    specs are hashable, picklable and canonically comparable.  Use
    :meth:`create` / :meth:`from_string` rather than the raw constructor;
    both normalize the key and validate parameter names against the
    router class's fields.
    """

    key: str
    params: Tuple[Tuple[str, object], ...] = ()

    spec_what = "router"
    spec_error = RouterSpecError

    def __post_init__(self):
        object.__setattr__(self, "key", normalize_key(self.key))
        cls = _REGISTRY[self.key]
        fields = {f.name: f for f in dataclasses.fields(cls)}
        params = dict(self.params)
        unknown = [name for name in params if name not in fields]
        if unknown:
            raise RouterSpecError(
                f"unknown parameter(s) {', '.join(repr(u) for u in unknown)} "
                f"for router {self.key!r}; valid parameters: "
                f"{', '.join(sorted(fields))}"
            )
        # Coerce by the field's declared type where the spec-string
        # value grammar is ambiguous (e.g. name=123 must stay a str,
        # include_alg4=0 must mean False so equal configurations hash
        # identically), rejecting type-invalid values here rather than
        # deep inside a routing run.  Then drop explicit defaults so
        # equal configurations are equal specs.
        coerced = {
            name: _coerce_param(name, value, fields[name].type, self.key)
            for name, value in params.items()
        }
        for value in coerced.values():
            if isinstance(value, str):
                # Catch unserializable strings here so every
                # constructible spec has a working to_string()/__str__.
                _check_spec_string(value)
        canonical = tuple(
            sorted(
                (name, value)
                for name, value in coerced.items()
                if value != fields[name].default
            )
        )
        object.__setattr__(self, "params", canonical)

    @classmethod
    def create(cls, key: str, **params) -> "RouterSpec":
        """Spec for *key* with keyword parameter overrides."""
        return cls(key, tuple(params.items()))

    @classmethod
    def from_string(cls, text: str) -> "RouterSpec":
        """Parse ``"key"`` or ``"key:param=val,param=val"``.

        Values parse as booleans (``true``/``false``), ``none``, ints,
        floats, then fall back to strings — matching what
        :meth:`to_string` emits, so specs round-trip.  A second ``=``
        could parse here but ``to_string`` could never re-emit it, so
        it is rejected symmetrically; unknown parameter names are
        checked (and listed) by ``__post_init__`` against the router
        class's fields.
        """
        key, rest = cls._split_spec(text)
        params: Dict[str, object] = {}
        if rest is not None:
            params = {
                name: _parse_value(value)
                for name, value in cls._parse_params(
                    rest, text=text,
                    forbid_eq_in_value=True, allow_empty_value=True,
                ).items()
            }
        return cls.create(key, **params)

    def to_string(self) -> str:
        """The ``key[:param=val,...]`` form; round-trips via
        :meth:`from_string`."""
        if not self.params:
            return self.key
        rendered = ",".join(
            f"{name}={_format_value(value)}" for name, value in self.params
        )
        return f"{self.key}:{rendered}"

    def param_dict(self) -> Dict[str, object]:
        """The explicit parameter overrides as a plain dict."""
        return dict(self.params)

    def build(self) -> Router:
        """Instantiate the registered router class with these params."""
        return _REGISTRY[self.key](**self.param_dict())

    def config_dict(self) -> Dict:
        """Identical to the built router's ``config_dict()`` — the full
        field set, not just the overrides — so cache keys are stable
        whether derived from the spec or the instance."""
        return self.build().config_dict()

    def __str__(self) -> str:
        return self.to_string()


def make_router(key: str, **params) -> Router:
    """Build a registered router: ``make_router("alg-n-fusion", h=5)``."""
    return RouterSpec.create(key, **params).build()


def as_spec(router) -> RouterSpec:
    """Coerce a spec, spec string or registered router instance to a
    :class:`RouterSpec`.

    Instance coercion keeps only the fields that differ from the class
    defaults, so ``as_spec(AlgNFusion())`` equals
    ``RouterSpec.create("alg-n-fusion")``.
    """
    if isinstance(router, RouterSpec):
        return router
    if isinstance(router, str):
        return RouterSpec.from_string(router)
    key = getattr(type(router), "registry_key", None)
    # The class itself must be the registered one: an unregistered
    # subclass inherits registry_key, and coercing it to the base spec
    # would silently rebuild (and evaluate) the wrong router.
    if key is not None and _REGISTRY.get(key) is type(router):
        overrides = {
            field.name: getattr(router, field.name)
            for field in dataclasses.fields(router)
            if getattr(router, field.name) != field.default
        }
        return RouterSpec.create(key, **overrides)
    raise RouterSpecError(
        f"cannot derive a RouterSpec from {router!r}; pass a RouterSpec, "
        "a spec string, or an instance of a @register_router class "
        "(subclasses need their own registration)"
    )


def parse_router_specs(text: str) -> List[RouterSpec]:
    """Parse a CLI ``--routers`` value into specs.

    The value is comma-separated; a segment containing ``=`` but no
    ``:`` before it continues the previous spec's parameter list, so
    ``"alg-n-fusion:include_alg4=false,h=5,q-cast"`` is two specs.
    """
    groups: List[List[str]] = []
    for segment in text.split(","):
        colon, eq = segment.find(":"), segment.find("=")
        continues = eq != -1 and (colon == -1 or eq < colon)
        if continues:
            if not groups:
                raise RouterSpecError(
                    f"--routers value {text!r} starts with a parameter "
                    f"({segment!r}) instead of a router key"
                )
            groups[-1].append(segment)
        else:
            groups.append([segment])
    return [RouterSpec.from_string(",".join(group)) for group in groups]


#: Field annotations the spec grammar understands; anything else (a
#: custom router's exotic type) is passed through unvalidated.
_OPTIONAL_PATTERN = re.compile(r"(?:typing\.)?Optional\[(.+)\]")


def _coerce_param(name: str, value, annotation, key: str):
    """Coerce a parsed spec value to the field's declared type, or
    reject it.

    Spec-string values parse by shape, so ``name=123`` arrives as the
    int 123 even though ``name`` is a str field, and ``include_alg4=0``
    as an int that must canonicalize to ``False`` for cache keys to
    match the ``false`` spelling.  Type-invalid values (``max_width=abc``)
    raise here — at the CLI's parse-time validators — instead of as a
    raw TypeError deep inside a routing run.  Annotations are compared
    textually because the router modules use ``from __future__ import
    annotations``.
    """
    text = (
        annotation
        if isinstance(annotation, str)
        else getattr(annotation, "__name__", str(annotation))
    ).strip()
    optional = False
    wrapped = _OPTIONAL_PATTERN.fullmatch(text)
    if wrapped:
        optional = True
        text = wrapped.group(1).strip()
    if text not in ("str", "bool", "int", "float"):
        return value
    if value is None:
        if optional:
            return None
        raise RouterSpecError(
            f"parameter {name!r} of router {key!r} must be {text}, "
            "got none"
        )
    if text == "str":
        return value if isinstance(value, str) else _format_value(value)
    if text == "bool":
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
    elif text == "int":
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    elif text == "float":
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            value = float(value)
            if math.isnan(value):
                # NaN breaks spec equality (nan != nan) and to_string.
                raise RouterSpecError(
                    f"parameter {name!r} of router {key!r} must not be NaN"
                )
            return value
    raise RouterSpecError(
        f"parameter {name!r} of router {key!r} must be "
        f"{'an optional ' if optional else ''}{text}, got {value!r}"
    )


def _parse_value(text: str):
    """Spec-string value syntax (shared grammar; see repro.specs)."""
    return specs.parse_value(text)


def _check_spec_string(value: str) -> str:
    """Reject str values the spec grammar cannot re-parse."""
    return specs.check_spec_string(value, RouterSpecError)


def _format_value(value) -> str:
    """Inverse of :func:`_parse_value`; rejects unrepresentable values."""
    return specs.format_value(value, RouterSpecError)

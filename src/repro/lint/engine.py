"""File collection, rule execution and report assembly.

The engine is deliberately rule-agnostic: it turns paths into parsed
:class:`FileContext` records, hands each to every selected rule, strips
``# repro: noqa[...]``-suppressed findings and returns a sorted
:class:`LintReport`.  Rules live in :mod:`repro.lint.rules`; the lazy
import in :func:`run_lint` keeps the dependency one-directional so rule
modules can import this one for :class:`FileContext`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.lint.diagnostics import (
    Diagnostic,
    filter_suppressed,
    parse_suppressions,
)

#: Directory names never descended into while collecting files.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hg", ".eggs", ".tox", "build", "dist"}
)

#: Code attached to files the parser rejects (not a rule finding, but
#: reported through the same channel so CI fails loudly).
PARSE_ERROR_CODE = "RPL000"


@dataclass(frozen=True)
class FileContext:
    """One parsed file as the rules see it.

    ``path`` is the path as reported in diagnostics (what the caller
    passed); ``module_path`` is the canonical ``repro/...``-rooted form
    scope-restricted rules match against, so the same rule fires whether
    the tree was linted as ``src/``, ``src/repro/`` or an absolute path.
    """

    path: str
    module_path: str
    source: str
    tree: ast.Module


@dataclass(frozen=True)
class LintReport:
    """Every surviving diagnostic plus the file count, render-ready."""

    diagnostics: Sequence[Diagnostic]
    files_checked: int

    def ok(self) -> bool:
        """True when the lint pass found nothing."""
        return not self.diagnostics

    def to_json(self) -> Dict[str, object]:
        """The machine-readable report (``--format=json``)."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }


def module_path_for(path: Path) -> str:
    """*path* rooted at its innermost ``repro`` package directory.

    Falls back to the posix form of *path* for files outside any
    ``repro`` tree (standalone fixtures), so path-scoped rules simply
    never match them.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.as_posix()


def _collectable(path: Path) -> bool:
    return not any(
        part in SKIP_DIRS or (part.startswith(".") and len(part) > 1)
        for part in path.parts
    )


def iter_python_files(paths: Iterable[object]) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``*.py`` sequence."""
    for raw in paths:
        path = Path(str(raw))
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if _collectable(found.relative_to(path)):
                    yield found
        elif path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def lint_source(
    source: str,
    path: str,
    select: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Lint one in-memory source blob (the test-fixture entry point)."""
    from repro.lint.rules import all_rules

    wanted = None if select is None else frozenset(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                column=exc.offset or 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    context = FileContext(
        path=path,
        module_path=module_path_for(Path(path)),
        source=source,
        tree=tree,
    )
    findings: List[Diagnostic] = []
    for rule in all_rules():
        if wanted is not None and rule.code not in wanted:
            continue
        findings.extend(rule.check(context))
    return sorted(filter_suppressed(findings, parse_suppressions(source)))


def run_lint(
    paths: Iterable[object],
    select: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint *paths* (files or directory trees) with the selected rules."""
    diagnostics: List[Diagnostic] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        source = path.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(source, str(path), select=select))
    return LintReport(
        diagnostics=sorted(diagnostics), files_checked=files_checked
    )

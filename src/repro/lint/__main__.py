"""CLI entry point: ``python -m repro.lint [paths] [--format=json]``.

Exit codes: 0 clean, 1 findings, 2 usage/IO errors — so CI can
distinguish "violations" from "the linter itself broke".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import run_lint
from repro.lint.rules import all_rules, known_codes


def _default_paths() -> List[str]:
    """``src/`` when run from the repo root, else the current tree."""
    return ["src"] if Path("src").is_dir() else ["."]


def _parse_select(text: str) -> List[str]:
    codes = [token.strip().upper() for token in text.split(",") if token.strip()]
    unknown = sorted(set(codes) - set(known_codes()))
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule code(s) {', '.join(unknown)}; known codes: "
            f"{', '.join(known_codes())}"
        )
    return codes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & cache-integrity linter (rules "
            f"{known_codes()[0]}-{known_codes()[-1]}; suppress one line "
            "with '# repro: noqa[RPL001]')"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/ if present)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", type=_parse_select, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0
    paths = args.paths or _default_paths()
    try:
        report = run_lint(paths, select=args.select)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        for diag in report.diagnostics:
            print(diag.render())
        if report.diagnostics:
            print(
                f"{len(report.diagnostics)} finding(s) in "
                f"{report.files_checked} file(s)",
                file=sys.stderr,
            )
    return 1 if report.diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())

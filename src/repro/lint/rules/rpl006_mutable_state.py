"""RPL006: mutable defaults / module-level mutable state in routing.

Routing code runs inside worker processes and is re-imported per
process.  A mutable default argument or a module-level dict/list cache
accumulates *per-process* state: results then depend on how tasks were
packed onto workers, which is exactly what the ``--workers``/``--shard``
bit-parity guarantees rule out.  Intentional registries (write-once at
import time) carry an explicit ``# repro: noqa[RPL006]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.rules.common import LintRule, diagnostic

CODE = "RPL006"

#: Path fragment this rule applies to.
SCOPED_TO = ("repro/routing/",)

#: Names exempt at module level: sealed-by-convention interpreter
#: metadata, not caches.
_EXEMPT_NAMES = frozenset({"__all__"})

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
})


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _check_defaults(
    ctx: FileContext, fn: ast.AST
) -> Iterator[Diagnostic]:
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
    defaults = [*fn.args.defaults,
                *[d for d in fn.args.kw_defaults if d is not None]]
    for default in defaults:
        if _is_mutable_value(default):
            yield diagnostic(
                ctx, default, CODE,
                "mutable default argument is shared across calls (and "
                "accumulates per worker process); default to None and "
                "build inside the function",
            )


def check(ctx: FileContext) -> Iterator[Diagnostic]:
    if not any(fragment in ctx.module_path for fragment in SCOPED_TO):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield from _check_defaults(ctx, node)
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names or all(name in _EXEMPT_NAMES for name in names):
            continue
        if _is_mutable_value(value):
            yield diagnostic(
                ctx, stmt, CODE,
                f"module-level mutable state ({', '.join(names)}) "
                "accumulates per worker process and breaks run-shape "
                "invariance; make it immutable, scope it to a call, or "
                "noqa a deliberate write-once registry",
            )


RULE = LintRule(
    code=CODE,
    name="no-mutable-shared-state",
    summary=(
        "no mutable default arguments or module-level mutable state in "
        "repro/routing/ (poisonous under the process pool)"
    ),
    check=check,
)

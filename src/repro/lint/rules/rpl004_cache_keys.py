"""RPL004: cache-key completeness for ``*Spec`` dataclasses.

The result cache keys work by each spec's ``config_dict()`` /
``to_string()`` emission.  Those emissions are complete today — some by
construction (``dataclasses.asdict``), some via hand-maintained
enumerations (``EstimatorSpec.to_string``, ``ScenarioSpec``'s
param-name table).  The hand-maintained kind is where stale-cache
incidents are born: add a dataclass field, forget the table, and two
genuinely different workloads share a cache entry or a spec string
stops round-tripping.

The check is a mention audit: every declared field of a dataclass whose
name ends in ``Spec`` (and that has at least one emission method) must
be *mentioned by name* — as a ``self.<field>`` access or a whole-word
string literal — somewhere in the class body or the module-level
constants feeding it.  Adding a field without threading it through the
emission machinery therefore fails lint instead of corrupting caches.

Subclasses of :class:`repro.specs.SpecBase` are always cache-key
classes — their inherited ``config_dict``/``to_string`` feed the result
cache by contract — so they are audited even when they define no
emission method of their own (inheriting every emission must not
silence the audit).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.rules.common import LintRule, diagnostic

CODE = "RPL004"

#: Methods whose bodies constitute a spec's cache/serialization identity.
EMISSION_METHODS = ("config_dict", "to_string", "fingerprint", "cache_key")

_CLASS_NAME = re.compile(r".+Spec\Z")

#: Base-class names that mark a class as a cache-key class regardless
#: of which emission methods it defines itself.
SPEC_BASES = ("SpecBase",)


def _inherits_spec_base(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name in SPEC_BASES:
            return True
    return False


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


def _declared_fields(node: ast.ClassDef) -> List[ast.AnnAssign]:
    fields: List[ast.AnnAssign] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if stmt.target.id.startswith("_"):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        fields.append(stmt)
    return fields


def _mentions(nodes: List[ast.AST]) -> "Tuple[Set[str], str]":
    """(self-attribute names, concatenated string literals) in *nodes*."""
    attrs: Set[str] = set()
    strings: List[str] = []
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                attrs.add(node.attr)
            elif isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                strings.append(node.value)
    return attrs, "\n".join(strings)


def _word_in(name: str, text: str) -> bool:
    return re.search(rf"(?<![A-Za-z0-9_]){re.escape(name)}(?![A-Za-z0-9_])",
                     text) is not None


def check(ctx: FileContext) -> Iterator[Diagnostic]:
    module_constants: List[ast.AST] = [
        stmt for stmt in ctx.tree.body
        if isinstance(stmt, (ast.Assign, ast.AnnAssign))
    ]
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _CLASS_NAME.fullmatch(node.name):
            continue
        if not _is_dataclass_decorated(node):
            continue
        method_names = {
            stmt.name for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not method_names.intersection(EMISSION_METHODS) \
                and not _inherits_spec_base(node):
            continue  # not a cache-key class; nothing to audit
        attrs, strings = _mentions([node, *module_constants])
        for field in _declared_fields(node):
            assert isinstance(field.target, ast.Name)
            name = field.target.id
            if name in attrs or _word_in(name, strings):
                continue
            yield diagnostic(
                ctx, field, CODE,
                f"field {name!r} of {node.name} appears in no "
                f"emission path ({'/'.join(EMISSION_METHODS[:2])} or the "
                "module's param tables); an unkeyed spec knob means "
                "stale cache hits — thread it through or noqa it",
            )


RULE = LintRule(
    code=CODE,
    name="cache-key-completeness",
    summary=(
        "every field of a *Spec dataclass must be reflected in its "
        "config_dict()/to_string() emission machinery"
    ),
    check=check,
)

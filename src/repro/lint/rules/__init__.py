"""Rule registry: the stable-code rule set the engine runs."""

from __future__ import annotations

from typing import Tuple

from repro.lint.rules.common import LintRule
from repro.lint.rules import (
    rpl001_nondeterminism as _rpl001,
    rpl002_unordered_iteration as _rpl002,
    rpl003_environ as _rpl003,
    rpl004_cache_keys as _rpl004,
    rpl005_registry as _rpl005,
    rpl006_mutable_state as _rpl006,
)

#: Every shipped rule, in code order.
ALL_RULES: Tuple[LintRule, ...] = (
    _rpl001.RULE,
    _rpl002.RULE,
    _rpl003.RULE,
    _rpl004.RULE,
    _rpl005.RULE,
    _rpl006.RULE,
)


def all_rules() -> Tuple[LintRule, ...]:
    """The shipped rule set (one entry per RPL code)."""
    return ALL_RULES


def known_codes() -> Tuple[str, ...]:
    """Every valid rule code, in order."""
    return tuple(rule.code for rule in ALL_RULES)


__all__ = ["ALL_RULES", "LintRule", "all_rules", "known_codes"]

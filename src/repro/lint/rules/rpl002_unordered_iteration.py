"""RPL002: iteration over unordered sets in order-sensitive layers.

Set iteration order is arbitrary (it follows hash layout, which varies
with insertion history and, for str keys under hash randomization,
across processes).  In ``repro/routing/`` and ``repro/experiments/``
that order can leak into float accumulation order, path tie-breaks and
plan layout — exactly the silent divergence the worker/shard parity
guarantees forbid.  Iterate ``sorted(the_set)`` or an ordered container
instead; order-insensitive consumers (``len``, ``sum`` of exact ints,
membership tests) are naturally not flagged because only ``for`` loops,
list/dict comprehensions and ``list()``/``tuple()`` materialisations
count as iteration here.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.rules.common import LintRule, diagnostic, iter_scope, iter_scopes

CODE = "RPL002"

#: Path fragments this rule applies to.
SCOPED_TO = ("repro/routing/", "repro/experiments/")

#: Set methods returning sets — propagate set-origin through chaining.
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """True when *node* evaluates to a set of detectable origin."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_set_expr(func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _set_names_in(scope: ast.AST) -> Set[str]:
    """Local names that only ever hold set-origin values in *scope*.

    Two passes give one level of name-through-name propagation
    (``a = set(...); b = a | other``); a name ever assigned a non-set
    value is dropped so false positives stay rare.
    """
    names: Set[str] = set()
    for _ in range(2):
        tainted: Set[str] = set()
        for node in iter_scope(scope):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _is_set_expr(value, names):
                    names.add(target.id)
                else:
                    tainted.add(target.id)
        names -= tainted
    return names


def _iteration_sites(scope: ast.AST) -> Iterator[ast.AST]:
    """Expressions iterated in order-sensitive positions within *scope*."""
    for node in iter_scope(scope):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            # Set comprehensions and bare generators are skipped: a
            # set-to-set rebuild loses no order, and generators feeding
            # sorted()/sum() are legitimate.  Lists and dicts freeze
            # the arrival order.
            for generator in node.generators:
                yield generator.iter
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("list", "tuple") \
                    and len(node.args) == 1 \
                    and not isinstance(node.args[0], ast.Starred):
                yield node.args[0]


def check(ctx: FileContext) -> Iterator[Diagnostic]:
    if not any(fragment in ctx.module_path for fragment in SCOPED_TO):
        return
    for scope in iter_scopes(ctx.tree):
        set_names = _set_names_in(scope)
        for iterable in _iteration_sites(scope):
            if _is_set_expr(iterable, set_names):
                yield diagnostic(
                    ctx, iterable, CODE,
                    "iteration over an unordered set; wrap it in "
                    "sorted(...) (or keep an ordered container) so "
                    "order cannot leak into floats or plans",
                )


RULE = LintRule(
    code=CODE,
    name="no-unordered-iteration",
    summary=(
        "no iteration over sets in repro/routing/ and repro/experiments/"
        " — set order can leak into float sums, tie-breaks and plans"
    ),
    check=check,
)

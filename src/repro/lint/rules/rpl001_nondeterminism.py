"""RPL001: nondeterminism primitives outside ``repro/utils/rng.py``.

Every guarantee in the repo (worker/shard bit-parity, the content-
addressed cache) assumes all randomness flows through the seeded
``numpy`` generators that :mod:`repro.utils.rng` hands out.  A single
``random.random()``, ``np.random.seed`` or wall-clock read introduces
state the cache key cannot see, so results stop being a pure function
of their spec.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.rules.common import (
    LintRule,
    diagnostic,
    import_aliases,
    resolve_dotted,
)

CODE = "RPL001"

#: The one module allowed to touch RNG construction primitives.
ALLOWED_FILES = ("repro/utils/rng.py",)

#: The one module allowed to read clocks (the sanctioned ``perf_timer``
#: accessor).  Everything else must import it — latency measurement is
#: legitimate, but only through a path that is greppable in one place.
CLOCK_ALLOWED_FILES = ("repro/utils/timing.py",)

#: ``from time import <name>`` targets that count as clock reads (or,
#: for ``sleep``, wall-clock waits — simulated time never sleeps).
_TIME_IMPORT_NAMES = (
    "time", "time_ns",
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
    "sleep",
)

#: ``numpy.random`` attributes that read or mutate the legacy global
#: state (anything drawing from the process-wide default stream).
_NUMPY_GLOBAL_STATE = frozenset({
    "seed", "get_state", "set_state", "random", "rand", "randn",
    "randint", "random_integers", "random_sample", "ranf", "sample",
    "bytes", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "binomial", "poisson", "exponential", "beta",
    "gamma", "RandomState",
})

#: Wall-clock reads whose values leak into anything they touch.
_FORBIDDEN_DOTTED = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


def _clock_message(dotted: str) -> str:
    if dotted == "time.sleep":
        return (
            "'time.sleep' stalls on the wall clock; the event loops run "
            "in simulated time — schedule delays deterministically "
            "(see repro.utils.retry.backoff_delays)"
        )
    return (
        f"wall-clock read '{dotted}' is nondeterministic; results must "
        "be a pure function of their spec (for latency measurement use "
        "repro.utils.timing.perf_timer)"
    )


def _is_unseeded_default_rng(node: ast.Call) -> bool:
    """True for ``default_rng()`` / ``default_rng(None)`` calls."""
    seed_args = [a for a in node.args if not isinstance(a, ast.Starred)]
    if node.args and isinstance(node.args[0], ast.Starred):
        return False  # can't see through *args; give it the benefit
    for keyword in node.keywords:
        if keyword.arg == "seed":
            seed_args.append(keyword.value)
        elif keyword.arg is None:
            return False  # **kwargs, same
    if not seed_args:
        return True
    first = seed_args[0]
    return isinstance(first, ast.Constant) and first.value is None


def check(ctx: FileContext) -> Iterator[Diagnostic]:
    if ctx.module_path.endswith(ALLOWED_FILES):
        return
    # The timing accessor may read clocks but nothing else in this rule.
    clock_ok = ctx.module_path.endswith(CLOCK_ALLOWED_FILES)
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    yield diagnostic(
                        ctx, node, CODE,
                        "the stdlib 'random' module is forbidden; draw "
                        "from a seeded generator via repro.utils.rng",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            root = node.module.split(".")[0]
            if root == "random":
                yield diagnostic(
                    ctx, node, CODE,
                    "the stdlib 'random' module is forbidden; draw "
                    "from a seeded generator via repro.utils.rng",
                )
            elif node.module == "time" and not clock_ok:
                for alias in node.names:
                    if alias.name in _TIME_IMPORT_NAMES:
                        yield diagnostic(
                            ctx, node, CODE,
                            _clock_message(f"time.{alias.name}"),
                        )
        elif isinstance(node, ast.Call):
            resolved = resolve_dotted(node.func, aliases)
            if resolved == "numpy.random.default_rng" \
                    and _is_unseeded_default_rng(node):
                yield diagnostic(
                    ctx, node, CODE,
                    "unseeded default_rng() draws fresh OS entropy; pass "
                    "a seed or use repro.utils.rng.ensure_rng/stream_rng",
                )
        elif isinstance(node, ast.Attribute):
            resolved = resolve_dotted(node, aliases)
            if resolved is None:
                continue
            if resolved in _FORBIDDEN_DOTTED and not clock_ok:
                yield diagnostic(
                    ctx, node, CODE, _clock_message(resolved)
                )
            elif resolved.startswith("numpy.random.") \
                    and resolved.rsplit(".", 1)[1] in _NUMPY_GLOBAL_STATE:
                yield diagnostic(
                    ctx, node, CODE,
                    f"'{resolved}' uses numpy's process-global RNG "
                    "state; use a generator from repro.utils.rng",
                )


RULE = LintRule(
    code=CODE,
    name="no-nondeterminism-primitives",
    summary=(
        "random / np.random global state / wall-clock reads / unseeded "
        "default_rng are only allowed inside repro/utils/rng.py "
        "(clock reads: repro/utils/timing.py)"
    ),
    check=check,
)

"""Shared rule machinery: the rule record and AST name resolution."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext


@dataclass(frozen=True)
class LintRule:
    """One lint rule: a stable code plus a per-file check function."""

    code: str
    name: str
    summary: str
    check: Callable[[FileContext], Iterator[Diagnostic]]


def diagnostic(ctx: FileContext, node: ast.AST, code: str, message: str
               ) -> Diagnostic:
    """A finding anchored at *node*'s position (1-based column)."""
    return Diagnostic(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        column=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the absolute dotted origins they import.

    ``import numpy as np`` maps ``np -> numpy``; ``import numpy.random``
    maps ``numpy -> numpy`` (attribute resolution walks the rest);
    ``from numpy.random import default_rng as rng_fn`` maps
    ``rng_fn -> numpy.random.default_rng``.  Relative imports are
    skipped — the rules only care about stdlib/numpy origins.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The absolute dotted name *node* refers to, or ``None``.

    Resolves ``Name`` and ``Attribute`` chains whose base is an imported
    name; anything rooted in a local variable resolves to ``None``.
    """
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def decorator_key(node: ast.expr) -> str:
    """The final name segment of a decorator expression.

    ``@register_router("x")``, ``@registry.register_router(...)`` and a
    bare ``@register_router`` all yield ``"register_router"``.
    """
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


def iter_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Every descendant of *node* that shares its variable scope.

    Descends through compound statements but not into nested function,
    class or lambda bodies — each of those is its own scope and is
    visited separately by scope-aware rules.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            stack.extend(ast.iter_child_nodes(child))


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (nested) function/class scope within it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            yield node

"""RPL003: ``os.environ`` reads outside the sanctioned accessors.

Environment variables are invisible to cache keys and to anyone reading
a spec string, so every read is a potential source of "same spec,
different result".  All reads go through the accessors in
``repro/experiments/config.py`` (``env_raw``/``env_text`` plus the
named helpers), which keeps the full set of recognised variables
greppable in one file.  ``repro/utils/rng.py`` stays allowlisted as the
RNG-discipline module the other allowlist entry builds on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.rules.common import (
    LintRule,
    diagnostic,
    import_aliases,
    resolve_dotted,
)

CODE = "RPL003"

#: Files allowed to touch the environment directly.
ALLOWED_FILES = (
    "repro/experiments/config.py",
    "repro/utils/rng.py",
)

_FORBIDDEN_DOTTED = frozenset({"os.environ", "os.getenv", "os.putenv"})


def check(ctx: FileContext) -> Iterator[Diagnostic]:
    if ctx.module_path.endswith(ALLOWED_FILES):
        return
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            if node.level or node.module != "os":
                continue
            for alias in node.names:
                if alias.name in ("environ", "getenv", "putenv"):
                    yield diagnostic(
                        ctx, node, CODE,
                        f"importing os.{alias.name} outside the "
                        "sanctioned accessor module; read the "
                        "environment through repro.experiments.config",
                    )
        elif isinstance(node, ast.Attribute):
            resolved = resolve_dotted(node, aliases)
            if resolved in _FORBIDDEN_DOTTED:
                yield diagnostic(
                    ctx, node, CODE,
                    f"direct '{resolved}' access; read the environment "
                    "through repro.experiments.config so every "
                    "recognised variable has one greppable read path",
                )


RULE = LintRule(
    code=CODE,
    name="no-scattered-environ-reads",
    summary=(
        "os.environ/os.getenv only inside repro/experiments/config.py "
        "(and repro/utils/rng.py)"
    ),
    check=check,
)

"""RPL005: registry targets must structurally satisfy their protocols.

``@register_router`` and ``@register_topology`` are the extension
points every axis of the experiment grid goes through.  A registration
that does not satisfy the protocol (a router without ``route``/``name``,
a topology builder that cannot accept ``(config, rng)``) only explodes
when that key is first exercised — typically deep inside a sweep.  This
rule front-loads the structural checks to lint time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext
from repro.lint.rules.common import LintRule, decorator_key, diagnostic

CODE = "RPL005"

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Parameters a router's ``route`` must accept after ``self``.
_ROUTE_REQUIRED = ("network", "demands")
_ROUTE_OPTIONAL = ("link_model", "swap_model")


def _has_decorator(node: ast.ClassDef, key: str) -> bool:
    return any(decorator_key(dec) == key for dec in node.decorator_list)


def _find_method(node: ast.ClassDef, name: str) -> Optional[_FunctionNode]:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and stmt.name == name:
            return stmt
    return None


def _defines_name_attribute(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == "name":
            return True
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "name":
                    return True
    return False


def _check_route_signature(
    ctx: FileContext, cls: ast.ClassDef, route: _FunctionNode
) -> Iterator[Diagnostic]:
    args = route.args
    positional = [a.arg for a in (*args.posonlyargs, *args.args)]
    if positional[:1] != ["self"]:
        yield diagnostic(
            ctx, route, CODE,
            f"{cls.name}.route must be an instance method "
            "(self, network, demands, ...)",
        )
        return
    names = set(positional[1:]) | {a.arg for a in args.kwonlyargs}
    if args.vararg is not None and args.kwarg is not None:
        return  # (*args, **kwargs) forwards anything; accept it
    missing = [p for p in _ROUTE_REQUIRED if p not in names]
    if missing and args.vararg is None:
        yield diagnostic(
            ctx, route, CODE,
            f"{cls.name}.route is missing required parameter(s) "
            f"{', '.join(repr(m) for m in missing)}; the Router "
            "protocol is route(self, network, demands, link_model=None, "
            "swap_model=None)",
        )
    if args.kwarg is None:
        missing_kw = [p for p in _ROUTE_OPTIONAL if p not in names]
        if missing_kw:
            yield diagnostic(
                ctx, route, CODE,
                f"{cls.name}.route does not accept "
                f"{', '.join(repr(m) for m in missing_kw)}; the "
                "experiments layer passes them by keyword",
            )


def _check_router_class(
    ctx: FileContext, cls: ast.ClassDef
) -> Iterator[Diagnostic]:
    if not _has_decorator(cls, "dataclass"):
        yield diagnostic(
            ctx, cls, CODE,
            f"@register_router target {cls.name} must be a dataclass "
            "(the registry derives config_dict() from its fields)",
        )
    if cls.bases:
        # Inherited members can satisfy the protocol; only signatures
        # defined here are checkable statically.
        route = _find_method(cls, "route")
        if route is not None:
            yield from _check_route_signature(ctx, cls, route)
        return
    if not _defines_name_attribute(cls):
        yield diagnostic(
            ctx, cls, CODE,
            f"@register_router target {cls.name} defines no 'name' "
            "attribute; reports and figures label series by it",
        )
    route = _find_method(cls, "route")
    if route is None:
        yield diagnostic(
            ctx, cls, CODE,
            f"@register_router target {cls.name} defines no route() "
            "method (Router protocol: route(self, network, demands, "
            "link_model=None, swap_model=None))",
        )
    else:
        yield from _check_route_signature(ctx, cls, route)


def _check_topology_builder(
    ctx: FileContext, fn: _FunctionNode
) -> Iterator[Diagnostic]:
    args = fn.args
    positional = [*args.posonlyargs, *args.args]
    required = len(positional) - len(args.defaults)
    if args.vararg is not None:
        return  # *args accepts (config, rng)
    if required > 2 or len(positional) < 2:
        yield diagnostic(
            ctx, fn, CODE,
            f"@register_topology target {fn.name} must accept exactly "
            "the builder protocol's two positional arguments "
            "(config, rng)",
        )


def check(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            if _has_decorator(node, "register_router"):
                yield from _check_router_class(ctx, node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(decorator_key(dec) == "register_topology"
                   for dec in node.decorator_list):
                yield from _check_topology_builder(ctx, node)


RULE = LintRule(
    code=CODE,
    name="registry-protocol-conventions",
    summary=(
        "@register_router/@register_topology targets must structurally "
        "satisfy the Router/builder protocols"
    ),
    check=check,
)

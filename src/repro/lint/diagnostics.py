"""Diagnostic records and ``# repro: noqa[...]`` suppression parsing."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List

#: Sentinel suppression set meaning "every code on this line".
ALL_CODES: FrozenSet[str] = frozenset({"*"})

_NOQA_PATTERN = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[^\]]*)\])?")
_CODE_PATTERN = re.compile(r"RPL\d{3}\Z")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: file position plus rule code and message.

    Field order doubles as the report sort order (path, line, column,
    code), which is also the order ``render()`` prints.
    """

    path: str
    line: int
    column: int
    code: str
    message: str

    def render(self) -> str:
        """The ``path:line:col: CODE message`` text form."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        """The JSON-report entry for this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers of *source* to their suppressed codes.

    The grammar is ``# repro: noqa[RPL001]`` (one code),
    ``# repro: noqa[RPL001,RPL006]`` (several), or a bare
    ``# repro: noqa`` which suppresses every code on that line
    (represented by :data:`ALL_CODES`).  Tokens that are not well-formed
    rule codes are ignored, so ``# repro: noqa[bogus]`` suppresses
    nothing rather than silently suppressing everything.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_PATTERN.search(line)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            suppressions[lineno] = ALL_CODES
            continue
        codes = frozenset(
            token.strip().upper()
            for token in raw.split(",")
            if _CODE_PATTERN.fullmatch(token.strip().upper())
        )
        if codes:
            suppressions[lineno] = codes
    return suppressions


def is_suppressed(
    diagnostic: Diagnostic, suppressions: Dict[int, FrozenSet[str]]
) -> bool:
    """True when *diagnostic*'s line carries a matching noqa comment."""
    codes = suppressions.get(diagnostic.line)
    if codes is None:
        return False
    return "*" in codes or diagnostic.code in codes


def filter_suppressed(
    diagnostics: Iterable[Diagnostic],
    suppressions: Dict[int, FrozenSet[str]],
) -> List[Diagnostic]:
    """*diagnostics* minus the ones a noqa comment suppresses."""
    return [d for d in diagnostics if not is_suppressed(d, suppressions)]

"""repro.lint: AST-based determinism & cache-integrity linter.

The reproduction's guarantees — bit-identical ``--workers 1/4`` and
``--shard`` merges, compiled/reference core parity, content-addressed
cache correctness — are enforced at runtime by expensive parity tests.
This package enforces the *source-level discipline* those guarantees
rest on, cheaply and on every push:

========  ==============================================================
RPL001    no nondeterminism primitives (``random``, ``np.random.*``
          global state, ``time.time``, ``datetime.now``, unseeded
          ``default_rng``) outside ``repro/utils/rng.py``
RPL002    no iteration over unordered sets in ``repro/routing/`` and
          ``repro/experiments/`` where order can leak into floats/plans
RPL003    no ``os.environ`` reads outside the sanctioned accessors
          (``repro/experiments/config.py``, ``repro/utils/rng.py``)
RPL004    cache-key completeness: every field of a ``*Spec`` dataclass
          must be reflected in its ``config_dict()``/``to_string()``
          emission (or the module's param maps feeding them)
RPL005    registry conventions: every ``@register_router`` /
          ``@register_topology`` target structurally satisfies its
          protocol (``route``/``name``; ``(config, rng)`` arity)
RPL006    no mutable default arguments or module-level mutable state in
          ``repro/routing/`` (poisonous under the process pool)
========  ==============================================================

Run it with ``python -m repro.lint [paths]`` (``--format=json`` for the
machine-readable form).  Suppress a finding on one line with
``# repro: noqa[RPL001]`` (multiple codes comma-separated; a bare
``# repro: noqa`` suppresses every code on the line).
"""

from repro.lint.diagnostics import Diagnostic, parse_suppressions
from repro.lint.engine import FileContext, LintReport, run_lint
from repro.lint.rules import ALL_RULES, LintRule, all_rules

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "FileContext",
    "LintReport",
    "LintRule",
    "all_rules",
    "parse_suppressions",
    "run_lint",
]

"""Aaronson-Gottesman stabilizer tableau simulator.

This is a from-scratch CHP-style Clifford simulator (Aaronson & Gottesman,
PRA 70, 052328).  The state of ``n`` qubits is tracked as a ``2n x 2n``
binary tableau plus a phase column: rows ``0..n-1`` are destabilizers, rows
``n..2n-1`` are stabilizers.  Supported operations are H, S, X, Y, Z, CNOT,
CZ and single-qubit measurements in the Z and X bases.

The simulator exists to *verify* the fusion semantics the routing layer
assumes (see :mod:`repro.quantum.fusion`); it is exact, so property tests
can assert, e.g., that a GHZ measurement on one qubit of each of three Bell
pairs leaves the three remote qubits in a GHZ state up to Pauli frame
corrections.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MeasurementError, QuantumStateError
from repro.utils.rng import RandomState, ensure_rng


class StabilizerTableau:
    """An ``n``-qubit stabilizer state, initialised to ``|0...0>``.

    Parameters
    ----------
    num_qubits:
        Number of qubits to track.
    rng:
        Generator (or seed) used to resolve random measurement outcomes.
    """

    def __init__(self, num_qubits: int, rng: Optional[RandomState] = None):
        if num_qubits < 1:
            raise QuantumStateError(f"num_qubits must be >= 1, got {num_qubits}")
        self._n = num_qubits
        self._rng = ensure_rng(rng)
        n = num_qubits
        # x[i, j] / z[i, j]: X / Z component of Pauli j in row i.
        self._x = np.zeros((2 * n, n), dtype=np.uint8)
        self._z = np.zeros((2 * n, n), dtype=np.uint8)
        self._r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self._x[i, i] = 1          # destabilizer X_i
            self._z[n + i, i] = 1      # stabilizer Z_i

    # ------------------------------------------------------------------
    # Introspection

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._n

    def copy(self) -> "StabilizerTableau":
        """Deep copy sharing the RNG (outcome streams stay independent)."""
        clone = StabilizerTableau.__new__(StabilizerTableau)
        clone._n = self._n
        clone._rng = self._rng
        clone._x = self._x.copy()
        clone._z = self._z.copy()
        clone._r = self._r.copy()
        return clone

    def stabilizer_rows(self) -> List[Tuple[np.ndarray, np.ndarray, int]]:
        """Return the stabilizer generators as ``(x_bits, z_bits, sign)``."""
        n = self._n
        return [
            (self._x[n + i].copy(), self._z[n + i].copy(), int(self._r[n + i]))
            for i in range(n)
        ]

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self._n:
            raise QuantumStateError(
                f"qubit index {qubit} out of range for {self._n}-qubit register"
            )

    # ------------------------------------------------------------------
    # Clifford gates

    def h(self, qubit: int) -> None:
        """Apply a Hadamard gate."""
        self._check_qubit(qubit)
        xa = self._x[:, qubit].copy()
        za = self._z[:, qubit].copy()
        self._r ^= xa & za
        self._x[:, qubit] = za
        self._z[:, qubit] = xa

    def s(self, qubit: int) -> None:
        """Apply a phase gate S = diag(1, i)."""
        self._check_qubit(qubit)
        xa = self._x[:, qubit]
        self._r ^= xa & self._z[:, qubit]
        self._z[:, qubit] ^= xa

    def x(self, qubit: int) -> None:
        """Apply a Pauli X gate."""
        self._check_qubit(qubit)
        self._r ^= self._z[:, qubit]

    def z(self, qubit: int) -> None:
        """Apply a Pauli Z gate."""
        self._check_qubit(qubit)
        self._r ^= self._x[:, qubit]

    def y(self, qubit: int) -> None:
        """Apply a Pauli Y gate (= iXZ)."""
        self._check_qubit(qubit)
        self._r ^= self._x[:, qubit] ^ self._z[:, qubit]

    def cnot(self, control: int, target: int) -> None:
        """Apply a CNOT with the given *control* and *target* qubits."""
        self._check_qubit(control)
        self._check_qubit(target)
        if control == target:
            raise QuantumStateError("CNOT control and target must differ")
        xc = self._x[:, control]
        zc = self._z[:, control]
        xt = self._x[:, target]
        zt = self._z[:, target]
        self._r ^= xc & zt & (xt ^ zc ^ 1)
        xt ^= xc
        zc ^= zt

    def cz(self, a: int, b: int) -> None:
        """Apply a controlled-Z between qubits *a* and *b*."""
        self.h(b)
        self.cnot(a, b)
        self.h(b)

    # ------------------------------------------------------------------
    # Measurement

    def measure_z(self, qubit: int, forced_outcome: Optional[int] = None) -> int:
        """Measure *qubit* in the computational (Z) basis.

        Returns the outcome bit (0 or 1).  ``forced_outcome`` pins the
        result of an otherwise-random measurement (useful for deterministic
        tests); forcing a deterministic measurement to the wrong value is an
        error.
        """
        self._check_qubit(qubit)
        n = self._n
        x = self._x
        # Random outcome iff some stabilizer anticommutes with Z_qubit.
        pivot = -1
        for p in range(n, 2 * n):
            if x[p, qubit]:
                pivot = p
                break
        if pivot >= 0:
            return self._measure_random(qubit, pivot, forced_outcome)
        return self._measure_deterministic(qubit, forced_outcome)

    def measure_x(self, qubit: int, forced_outcome: Optional[int] = None) -> int:
        """Measure *qubit* in the X basis (H, measure Z, H back)."""
        self.h(qubit)
        outcome = self.measure_z(qubit, forced_outcome)
        self.h(qubit)
        return outcome

    def _measure_random(
        self, qubit: int, pivot: int, forced_outcome: Optional[int]
    ) -> int:
        n = self._n
        for i in range(2 * n):
            if i != pivot and self._x[i, qubit]:
                self._rowsum(i, pivot)
        # Old stabilizer row becomes the matching destabilizer.
        self._x[pivot - n] = self._x[pivot]
        self._z[pivot - n] = self._z[pivot]
        self._r[pivot - n] = self._r[pivot]
        if forced_outcome is None:
            outcome = int(self._rng.integers(0, 2))
        else:
            outcome = int(forced_outcome) & 1
        self._x[pivot] = 0
        self._z[pivot] = 0
        self._z[pivot, qubit] = 1
        self._r[pivot] = outcome
        return outcome

    def _measure_deterministic(
        self, qubit: int, forced_outcome: Optional[int]
    ) -> int:
        n = self._n
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if self._x[i, qubit]:
                scratch_x, scratch_z, scratch_r = self._rowsum_into(
                    scratch_x, scratch_z, scratch_r, i + n
                )
        outcome = int(scratch_r)
        if forced_outcome is not None and (int(forced_outcome) & 1) != outcome:
            raise MeasurementError(
                f"measurement of qubit {qubit} is deterministic with outcome "
                f"{outcome}; cannot force {forced_outcome}"
            )
        return outcome

    # ------------------------------------------------------------------
    # Row arithmetic (phase-exact Pauli multiplication)

    @staticmethod
    def _g(x1: int, z1: int, x2: int, z2: int) -> int:
        """Aaronson-Gottesman phase function g for single-qubit Paulis."""
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:  # Y
            return z2 - x2
        if x1 == 1 and z1 == 0:  # X
            return z2 * (2 * x2 - 1)
        return x2 * (1 - 2 * z2)  # Z

    def _phase_exponent(self, h: int, i: int) -> int:
        """Sum of g over qubits for multiplying row i into row h (mod 4)."""
        x1 = self._x[i].astype(np.int8)
        z1 = self._z[i].astype(np.int8)
        x2 = self._x[h].astype(np.int8)
        z2 = self._z[h].astype(np.int8)
        # Vectorised g: case split on (x1, z1).
        g = np.zeros(self._n, dtype=np.int64)
        y_mask = (x1 == 1) & (z1 == 1)
        x_mask = (x1 == 1) & (z1 == 0)
        z_mask = (x1 == 0) & (z1 == 1)
        g[y_mask] = z2[y_mask] - x2[y_mask]
        g[x_mask] = z2[x_mask] * (2 * x2[x_mask] - 1)
        g[z_mask] = x2[z_mask] * (1 - 2 * z2[z_mask])
        return int(g.sum())

    def _rowsum(self, h: int, i: int) -> None:
        """Set row *h* to (row i) * (row h), tracking the global phase.

        Stabilizer-row combinations always yield even phase exponents;
        destabilizer rows may anticommute with the pivot during a random
        measurement, giving odd totals.  Destabilizer phases carry no
        physical meaning in the Aaronson-Gottesman scheme, so odd totals
        are mapped like their even neighbours instead of raising.
        """
        total = 2 * int(self._r[h]) + 2 * int(self._r[i]) + self._phase_exponent(h, i)
        self._r[h] = 1 if total % 4 in (2, 3) else 0
        self._x[h] ^= self._x[i]
        self._z[h] ^= self._z[i]

    def _rowsum_into(
        self, sx: np.ndarray, sz: np.ndarray, sr: int, i: int
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Rowsum into a scratch row (used for deterministic outcomes)."""
        x1 = self._x[i].astype(np.int8)
        z1 = self._z[i].astype(np.int8)
        x2 = sx.astype(np.int8)
        z2 = sz.astype(np.int8)
        g = np.zeros(self._n, dtype=np.int64)
        y_mask = (x1 == 1) & (z1 == 1)
        x_mask = (x1 == 1) & (z1 == 0)
        z_mask = (x1 == 0) & (z1 == 1)
        g[y_mask] = z2[y_mask] - x2[y_mask]
        g[x_mask] = z2[x_mask] * (2 * x2[x_mask] - 1)
        g[z_mask] = x2[z_mask] * (1 - 2 * z2[z_mask])
        total = 2 * sr + 2 * int(self._r[i]) + int(g.sum())
        if total % 4 == 0:
            new_r = 0
        elif total % 4 == 2:
            new_r = 1
        else:  # pragma: no cover
            raise QuantumStateError("rowsum produced an imaginary phase")
        return sx ^ self._x[i], sz ^ self._z[i], new_r

    # ------------------------------------------------------------------
    # Stabilizer-group queries

    def contains_pauli(
        self,
        x_bits: Sequence[int],
        z_bits: Sequence[int],
        up_to_sign: bool = True,
    ) -> bool:
        """Check whether the Pauli given by *x_bits*/*z_bits* stabilises
        the state (optionally ignoring its sign).

        Membership is decided by Gaussian elimination over GF(2) on the
        symplectic vectors of the stabilizer generators.
        """
        n = self._n
        target = np.concatenate(
            [np.asarray(x_bits, dtype=np.uint8), np.asarray(z_bits, dtype=np.uint8)]
        )
        if target.shape != (2 * n,):
            raise QuantumStateError(
                f"Pauli must have {n} X bits and {n} Z bits"
            )
        rows = np.concatenate([self._x[n:], self._z[n:]], axis=1).copy()
        combo = np.eye(n, dtype=np.uint8)
        vec = target.copy()
        used = np.zeros(n, dtype=np.uint8)
        pivot_row = 0
        for col in range(2 * n):
            pivot = None
            for r in range(pivot_row, n):
                if rows[r, col]:
                    pivot = r
                    break
            if pivot is None:
                continue
            rows[[pivot_row, pivot]] = rows[[pivot, pivot_row]]
            combo[[pivot_row, pivot]] = combo[[pivot, pivot_row]]
            for r in range(n):
                if r != pivot_row and rows[r, col]:
                    rows[r] ^= rows[pivot_row]
                    combo[r] ^= combo[pivot_row]
            if vec[col]:
                vec ^= rows[pivot_row]
                used ^= combo[pivot_row]
            pivot_row += 1
            if pivot_row == n:
                break
        if vec.any():
            return False
        if up_to_sign:
            return True
        return self._product_sign(used) == 0

    def _product_sign(self, used: np.ndarray) -> int:
        """Sign bit of the product of the stabilizer generators selected by
        *used* (1 = overall minus sign)."""
        n = self._n
        sx = np.zeros(n, dtype=np.uint8)
        sz = np.zeros(n, dtype=np.uint8)
        sr = 0
        for i in range(n):
            if used[i]:
                sx, sz, sr = self._rowsum_into(sx, sz, sr, n + i)
        return sr

    def is_ghz_up_to_pauli(self, qubits: Sequence[int]) -> bool:
        """True iff *qubits* form a GHZ state up to local Pauli corrections
        and are disentangled from every other qubit.

        Checks that the full-X operator on *qubits* and every adjacent Z-Z
        pair on *qubits* are stabilizers up to sign.  Since these Paulis act
        as the identity elsewhere and generate a full 2^k stabilizer group
        on the k qubits, membership implies the subsystem is exactly a GHZ
        state modulo a local Pauli frame.
        """
        qubits = list(qubits)
        if len(qubits) < 2:
            raise QuantumStateError("a GHZ group needs at least 2 qubits")
        for q in qubits:
            self._check_qubit(q)
        if len(set(qubits)) != len(qubits):
            raise QuantumStateError("GHZ qubit list contains duplicates")
        n = self._n
        x_all = np.zeros(n, dtype=np.uint8)
        z_all = np.zeros(n, dtype=np.uint8)
        for q in qubits:
            x_all[q] = 1
        if not self.contains_pauli(x_all, z_all):
            return False
        for a, b in zip(qubits, qubits[1:]):
            xz = np.zeros(n, dtype=np.uint8)
            zz = np.zeros(n, dtype=np.uint8)
            zz[a] = 1
            zz[b] = 1
            if not self.contains_pauli(xz, zz):
                return False
        return True

    def is_bell_pair_up_to_pauli(self, a: int, b: int) -> bool:
        """True iff qubits *a*, *b* form a Bell pair up to local Paulis."""
        return self.is_ghz_up_to_pauli([a, b])

    def is_product_z_eigenstate(self, qubit: int) -> bool:
        """True iff *qubit* is in |0> or |1>, disentangled from the rest."""
        self._check_qubit(qubit)
        n = self._n
        zbits = np.zeros(n, dtype=np.uint8)
        zbits[qubit] = 1
        return self.contains_pauli(np.zeros(n, dtype=np.uint8), zbits)

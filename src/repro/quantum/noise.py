"""Probabilistic success models for links and swapping.

The paper's physical model (Section III):

* A quantum link over fibre of Euclidean length ``L`` succeeds with
  probability ``p = exp(-alpha * L)`` where ``alpha`` depends on the fibre
  material (default ``1e-4`` per km, the paper's evaluation setting).
* A channel of width ``w`` (w parallel links for one state) delivers at
  least one Bell pair with probability ``1 - (1 - p)^w``.
* Every switch performs an n-fusion successfully with probability ``q``
  (default 0.9), independent of n.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import (
    check_non_negative_int,
    check_positive,
    check_probability,
)

#: The paper's default fibre attenuation coefficient (per km).
DEFAULT_ALPHA = 1e-4

#: The paper's default fusion success probability.
DEFAULT_SWAP_PROBABILITY = 0.9


def link_success_probability(length: float, alpha: float = DEFAULT_ALPHA) -> float:
    """Success probability ``e^{-alpha * L}`` of a single quantum link."""
    check_positive("alpha", alpha)
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    return math.exp(-alpha * length)


def channel_success_probability(p: float, width: int) -> float:
    """Probability ``1 - (1 - p)^w`` that a width-*w* channel delivers at
    least one successful link."""
    check_probability("p", p)
    check_non_negative_int("width", width)
    if width == 0:
        return 0.0
    # log1p keeps precision when p is tiny (the realistic regime).
    return -math.expm1(width * math.log1p(-p)) if p < 1.0 else 1.0


@dataclass(frozen=True)
class LinkModel:
    """Elementary-link success model.

    ``fixed_p`` overrides the length-based model with a uniform success
    probability (the paper does this for the Figure 8a sweep to remove
    topology randomness).
    """

    alpha: float = DEFAULT_ALPHA
    fixed_p: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        if self.fixed_p is not None:
            check_probability("fixed_p", self.fixed_p)

    def success_probability(self, length: float) -> float:
        """Single-link success probability for a link of length *length*."""
        if self.fixed_p is not None:
            return self.fixed_p
        return link_success_probability(length, self.alpha)

    def channel_probability(self, length: float, width: int) -> float:
        """Width-*w* channel success probability for a link of *length*."""
        return channel_success_probability(self.success_probability(length), width)


@dataclass(frozen=True)
class SwapModel:
    """Fusion (entanglement-swapping) success model.

    The paper assumes a single success probability ``q`` shared by all
    switches and independent of the fusion arity; ``per_qubit`` optionally
    models an arity-dependent success ``q^(n-1)`` instead (an extension we
    expose for ablations).
    """

    q: float = DEFAULT_SWAP_PROBABILITY
    per_qubit: bool = False

    def __post_init__(self) -> None:
        check_probability("q", self.q)

    def success_probability(self, arity: int) -> float:
        """Success probability of one fusion of the given *arity*."""
        check_non_negative_int("arity", arity)
        if arity <= 1:
            return 1.0 if arity == 0 else self.q
        if self.per_qubit:
            return self.q ** (arity - 1)
        return self.q

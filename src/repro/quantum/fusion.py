"""Entanglement generation and fusion as explicit Clifford circuits.

These routines operate on a :class:`~repro.quantum.stabilizer.StabilizerTableau`
and implement the quantum operations the paper's routing layer relies on:

* :func:`prepare_bell_pair` / :func:`prepare_ghz` — elementary-link and
  multipartite state generation.
* :func:`bell_state_measurement` — the classic 2-fusion (BSM) swap.
* :func:`ghz_measurement` — the n-fusion primitive: a joint measurement in
  the n-qubit GHZ basis, realised as the inverse GHZ-preparation circuit
  followed by computational-basis measurements.
* :func:`pauli_x_removal` — the 1-fusion: a single-qubit X measurement that
  removes one qubit from a GHZ group, shrinking an n-GHZ state to (n-1)-GHZ.

Every fusion returns the measurement record; up to the Pauli frame implied
by that record, the unmeasured qubits of the input states end up in a single
GHZ state.  The property-test suite verifies this against the exact
simulator for chains, stars and mixed GHZ inputs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import FusionError
from repro.quantum.stabilizer import StabilizerTableau


def prepare_bell_pair(tableau: StabilizerTableau, a: int, b: int) -> None:
    """Entangle fresh qubits *a*, *b* into (|00> + |11>)/sqrt(2).

    The qubits are assumed to be in |0>; this mirrors a heralded successful
    elementary-link generation over a quantum link.
    """
    tableau.h(a)
    tableau.cnot(a, b)


def prepare_ghz(tableau: StabilizerTableau, qubits: Sequence[int]) -> None:
    """Entangle fresh qubits into an n-GHZ state via an H + CNOT chain."""
    qubits = list(qubits)
    if len(qubits) < 2:
        raise FusionError("GHZ preparation needs at least 2 qubits")
    if len(set(qubits)) != len(qubits):
        raise FusionError("GHZ preparation qubits must be distinct")
    root = qubits[0]
    tableau.h(root)
    for other in qubits[1:]:
        tableau.cnot(root, other)


def ghz_measurement(
    tableau: StabilizerTableau, qubits: Sequence[int]
) -> List[int]:
    """Perform an n-qubit GHZ-basis measurement (the n-fusion primitive).

    The joint GHZ basis measurement is realised by un-computing a GHZ
    preparation — CNOTs from the first qubit onto the rest, a Hadamard on
    the first — then reading every qubit in the Z basis.  The returned
    outcome bits identify which of the ``2^n`` GHZ basis states was
    projected onto; they determine the Pauli frame correction that the
    classical control plane would broadcast.

    After this call the measured qubits are disentangled product states and
    the surviving partner qubits of the input states form one GHZ group (up
    to Paulis), which is exactly the paper's "fuse n successful
    entanglement links" operation.
    """
    qubits = list(qubits)
    if len(qubits) < 2:
        raise FusionError(
            f"GHZ measurement fuses >= 2 qubits, got {len(qubits)}; "
            "use pauli_x_removal for the 1-fusion"
        )
    if len(set(qubits)) != len(qubits):
        raise FusionError("GHZ measurement qubits must be distinct")
    root = qubits[0]
    for other in qubits[1:]:
        tableau.cnot(root, other)
    tableau.h(root)
    return [tableau.measure_z(q) for q in qubits]


def bell_state_measurement(tableau: StabilizerTableau, a: int, b: int) -> List[int]:
    """The classic swap: a Bell-state measurement, i.e. 2-fusion."""
    return ghz_measurement(tableau, [a, b])


def pauli_x_removal(tableau: StabilizerTableau, qubit: int) -> int:
    """The 1-fusion: measure *qubit* in the X basis, removing it from its
    GHZ group and leaving the remaining members in a smaller GHZ state (up
    to a Z correction when the outcome is 1)."""
    return tableau.measure_x(qubit)


def apply_fusion_corrections(
    tableau: StabilizerTableau,
    surviving_qubits: Sequence[int],
    outcomes: Sequence[int],
) -> None:
    """Apply the canonical Pauli frame correction after a fusion.

    For the circuit used in :func:`ghz_measurement` on qubits
    ``m_0..m_{n-1}`` where each ``m_i`` was half of a Bell pair with partner
    ``s_i``: outcome of ``m_0`` (the X-type outcome) fixes a Z correction on
    any single survivor; the outcome of ``m_i`` (i >= 1, Z-type outcomes)
    fixes an X correction on survivor ``s_i``.
    """
    outcomes = list(outcomes)
    survivors = list(surviving_qubits)
    if len(outcomes) != len(survivors):
        raise FusionError(
            "need one outcome per survivor: the fusion measures exactly one "
            "qubit of each fused state"
        )
    if outcomes and outcomes[0]:
        tableau.z(survivors[0])
    for survivor, outcome in zip(survivors[1:], outcomes[1:]):
        if outcome:
            tableau.x(survivor)

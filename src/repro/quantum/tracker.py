"""Scalable symbolic tracking of GHZ entanglement groups.

The exact stabilizer simulator verifies fusion semantics on small registers;
at network scale the Monte Carlo only needs to know *which* qubits form a
GHZ group at any moment.  :class:`EntanglementTracker` maintains that
partition with O(alpha) union/find-style bookkeeping and mirrors the three
fusion primitives (n-GHZ measurement, BSM, Pauli removal) plus the failure
behaviour: a failed fusion destroys the participating states, releasing
their qubits as unentangled.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.exceptions import FusionError, QuantumStateError
from repro.quantum.states import GHZGroup


class EntanglementTracker:
    """Tracks the partition of qubit ids into GHZ groups.

    Qubit identifiers are arbitrary hashable ints managed by the caller
    (the network simulation uses globally unique per-switch qubit ids).
    """

    def __init__(self) -> None:
        self._group_of: Dict[int, int] = {}
        self._members: Dict[int, Set[int]] = {}
        self._next_group_id = 0

    # ------------------------------------------------------------------
    # State creation / destruction

    def create_bell_pair(self, a: int, b: int) -> int:
        """Record a fresh Bell pair between free qubits *a* and *b*."""
        return self.create_ghz([a, b])

    def create_ghz(self, qubits: Iterable[int]) -> int:
        """Record a fresh GHZ group; returns its group id."""
        qubit_list = [int(q) for q in qubits]
        if len(set(qubit_list)) != len(qubit_list):
            raise QuantumStateError("GHZ qubits must be distinct")
        if len(qubit_list) < 2:
            raise QuantumStateError("a GHZ group needs >= 2 qubits")
        for q in qubit_list:
            if q in self._group_of:
                raise QuantumStateError(
                    f"qubit {q} is already entangled; measure or discard it first"
                )
        gid = self._next_group_id
        self._next_group_id += 1
        self._members[gid] = set(qubit_list)
        for q in qubit_list:
            self._group_of[q] = gid
        return gid

    def discard_group(self, group_id: int) -> None:
        """Destroy a group entirely (decoherence / failed fusion)."""
        members = self._members.pop(group_id, None)
        if members is None:
            raise QuantumStateError(f"unknown group id {group_id}")
        for q in members:
            del self._group_of[q]

    def discard_qubit_group(self, qubit: int) -> None:
        """Destroy the group that *qubit* belongs to."""
        self.discard_group(self.group_id_of(qubit))

    # ------------------------------------------------------------------
    # Queries

    def is_entangled(self, qubit: int) -> bool:
        """True iff *qubit* currently belongs to a GHZ group."""
        return qubit in self._group_of

    def group_id_of(self, qubit: int) -> int:
        """Group id of *qubit*; raises if the qubit is unentangled."""
        try:
            return self._group_of[qubit]
        except KeyError:
            raise QuantumStateError(f"qubit {qubit} is not entangled") from None

    def group_of(self, qubit: int) -> GHZGroup:
        """The :class:`GHZGroup` containing *qubit*."""
        return GHZGroup(self._members[self.group_id_of(qubit)])

    def groups(self) -> List[GHZGroup]:
        """All live groups (sorted by size then members, for determinism)."""
        groups = [GHZGroup(m) for m in self._members.values()]
        return sorted(groups, key=lambda g: (g.size, g.sorted_qubits()))

    def num_groups(self) -> int:
        """Number of live GHZ groups."""
        return len(self._members)

    def same_group(self, a: int, b: int) -> bool:
        """True iff qubits *a* and *b* are in the same GHZ group."""
        return (
            a in self._group_of
            and b in self._group_of
            and self._group_of[a] == self._group_of[b]
        )

    # ------------------------------------------------------------------
    # Fusion primitives

    def fuse(self, measured_qubits: Iterable[int], success: bool = True) -> Optional[int]:
        """Perform an n-fusion measuring *measured_qubits* (one per group).

        On success the unmeasured partners of every input group merge into
        a single GHZ group whose id is returned.  On failure every input
        group is destroyed (the paper's model: a failed GHZ measurement
        wastes the fused links) and ``None`` is returned.
        """
        measured = [int(q) for q in measured_qubits]
        if len(measured) < 1:
            raise FusionError("fusion needs at least one measured qubit")
        if len(set(measured)) != len(measured):
            raise FusionError("measured qubits must be distinct")
        group_ids: List[int] = []
        seen: Set[int] = set()
        for q in measured:
            gid = self.group_id_of(q)
            if gid in seen:
                raise FusionError(
                    "fusion must measure exactly one qubit per input group; "
                    f"group {gid} was named twice"
                )
            seen.add(gid)
            group_ids.append(gid)
        if len(measured) == 1:
            return self._pauli_removal(measured[0], success)
        survivors: Set[int] = set()
        for gid in group_ids:
            survivors |= self._members[gid]
        survivors -= set(measured)
        for gid in group_ids:
            self.discard_group(gid)
        if not success:
            return None
        if len(survivors) < 2:
            # Fusing n Bell pairs leaves n survivors (n >= 2); fewer than 2
            # survivors means the caller measured both halves of some pair.
            raise FusionError(
                "fusion left fewer than 2 surviving qubits; inputs must keep "
                "at least one unmeasured qubit each"
            )
        return self.create_ghz(survivors)

    def _pauli_removal(self, qubit: int, success: bool) -> Optional[int]:
        """1-fusion: drop *qubit* from its group (X-basis measurement)."""
        gid = self.group_id_of(qubit)
        members = self._members[gid]
        if not success:
            self.discard_group(gid)
            return None
        if len(members) - 1 < 2:
            # Removing one qubit from a Bell pair leaves a lone qubit: the
            # remaining qubit is a product state, so the group dissolves.
            self.discard_group(gid)
            return None
        members.remove(qubit)
        del self._group_of[qubit]
        return gid

"""Fidelity model (extension).

The paper optimises the entanglement *rate* and cites fidelity-constrained
routing ([37], [38]) as adjacent work.  This module adds the standard
Werner-state product approximation so routes can be filtered by end-to-end
fidelity:

* every elementary Bell pair is delivered with fidelity ``link_fidelity``
  (independent of channel width — parallel links are alternatives, not a
  distillation step);
* every fusion multiplies the fidelities of its input states and costs a
  further ``fusion_fidelity`` factor for the imperfect GHZ measurement.

A simple path of ``z`` hops therefore delivers fidelity
``link_fidelity^z * fusion_fidelity^(z-1)``; for a flow-like graph the
established route is not known in advance, so bounds over the constituent
paths are reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ConfigurationError
from repro.routing.flow_graph import FlowLikeGraph
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class FidelityModel:
    """Werner-state product fidelity model."""

    link_fidelity: float = 0.99
    fusion_fidelity: float = 0.995

    def __post_init__(self) -> None:
        check_probability("link_fidelity", self.link_fidelity)
        check_probability("fusion_fidelity", self.fusion_fidelity)

    def path_fidelity(self, hops: int) -> float:
        """End-to-end fidelity of a simple path with *hops* edges."""
        if hops < 1:
            raise ConfigurationError(f"hops must be >= 1, got {hops}")
        return (self.link_fidelity**hops) * (self.fusion_fidelity ** (hops - 1))

    def max_hops(self, min_fidelity: float) -> int:
        """Longest path (in hops) still meeting *min_fidelity*.

        Returns 0 when even a single hop falls short.
        """
        check_probability("min_fidelity", min_fidelity)
        if min_fidelity <= 0.0:
            return 10**9
        if self.link_fidelity >= 1.0 and self.fusion_fidelity >= 1.0:
            return 10**9
        hops = 0
        while self.path_fidelity(hops + 1) >= min_fidelity:
            hops += 1
            if hops > 10**6:  # pragma: no cover - degenerate parameters
                break
        return hops

    def flow_fidelity_bounds(self, flow: FlowLikeGraph) -> Tuple[float, float]:
        """(worst, best) fidelity over the flow's constituent paths.

        The worst case assumes the longest branch established the state;
        the best case the shortest.
        """
        if flow.num_paths == 0:
            raise ConfigurationError("flow has no paths")
        fidelities = [
            self.path_fidelity(len(path) - 1) for path in flow.paths
        ]
        return min(fidelities), max(fidelities)

    def meets_threshold(self, flow: FlowLikeGraph, min_fidelity: float) -> bool:
        """True iff even the flow's worst-case branch meets the bound."""
        worst, _ = self.flow_fidelity_bounds(flow)
        return worst >= min_fidelity

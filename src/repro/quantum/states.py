"""Symbolic GHZ-group records used by the network-scale simulation.

A :class:`GHZGroup` records *which* qubits are maximally entangled as a GHZ
state (|0...0> + |1...1>)/sqrt(2); the exact amplitudes are not tracked at
network scale (see :mod:`repro.quantum.stabilizer` for the exact level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

from repro.exceptions import QuantumStateError


@dataclass(frozen=True)
class GHZGroup:
    """An immutable record of a GHZ-entangled qubit group.

    Attributes
    ----------
    qubits:
        The qubit identifiers participating in the state.  A 2-qubit group
        is a Bell pair; the paper treats Bell states as 2-GHZ states.
    """

    qubits: FrozenSet[int]

    def __init__(self, qubits: Iterable[int]):
        qubit_set = frozenset(int(q) for q in qubits)
        if len(qubit_set) < 2:
            raise QuantumStateError(
                f"a GHZ group needs >= 2 distinct qubits, got {sorted(qubit_set)}"
            )
        object.__setattr__(self, "qubits", qubit_set)

    @property
    def size(self) -> int:
        """Number of qubits in the group (n of the n-GHZ state)."""
        return len(self.qubits)

    @property
    def is_bell_pair(self) -> bool:
        """True for 2-qubit groups."""
        return self.size == 2

    def contains(self, qubit: int) -> bool:
        """True iff *qubit* participates in this group."""
        return qubit in self.qubits

    def without(self, qubits_to_drop: Iterable[int]) -> "GHZGroup":
        """Group remaining after removing *qubits_to_drop* (Pauli removal).

        Raises if fewer than two qubits would remain.
        """
        drop = frozenset(qubits_to_drop)
        missing = drop - self.qubits
        if missing:
            raise QuantumStateError(
                f"qubits {sorted(missing)} are not members of this group"
            )
        return GHZGroup(self.qubits - drop)

    def sorted_qubits(self) -> Tuple[int, ...]:
        """Members in ascending order (stable identity for tests/repr)."""
        return tuple(sorted(self.qubits))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GHZGroup{self.sorted_qubits()}"


def merge_groups(groups: Iterable[GHZGroup], measured: Iterable[int]) -> GHZGroup:
    """Result of an n-fusion that measures *measured* (one qubit per input
    group) and merges the remainders into one GHZ group.

    This is the symbolic counterpart of a GHZ measurement: fusing groups of
    sizes ``s_1..s_k`` through ``k`` measured qubits yields a GHZ group of
    size ``sum(s_i) - k``.
    """
    groups = list(groups)
    measured_set = frozenset(int(q) for q in measured)
    if not groups:
        raise QuantumStateError("cannot merge an empty collection of groups")
    all_qubits: set = set()
    for group in groups:
        overlap = all_qubits & group.qubits
        if overlap:
            raise QuantumStateError(
                f"groups share qubits {sorted(overlap)}; fusion inputs must be "
                "disjoint states"
            )
        all_qubits |= group.qubits
    stray = measured_set - all_qubits
    if stray:
        raise QuantumStateError(
            f"measured qubits {sorted(stray)} do not belong to any input group"
        )
    for group in groups:
        hit = measured_set & group.qubits
        if len(hit) != 1:
            raise QuantumStateError(
                f"fusion must measure exactly one qubit per group; group "
                f"{group.sorted_qubits()} contributes {sorted(hit)}"
            )
    return GHZGroup(all_qubits - measured_set)


def ghz_state_vector_signature(size: int) -> Tuple[Tuple[int, ...], ...]:
    """The two computational basis strings of an n-GHZ state.

    Used by tests as a human-readable oracle: an ``n``-GHZ state is the
    equal superposition of ``(0,)*n`` and ``(1,)*n``.
    """
    if size < 2:
        raise QuantumStateError(f"GHZ size must be >= 2, got {size}")
    return tuple([0] * size), tuple([1] * size)

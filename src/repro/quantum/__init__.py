"""Quantum substrate: exact Clifford simulation and scalable bookkeeping.

Two levels of abstraction are provided:

* :class:`~repro.quantum.stabilizer.StabilizerTableau` — an exact
  Aaronson-Gottesman CHP-style Clifford simulator used to *verify* that the
  link-level operations the routing layer assumes (Bell-pair generation,
  BSM swapping, n-GHZ fusion, Pauli removal) behave as the paper claims.
* :class:`~repro.quantum.tracker.EntanglementTracker` — a scalable symbolic
  tracker of "which qubits form a GHZ group", used inside the network-scale
  Monte Carlo where a full tableau would be wasteful.

The probabilistic success models (link ``p = e^{-alpha * L}``, swap ``q``)
live in :mod:`repro.quantum.noise`.
"""

from repro.quantum.stabilizer import StabilizerTableau
from repro.quantum.states import GHZGroup, ghz_state_vector_signature
from repro.quantum.fusion import (
    bell_state_measurement,
    ghz_measurement,
    pauli_x_removal,
    prepare_bell_pair,
    prepare_ghz,
)
from repro.quantum.tracker import EntanglementTracker
from repro.quantum.distillation import (
    bbpssw_output_fidelity,
    bbpssw_success_probability,
    channel_rate_fidelity_tradeoff,
    pumping_schedule,
    rounds_to_reach,
)
from repro.quantum.fidelity import FidelityModel
from repro.quantum.noise import (
    LinkModel,
    SwapModel,
    channel_success_probability,
    link_success_probability,
)

__all__ = [
    "StabilizerTableau",
    "GHZGroup",
    "ghz_state_vector_signature",
    "prepare_bell_pair",
    "prepare_ghz",
    "bell_state_measurement",
    "ghz_measurement",
    "pauli_x_removal",
    "EntanglementTracker",
    "FidelityModel",
    "bbpssw_success_probability",
    "bbpssw_output_fidelity",
    "pumping_schedule",
    "rounds_to_reach",
    "channel_rate_fidelity_tradeoff",
    "LinkModel",
    "SwapModel",
    "link_success_probability",
    "channel_success_probability",
]

"""Entanglement distillation (BBPSSW) — extension.

The paper uses a channel's parallel links purely as *alternatives* (the
channel succeeds if any link does).  An operator willing to trade rate for
quality can instead *distill*: consume two Werner pairs of fidelity F to
produce, with probability

    p_succ(F) = F^2 + 2 F (1-F)/3 + 5 ((1-F)/3)^2 * ... (BBPSSW success)

one pair of higher fidelity

    F'(F) = (F^2 + ((1-F)/3)^2) / p_succ(F).

This module implements the BBPSSW recurrence for equal-fidelity inputs,
iterated pumping schedules, and the channel-level rate/fidelity trade-off:
given a width-w channel whose surviving links each carry fidelity F0, how
many distillation rounds can be afforded and what (rate, fidelity) pairs
are reachable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative_int, check_probability

#: BBPSSW has a fixed point near F = 1 and diverges below 0.5: inputs at
#: or below this fidelity cannot be improved.
MIN_DISTILLABLE_FIDELITY = 0.5


def bbpssw_success_probability(fidelity: float) -> float:
    """Success probability of one BBPSSW round on two equal Werner pairs."""
    check_probability("fidelity", fidelity)
    bad = (1.0 - fidelity) / 3.0
    return (
        fidelity**2
        + 2.0 * fidelity * bad
        + 5.0 * bad**2
    )


def bbpssw_output_fidelity(fidelity: float) -> float:
    """Output fidelity of one successful BBPSSW round."""
    check_probability("fidelity", fidelity)
    bad = (1.0 - fidelity) / 3.0
    success = bbpssw_success_probability(fidelity)
    if success <= 0.0:  # pragma: no cover - success > 0 for F in [0, 1]
        raise ConfigurationError("degenerate distillation input")
    return (fidelity**2 + bad**2) / success


def distillation_improves(fidelity: float) -> bool:
    """True iff one BBPSSW round raises the fidelity."""
    check_probability("fidelity", fidelity)
    if fidelity <= MIN_DISTILLABLE_FIDELITY or fidelity >= 1.0:
        return False
    return bbpssw_output_fidelity(fidelity) > fidelity


@dataclass(frozen=True)
class DistillationOutcome:
    """One reachable (pairs consumed, success probability, fidelity)."""

    rounds: int
    pairs_consumed: int
    success_probability: float
    fidelity: float


def pumping_schedule(
    initial_fidelity: float, rounds: int
) -> List[DistillationOutcome]:
    """Outcomes of 0..*rounds* nested BBPSSW rounds (entanglement pumping).

    Round k consumes ``2^k`` raw pairs; the reported success probability
    is the probability that *every* round in the binary tree succeeds —
    the conservative all-or-nothing accounting.
    """
    check_probability("initial_fidelity", initial_fidelity)
    check_non_negative_int("rounds", rounds)
    outcomes = [DistillationOutcome(0, 1, 1.0, initial_fidelity)]
    fidelity = initial_fidelity
    success = 1.0
    for k in range(1, rounds + 1):
        p_round = bbpssw_success_probability(fidelity)
        # A round-k tree needs 2^(k-1) simultaneous successes at level k,
        # on top of both subtrees succeeding.
        success = success**2 * p_round
        fidelity = bbpssw_output_fidelity(fidelity)
        outcomes.append(
            DistillationOutcome(k, 2**k, success, fidelity)
        )
    return outcomes


def rounds_to_reach(
    initial_fidelity: float, target_fidelity: float, max_rounds: int = 30
) -> int:
    """Minimum nested rounds needed to reach *target_fidelity*.

    Returns -1 when the target is unreachable (input at or below the 0.5
    threshold, or above the BBPSSW fixed point).
    """
    check_probability("initial_fidelity", initial_fidelity)
    check_probability("target_fidelity", target_fidelity)
    if initial_fidelity >= target_fidelity:
        return 0
    if initial_fidelity <= MIN_DISTILLABLE_FIDELITY:
        return -1
    fidelity = initial_fidelity
    for k in range(1, max_rounds + 1):
        next_fidelity = bbpssw_output_fidelity(fidelity)
        if next_fidelity <= fidelity:
            return -1  # hit the fixed point below the target
        fidelity = next_fidelity
        if fidelity >= target_fidelity:
            return k
    return -1


def channel_rate_fidelity_tradeoff(
    link_success: float,
    width: int,
    link_fidelity: float,
    max_rounds: int = 3,
) -> List[Tuple[int, float, float]]:
    """(rounds, delivery probability, fidelity) options for one channel.

    With *width* parallel link attempts each succeeding with probability
    ``link_success``, spending ``2^k`` successes on a k-round pumping tree
    delivers, per slot, with probability
    ``P(at least 2^k links succeed) * P(tree succeeds)`` and fidelity
    ``F_k``.  Rounds whose pair budget exceeds the width are omitted.
    """
    check_probability("link_success", link_success)
    check_probability("link_fidelity", link_fidelity)
    check_non_negative_int("width", width)
    options: List[Tuple[int, float, float]] = []
    schedule = pumping_schedule(link_fidelity, max_rounds)
    for outcome in schedule:
        needed = outcome.pairs_consumed
        if needed > width:
            break
        at_least = _binomial_tail(width, link_success, needed)
        options.append(
            (
                outcome.rounds,
                at_least * outcome.success_probability,
                outcome.fidelity,
            )
        )
    return options


def _binomial_tail(n: int, p: float, k: int) -> float:
    """P(Binomial(n, p) >= k)."""
    total = 0.0
    for i in range(k, n + 1):
        total += math.comb(n, i) * (p**i) * ((1 - p) ** (n - i))
    return min(1.0, total)

"""Online routing service: continuous arrival/departure serving.

The batch experiments route a fixed demand set once; this package
serves a *stream* — demands arrive (Poisson or trace-driven), admitted
flows hold qubits until they depart, departures release capacity, and
every arrival is re-planned against the residual network.  Links and
switches can fail and recover mid-run (:mod:`repro.service.faults`),
disrupting held flows that the loop repairs or drops per policy.  See
:mod:`repro.service.arrivals` (the arrival-process grammar),
:mod:`repro.service.loop` (the event loop and its two re-planning
modes) and :mod:`repro.service.runner` (multi-seed replication,
caching and the CLI report).
"""

from repro.service.arrivals import (
    ArrivalEvent,
    ArrivalSpec,
    ArrivalSpecError,
    HoldSpec,
    as_arrivals,
    parse_arrivals,
    poisson_events,
    read_trace,
    validate_events,
    write_trace,
)
from repro.service.faults import (
    BackoffSpec,
    FaultEvent,
    FaultSpec,
    FaultSpecError,
    RepairSpec,
    as_faults,
    as_repair,
    fault_events,
    parse_faults,
    parse_repair,
    read_fault_trace,
    write_fault_trace,
)
from repro.service.loop import (
    REPLAN_MODES,
    ServeMetrics,
    ServeRun,
    ServeSession,
    latency_summary,
    residual_view,
    run_serve,
)
from repro.service.runner import (
    ServeReport,
    run_serve_experiment,
    serve_key,
)

__all__ = [
    "ArrivalEvent",
    "ArrivalSpec",
    "ArrivalSpecError",
    "BackoffSpec",
    "FaultEvent",
    "FaultSpec",
    "FaultSpecError",
    "HoldSpec",
    "REPLAN_MODES",
    "RepairSpec",
    "ServeMetrics",
    "ServeReport",
    "ServeRun",
    "ServeSession",
    "as_arrivals",
    "as_faults",
    "as_repair",
    "fault_events",
    "latency_summary",
    "parse_arrivals",
    "parse_faults",
    "parse_repair",
    "poisson_events",
    "read_fault_trace",
    "read_trace",
    "residual_view",
    "run_serve",
    "run_serve_experiment",
    "serve_key",
    "validate_events",
    "write_fault_trace",
    "write_trace",
]

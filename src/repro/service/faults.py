"""Fault injection for the online serving loop.

A :class:`FaultSpec` describes how links and switches fail and recover
while the service runs, in the same parse/serialize/``config_dict``
grammar every other axis uses::

    faults:link_mtbf=300,link_mttr=30       (link up/down renewal)
    faults:switch_p=0.01,switch_mttr=50     (constant-hazard switch loss)
    faults:link_mtbf=200,switch_mtbf=800    (both families at once)
    trace:file=runs/outage.trace            (replay a recorded timeline)

Every element (edge or switch) runs an independent alternating renewal
process — up for ``Exp(mtbf)``, down for ``Exp(mttr)`` — drawn from its
own :func:`stream_rng` substream of the replication's sample seed.  The
timeline of element *i* is therefore a pure function of
``(sample_seed, i)``: bit-identical whatever the worker count,
unperturbed by how many arrivals were served, and prefix-stable in the
horizon (extending ``duration`` appends events without moving earlier
ones) — the same statelessness contract as
:class:`~repro.service.arrivals.ArrivalSpec`.

``switch_p`` is sugar for a constant per-time-unit failure hazard:
``switch_p=0.01`` means each switch fails at rate 0.01 (mean time to
failure 100), i.e. ``switch_mtbf=1/switch_p`` — phrased as a hazard
rather than a one-shot draw over the horizon precisely so the timeline
stays prefix-stable.

A :class:`RepairSpec` names the policy the serving loop applies to
flows a down event disrupted::

    drop                                    (release and count)
    reroute:retries=2,backoff=exp:base=1.0  (re-route, bounded retries)

The reroute backoff schedule comes from
:func:`repro.utils.retry.backoff_delays` — deterministic simulated-time
delays, no clocks, no sleeps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.specs import SpecBase, SpecError
from repro.utils.retry import BACKOFF_KINDS, backoff_delays
from repro.utils.rng import stream_rng

#: Substream of edge *i*'s fault timeline is ``FAULT_STREAM_BASE + i``;
#: switch *j* uses ``FAULT_STREAM_BASE + SWITCH_STREAM_OFFSET + j``.
#: Far above the arrival substreams (``EVENT_STREAM_BASE + k`` with
#: ``EVENT_STREAM_BASE = 0x100000``) for any realistic event count, so
#: the fault and arrival families sharing one sample seed never collide.
FAULT_STREAM_BASE = 0x40000000

#: Offset separating switch substreams from edge substreams.
SWITCH_STREAM_OFFSET = 0x20000000

#: Valid fault event kinds.
FAULT_KINDS = ("link_down", "link_up", "switch_down", "switch_up")

#: Fixed tie-break order of simultaneous fault events: repairs first
#: (an element recovering at the same instant another fails must not
#: mask the failure), links before switches within each class.  The
#: serving loop's event heap uses the same order.
KIND_ORDER = {"link_up": 0, "switch_up": 1, "link_down": 2, "switch_down": 3}

#: Fault trace file header identity.
FAULT_TRACE_FORMAT = "repro-fault-trace"
FAULT_TRACE_VERSION = 1


class FaultSpecError(SpecError):
    """A fault spec string, parameter or trace file is invalid."""


def _parse_float(name: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise FaultSpecError(
            f"fault parameter {name!r} must be a number, got {text!r}"
        ) from None


@dataclass(frozen=True)
class FaultEvent:
    """One element state change: when, what kind, which element.

    ``element`` indexes the network's sorted ``edge_keys()`` list for
    link events and the sorted ``switches()`` list for switch events —
    positional, like arrival user indices, so one timeline replays on
    every replication's independently sampled topology.
    """

    time: float
    kind: str
    element: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultSpecError(
                f"fault time must be >= 0, got {self.time!r}"
            )
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"fault kind must be one of {', '.join(FAULT_KINDS)}, "
                f"got {self.kind!r}"
            )
        if self.element < 0:
            raise FaultSpecError(
                f"fault element index must be >= 0, got {self.element!r}"
            )

    def sort_key(self) -> Tuple[float, int, int]:
        """Total order of a timeline: time, then the fixed kind order,
        then element index."""
        return (self.time, KIND_ORDER[self.kind], self.element)


@dataclass(frozen=True)
class FaultSpec(SpecBase):
    """One fault process: per-element renewal failures, or a trace.

    At least one of ``link_mtbf`` / ``switch_mtbf`` / ``switch_p`` must
    be set on a ``faults:`` spec (an all-``none`` fault process is a
    spelling mistake, not a null injector — omit ``--faults`` for
    that).  ``switch_mtbf`` and ``switch_p`` are two spellings of the
    same hazard and are mutually exclusive.
    """

    kind: str = "faults"
    link_mtbf: Optional[float] = None
    link_mttr: float = 30.0
    switch_mtbf: Optional[float] = None
    switch_p: Optional[float] = None
    switch_mttr: float = 30.0
    file: Optional[str] = None

    spec_what = "fault"
    spec_error = FaultSpecError

    def __post_init__(self) -> None:
        if self.kind not in ("faults", "trace"):
            raise FaultSpecError(
                f"fault kind must be 'faults' or 'trace', got {self.kind!r}"
            )
        if self.kind == "trace":
            if not self.file:
                raise FaultSpecError("trace faults need file=PATH")
            if "," in self.file:
                raise FaultSpecError(
                    f"trace file path {self.file!r} must not contain "
                    "','; rename the file"
                )
            if (
                self.link_mtbf is not None
                or self.switch_mtbf is not None
                or self.switch_p is not None
            ):
                raise FaultSpecError(
                    "trace faults replay the recorded timeline; "
                    "link_mtbf=/switch_mtbf=/switch_p= do not apply"
                )
            return
        if self.file is not None:
            raise FaultSpecError("parametric faults take no file= parameter")
        for name in ("link_mtbf", "link_mttr", "switch_mtbf", "switch_mttr"):
            value = getattr(self, name)
            if value is None:
                continue
            object.__setattr__(self, name, float(value))
            if not getattr(self, name) > 0:
                raise FaultSpecError(
                    f"fault parameter {name!r} must be > 0, got {value!r}"
                )
        if self.switch_p is not None:
            object.__setattr__(self, "switch_p", float(self.switch_p))
            if not 0 < self.switch_p <= 1:
                raise FaultSpecError(
                    f"switch_p must be in (0, 1], got {self.switch_p!r}"
                )
            if self.switch_mtbf is not None:
                raise FaultSpecError(
                    "switch_mtbf and switch_p are two spellings of the "
                    "same failure hazard; give one, not both"
                )
        if (
            self.link_mtbf is None
            and self.switch_mtbf is None
            and self.switch_p is None
        ):
            raise FaultSpecError(
                "a faults spec needs at least one failure process: "
                "link_mtbf=, switch_mtbf= or switch_p="
            )

    # ------------------------------------------------------------------
    # Parsing / serialization

    @classmethod
    def from_string(cls, text: str) -> "FaultSpec":
        """Parse ``faults:link_mtbf=...,switch_p=...`` or
        ``trace:file=PATH``."""
        kind, rest = cls._split_spec(text)
        kind = kind.lower()
        params: Dict[str, object] = {}
        if rest is not None:
            raw = cls._parse_params(
                rest,
                text=text,
                valid=(
                    "link_mtbf", "link_mttr", "switch_mtbf", "switch_p",
                    "switch_mttr", "file",
                ),
            )
            for name, value in raw.items():
                if name == "file":
                    params["file"] = value
                else:
                    params[name] = _parse_float(name, value)
        return cls(kind=kind, **params)

    def to_string(self) -> str:
        """Canonical form (non-default parameters only); round-trips
        via :meth:`from_string`."""
        if self.kind == "trace":
            return f"trace:file={self.file}"
        rendered = []
        if self.link_mtbf is not None:
            rendered.append(f"link_mtbf={self.link_mtbf!r}")
        if self.link_mttr != 30.0:
            rendered.append(f"link_mttr={self.link_mttr!r}")
        if self.switch_mtbf is not None:
            rendered.append(f"switch_mtbf={self.switch_mtbf!r}")
        if self.switch_p is not None:
            rendered.append(f"switch_p={self.switch_p!r}")
        if self.switch_mttr != 30.0:
            rendered.append(f"switch_mttr={self.switch_mttr!r}")
        return f"{self.kind}:{','.join(rendered)}"

    def config_dict(self) -> Dict:
        """Stable, JSON-ready identity for cache keys.

        Trace identity is the file *contents* (sha256), like arrival
        traces, so cached serve results can never outlive an edited
        timeline.
        """
        if self.kind == "trace":
            digest = hashlib.sha256(Path(self.file).read_bytes()).hexdigest()
            return {"kind": self.kind, "trace_sha256": digest}
        return {
            "kind": self.kind,
            "link_mtbf": self.link_mtbf,
            "link_mttr": self.link_mttr,
            "switch_mtbf": self.switch_mtbf,
            "switch_p": self.switch_p,
            "switch_mttr": self.switch_mttr,
        }

    # ------------------------------------------------------------------
    # Derived parameters

    def effective_switch_mtbf(self) -> Optional[float]:
        """The switch failure process's mean up time, whichever spelling
        configured it (``None`` when switches never fail)."""
        if self.switch_mtbf is not None:
            return self.switch_mtbf
        if self.switch_p is not None:
            return 1.0 / self.switch_p
        return None


def parse_faults(text: str) -> FaultSpec:
    """Parse a fault spec string (the CLI ``--faults`` type)."""
    return FaultSpec.from_string(text)


def as_faults(value: Union[str, FaultSpec]) -> FaultSpec:
    """Coerce a spec or spec string to a :class:`FaultSpec`."""
    if isinstance(value, FaultSpec):
        return value
    if isinstance(value, str):
        return parse_faults(value)
    raise FaultSpecError(
        f"faults must be a spec string or FaultSpec, got "
        f"{type(value).__name__}"
    )


# ----------------------------------------------------------------------
# Repair policy


@dataclass(frozen=True)
class BackoffSpec:
    """Delay schedule between repair attempts.

    ``exp`` doubles the delay per retry starting from ``base``;
    ``fixed`` always waits ``base``.  Single-parameter by construction
    so the enclosing repair grammar stays comma-separable (the same
    nesting trick as the arrival grammar's hold spec).
    """

    kind: str = "exp"
    base: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in BACKOFF_KINDS:
            raise FaultSpecError(
                f"backoff kind must be one of {', '.join(BACKOFF_KINDS)}, "
                f"got {self.kind!r}"
            )
        object.__setattr__(self, "base", float(self.base))
        if not self.base > 0:
            raise FaultSpecError(
                f"backoff base must be > 0, got {self.base!r}"
            )

    @classmethod
    def from_string(cls, text: str) -> "BackoffSpec":
        """Parse ``kind:base=VALUE`` (e.g. ``exp:base=1.0``)."""
        kind, sep, rest = text.strip().partition(":")
        if not sep or not kind:
            raise FaultSpecError(
                f"backoff spec {text!r} must look like kind:base=VALUE "
                "(e.g. exp:base=1.0)"
            )
        name, eq, value = rest.partition("=")
        if not eq or name.strip() != "base" or not value.strip():
            raise FaultSpecError(
                f"backoff spec {text!r} takes exactly one parameter, "
                "base=VALUE"
            )
        return cls(kind=kind, base=_parse_float("backoff base", value.strip()))

    def to_string(self) -> str:
        """Canonical ``kind:base=VALUE`` form; round-trips via
        :meth:`from_string`."""
        return f"{self.kind}:base={self.base!r}"


@dataclass(frozen=True)
class RepairSpec(SpecBase):
    """What the serving loop does with a disrupted flow.

    ``drop`` releases it and counts it; ``reroute`` re-plans it on the
    residual network immediately, then up to ``retries`` more times on
    the backoff schedule, degrading to a counted drop when the budget
    is exhausted (or a retry would land after the flow's departure).
    """

    kind: str = "reroute"
    retries: int = 2
    backoff: BackoffSpec = BackoffSpec()

    spec_what = "repair"
    spec_error = FaultSpecError

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "reroute"):
            raise FaultSpecError(
                f"repair kind must be 'drop' or 'reroute', got {self.kind!r}"
            )
        if isinstance(self.backoff, str):
            object.__setattr__(
                self, "backoff", BackoffSpec.from_string(self.backoff)
            )
        if not isinstance(self.backoff, BackoffSpec):
            raise FaultSpecError(
                f"backoff must be a BackoffSpec or spec string, got "
                f"{type(self.backoff).__name__}"
            )
        if isinstance(self.retries, bool) or not isinstance(self.retries, int):
            raise FaultSpecError(
                f"retries must be an int, got {self.retries!r}"
            )
        if self.retries < 0:
            raise FaultSpecError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.kind == "drop" and self.retries != 0:
            raise FaultSpecError(
                "drop never re-attempts; retries= does not apply"
            )
        # Materialise eagerly so an invalid schedule fails at parse
        # time, not mid-serve.
        backoff_delays(self.backoff.kind, self.backoff.base, self.retries)

    @classmethod
    def from_string(cls, text: str) -> "RepairSpec":
        """Parse ``drop`` or
        ``reroute[:retries=N,backoff=KIND:base=B]``."""
        kind, rest = cls._split_spec(text)
        kind = kind.lower()
        params: Dict[str, object] = {}
        if rest is not None:
            raw = cls._parse_params(
                rest, text=text, valid=("retries", "backoff")
            )
            for name, value in raw.items():
                if name == "retries":
                    try:
                        params["retries"] = int(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"repair retries must be an int, got {value!r}"
                        ) from None
                else:
                    params["backoff"] = BackoffSpec.from_string(value)
        if kind == "drop" and params:
            raise FaultSpecError(
                "drop never re-attempts; retries=/backoff= do not apply"
            )
        if kind == "drop":
            params["retries"] = 0
        return cls(kind=kind, **params)

    def to_string(self) -> str:
        """Canonical form (non-default parameters only); round-trips
        via :meth:`from_string`."""
        if self.kind == "drop":
            return "drop"
        rendered = []
        if self.retries != 2:
            rendered.append(f"retries={self.retries}")
        if self.backoff != BackoffSpec():
            rendered.append(f"backoff={self.backoff.to_string()}")
        if not rendered:
            return self.kind
        return f"{self.kind}:{','.join(rendered)}"

    def config_dict(self) -> Dict:
        """Stable, JSON-ready identity for cache keys."""
        if self.kind == "drop":
            return {"kind": self.kind}
        return {
            "kind": self.kind,
            "retries": self.retries,
            "backoff": {"kind": self.backoff.kind, "base": self.backoff.base},
        }

    def delays(self) -> Tuple[float, ...]:
        """The deterministic retry schedule (simulated-time delays)."""
        return backoff_delays(self.backoff.kind, self.backoff.base,
                              self.retries)


def parse_repair(text: str) -> RepairSpec:
    """Parse a repair spec string (the CLI ``--repair`` type)."""
    return RepairSpec.from_string(text)


def as_repair(value: Union[str, RepairSpec]) -> RepairSpec:
    """Coerce a spec or spec string to a :class:`RepairSpec`."""
    if isinstance(value, RepairSpec):
        return value
    if isinstance(value, str):
        return parse_repair(value)
    raise FaultSpecError(
        f"repair must be a spec string or RepairSpec, got "
        f"{type(value).__name__}"
    )


# ----------------------------------------------------------------------
# Timeline generation


def _renewal_timeline(
    rng,
    mtbf: float,
    mttr: float,
    down_kind: str,
    up_kind: str,
    element: int,
    duration: float,
    out: List[FaultEvent],
) -> None:
    """One element's alternating up/down renewal process.

    All of the element's draws come from *rng* (its private substream)
    in a fixed alternating order, so extending *duration* appends
    events without perturbing earlier ones.
    """
    time = 0.0
    while True:
        time += float(rng.exponential(mtbf))
        if time >= duration:
            return
        out.append(FaultEvent(time=time, kind=down_kind, element=element))
        time += float(rng.exponential(mttr))
        if time >= duration:
            return
        out.append(FaultEvent(time=time, kind=up_kind, element=element))


def fault_events(
    spec: FaultSpec,
    sample_seed: int,
    num_edges: int,
    num_switches: int,
    duration: float,
) -> List[FaultEvent]:
    """All fault events of one replication, in timeline order.

    Edge *i* draws from substream ``FAULT_STREAM_BASE + i`` and switch
    *j* from ``FAULT_STREAM_BASE + SWITCH_STREAM_OFFSET + j``, so the
    list is a pure function of ``(spec, sample_seed, counts, duration)``
    — identical across processes, worker counts and routing cores, and
    prefix-stable in ``duration``.
    """
    if spec.kind != "faults":
        raise FaultSpecError(
            f"cannot generate events for fault kind {spec.kind!r}"
        )
    if num_edges < 0 or num_switches < 0:
        raise FaultSpecError(
            f"element counts must be >= 0, got edges={num_edges}, "
            f"switches={num_switches}"
        )
    if not duration > 0:
        raise FaultSpecError(f"duration must be > 0, got {duration!r}")
    events: List[FaultEvent] = []
    if spec.link_mtbf is not None:
        for index in range(num_edges):
            _renewal_timeline(
                stream_rng(sample_seed, FAULT_STREAM_BASE + index),
                spec.link_mtbf, spec.link_mttr, "link_down", "link_up",
                index, duration, events,
            )
    switch_mtbf = spec.effective_switch_mtbf()
    if switch_mtbf is not None:
        for index in range(num_switches):
            _renewal_timeline(
                stream_rng(
                    sample_seed,
                    FAULT_STREAM_BASE + SWITCH_STREAM_OFFSET + index,
                ),
                switch_mtbf, spec.switch_mttr, "switch_down", "switch_up",
                index, duration, events,
            )
    events.sort(key=FaultEvent.sort_key)
    return events


# ----------------------------------------------------------------------
# Fault trace files (JSON lines, mirroring the arrival trace format)


def write_fault_trace(
    path: Union[str, Path],
    replications: List[List[FaultEvent]],
) -> None:
    """Record per-replication fault timelines as a replayable file."""
    lines = [
        json.dumps(
            {
                "format": FAULT_TRACE_FORMAT,
                "version": FAULT_TRACE_VERSION,
                "replications": len(replications),
            },
            sort_keys=True,
        )
    ]
    for replication, events in enumerate(replications):
        for event in events:
            lines.append(
                json.dumps(
                    {
                        "replication": replication,
                        "time": event.time,
                        "kind": event.kind,
                        "element": event.element,
                    },
                    sort_keys=True,
                )
            )
    Path(path).write_text("\n".join(lines) + "\n")


def read_fault_trace(path: Union[str, Path]) -> List[List[FaultEvent]]:
    """Load a fault trace into per-replication timelines.

    Validates the header, every event's kind/time/element, that events
    name a declared replication, and that each replication's times are
    non-decreasing — every rejection names the offending line.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise FaultSpecError(
            f"cannot read fault trace {path}: {exc}"
        ) from None
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise FaultSpecError(f"fault trace {path} is empty")
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise FaultSpecError(
            f"fault trace {path} has an unreadable header line"
        ) from None
    if (
        not isinstance(header, dict)
        or header.get("format") != FAULT_TRACE_FORMAT
        or header.get("version") != FAULT_TRACE_VERSION
    ):
        raise FaultSpecError(
            f"fault trace {path} is not a {FAULT_TRACE_FORMAT} "
            f"v{FAULT_TRACE_VERSION} file"
        )
    count = header.get("replications")
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise FaultSpecError(
            f"fault trace {path}: header 'replications' must be a "
            f"positive int, got {count!r}"
        )
    replications: List[List[FaultEvent]] = [[] for _ in range(count)]
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError:
            raise FaultSpecError(
                f"fault trace {path} line {lineno}: unreadable JSON"
            ) from None
        try:
            replication = record["replication"]
            element = record["element"]
            if isinstance(replication, bool) or not isinstance(
                replication, int
            ):
                raise FaultSpecError(
                    f"replication must be an int, got {replication!r}"
                )
            if isinstance(element, bool) or not isinstance(element, int):
                raise FaultSpecError(
                    f"element must be an int, got {element!r}"
                )
            event = FaultEvent(
                time=float(record["time"]),
                kind=record["kind"],
                element=element,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultSpecError(
                f"fault trace {path} line {lineno}: {exc}"
            ) from None
        if not 0 <= replication < count:
            raise FaultSpecError(
                f"fault trace {path} line {lineno}: replication "
                f"{replication} outside the declared 0..{count - 1}"
            )
        events = replications[replication]
        if events and event.time < events[-1].time:
            raise FaultSpecError(
                f"fault trace {path} line {lineno}: times must be "
                "non-decreasing within a replication"
            )
        events.append(event)
    return replications

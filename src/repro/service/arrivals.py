"""Arrival processes for the online serving loop.

An :class:`ArrivalSpec` describes how demands arrive at the serving
loop, in the same parse/serialize/``config_dict`` grammar the router,
estimator and scenario axes use::

    poisson:rate=2.0,hold=exp:mean=30.0     (memoryless arrivals)
    poisson:rate=0.5,hold=fixed:mean=10.0
    trace:file=runs/monday.trace            (replay a recorded trace)

A Poisson spec draws every event from its own RNG substream
(:func:`stream_rng` of the replication's sample seed), so the k-th
arrival is a pure function of ``(sample_seed, k)`` — bit-identical
whatever the worker count and unperturbed by how earlier events were
served.  A trace spec replays a file recorded with
``--record-trace`` (or written by hand); its ``config_dict`` identity
hashes the file *contents*, so cached serve results can never outlive
an edited trace.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.specs import SpecBase, SpecError
from repro.utils.rng import RandomState, stream_rng

#: Substream index of the k-th arrival event is ``EVENT_STREAM_BASE + k``.
#: Far above the estimation substream (``ESTIMATION_STREAM = 0x4D43``)
#: that shares the per-sample seed, so the two families can never
#: collide.
EVENT_STREAM_BASE = 0x100000

#: Trace file header identity.
TRACE_FORMAT = "repro-serve-trace"
TRACE_VERSION = 1


class ArrivalSpecError(SpecError):
    """An arrival spec string, parameter or trace file is invalid.

    Subclasses :class:`ValueError` so ``argparse`` type callables can
    surface the message as a normal usage error.
    """


def _parse_float(name: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ArrivalSpecError(
            f"arrival parameter {name!r} must be a number, got {text!r}"
        ) from None


@dataclass(frozen=True)
class HoldSpec:
    """How long an admitted flow holds its capacity.

    ``exp`` draws holding times from an exponential distribution with
    the given mean (the M/M/. holding model); ``fixed`` holds exactly
    ``mean``.  Single-parameter by construction so the enclosing
    arrival grammar stays comma-separable.
    """

    dist: str = "exp"
    mean: float = 30.0

    def __post_init__(self) -> None:
        if self.dist not in ("exp", "fixed"):
            raise ArrivalSpecError(
                f"hold distribution must be 'exp' or 'fixed', got "
                f"{self.dist!r}"
            )
        object.__setattr__(self, "mean", float(self.mean))
        if not self.mean > 0:
            raise ArrivalSpecError(
                f"hold mean must be > 0, got {self.mean!r}"
            )

    @classmethod
    def from_string(cls, text: str) -> "HoldSpec":
        """Parse ``dist:mean=VALUE`` (e.g. ``exp:mean=30``)."""
        dist, sep, rest = text.strip().partition(":")
        if not sep or not dist:
            raise ArrivalSpecError(
                f"hold spec {text!r} must look like dist:mean=VALUE "
                "(e.g. exp:mean=30)"
            )
        name, eq, value = rest.partition("=")
        if not eq or name.strip() != "mean" or not value.strip():
            raise ArrivalSpecError(
                f"hold spec {text!r} takes exactly one parameter, "
                "mean=VALUE"
            )
        return cls(dist=dist, mean=_parse_float("hold mean", value.strip()))

    def to_string(self) -> str:
        """Canonical ``dist:mean=VALUE`` form; round-trips via
        :meth:`from_string`."""
        return f"{self.dist}:mean={self.mean!r}"

    def sample(self, rng: RandomState) -> float:
        """Draw one holding time (``fixed`` consumes no randomness)."""
        if self.dist == "exp":
            return float(rng.exponential(self.mean))
        return self.mean


@dataclass(frozen=True)
class ArrivalEvent:
    """One demand arrival: when, which user pair, and for how long.

    ``source_index``/``dest_index`` index the network's sorted user
    list rather than naming node ids, so one trace replays on every
    replication's independently sampled topology.
    """

    time: float
    source_index: int
    dest_index: int
    hold: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ArrivalSpecError(
                f"arrival time must be >= 0, got {self.time!r}"
            )
        if self.source_index < 0 or self.dest_index < 0:
            raise ArrivalSpecError("arrival user indices must be >= 0")
        if self.source_index == self.dest_index:
            raise ArrivalSpecError(
                f"arrival at t={self.time!r}: source and destination "
                "user indices must differ"
            )
        if not self.hold > 0:
            raise ArrivalSpecError(
                f"arrival holding time must be > 0, got {self.hold!r}"
            )


@dataclass(frozen=True)
class ArrivalSpec(SpecBase):
    """One arrival process: Poisson with a holding model, or a trace.

    ``rate``/``hold`` parameterise Poisson arrivals and are meaningless
    for traces (every trace event carries its own holding time), so the
    grammar rejects them on ``trace:`` specs rather than ignore them
    silently.
    """

    kind: str = "poisson"
    rate: float = 2.0
    hold: HoldSpec = HoldSpec()
    file: Optional[str] = None

    spec_what = "arrival"
    spec_error = ArrivalSpecError

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "trace"):
            raise ArrivalSpecError(
                f"arrival kind must be 'poisson' or 'trace', got "
                f"{self.kind!r}"
            )
        if isinstance(self.hold, str):
            object.__setattr__(self, "hold", HoldSpec.from_string(self.hold))
        if not isinstance(self.hold, HoldSpec):
            raise ArrivalSpecError(
                f"hold must be a HoldSpec or spec string, got "
                f"{type(self.hold).__name__}"
            )
        if self.kind == "poisson":
            object.__setattr__(self, "rate", float(self.rate))
            if not self.rate > 0:
                raise ArrivalSpecError(
                    f"arrival rate must be > 0, got {self.rate!r}"
                )
            if self.file is not None:
                raise ArrivalSpecError(
                    "poisson arrivals take no file= parameter"
                )
        else:
            if not self.file:
                raise ArrivalSpecError(
                    "trace arrivals need file=PATH"
                )
            if "," in self.file:
                raise ArrivalSpecError(
                    f"trace file path {self.file!r} must not contain "
                    "','; rename the file"
                )

    # ------------------------------------------------------------------
    # Parsing / serialization

    @classmethod
    def from_string(cls, text: str) -> "ArrivalSpec":
        """Parse ``poisson[:rate=R,hold=DIST:mean=M]`` or
        ``trace:file=PATH``.

        ``=`` may appear inside a value (the nested hold grammar), so
        the shared tokenizer's default first-``=``-wins split applies.
        """
        kind, rest = cls._split_spec(text)
        kind = kind.lower()
        params: Dict[str, object] = {}
        if rest is not None:
            raw = cls._parse_params(
                rest, text=text, valid=("rate", "hold", "file")
            )
            for name, value in raw.items():
                if name == "rate":
                    params["rate"] = _parse_float("rate", value)
                elif name == "hold":
                    params["hold"] = HoldSpec.from_string(value)
                else:
                    params["file"] = value
        if kind == "trace" and ("rate" in params or "hold" in params):
            raise ArrivalSpecError(
                "trace arrivals replay the recorded times and holds; "
                "rate=/hold= do not apply"
            )
        return cls(kind=kind, **params)

    def to_string(self) -> str:
        """Canonical form (non-default parameters only); round-trips
        via :meth:`from_string`."""
        if self.kind == "trace":
            return f"trace:file={self.file}"
        rendered = []
        if self.rate != 2.0:
            rendered.append(f"rate={self.rate!r}")
        if self.hold != HoldSpec():
            rendered.append(f"hold={self.hold.to_string()}")
        if not rendered:
            return self.kind
        return f"{self.kind}:{','.join(rendered)}"

    def config_dict(self) -> Dict:
        """Stable, JSON-ready identity for cache keys.

        Trace identity is the file *contents* (sha256), not its path,
        so renaming a trace hits the same entries while editing one
        misses.
        """
        if self.kind == "trace":
            digest = hashlib.sha256(Path(self.file).read_bytes()).hexdigest()
            return {"kind": self.kind, "trace_sha256": digest}
        return {
            "kind": self.kind,
            "rate": self.rate,
            "hold": {"dist": self.hold.dist, "mean": self.hold.mean},
        }


def validate_events(events) -> None:
    """Reject arrival sequences the serving loop cannot trust.

    The event loop assumes time-sorted arrivals (departure processing
    interleaves on that order); feeding it an unsorted list would
    silently serve arrivals against releases from their own future.
    Named-position errors make a broken hand-written trace (or a buggy
    programmatic caller) debuggable.  Negative times are impossible by
    :class:`ArrivalEvent` construction; this checks ordering.
    """
    last: Optional[float] = None
    for index, event in enumerate(events):
        if last is not None and event.time < last:
            raise ArrivalSpecError(
                f"arrival events must be time-sorted; event {index} at "
                f"t={event.time!r} precedes its predecessor at t={last!r}"
            )
        last = event.time


def parse_arrivals(text: str) -> ArrivalSpec:
    """Parse an arrival spec string (the CLI ``--arrivals`` type)."""
    return ArrivalSpec.from_string(text)


def as_arrivals(value: Union[str, ArrivalSpec]) -> ArrivalSpec:
    """Coerce a spec or spec string to an :class:`ArrivalSpec`."""
    if isinstance(value, ArrivalSpec):
        return value
    if isinstance(value, str):
        return parse_arrivals(value)
    raise ArrivalSpecError(
        f"arrivals must be a spec string or ArrivalSpec, got "
        f"{type(value).__name__}"
    )


# ----------------------------------------------------------------------
# Event generation


def poisson_events(
    spec: ArrivalSpec,
    sample_seed: int,
    num_users: int,
    duration: float,
) -> List[ArrivalEvent]:
    """All arrivals of one replication, in time order.

    Event k draws its inter-arrival gap, user pair and holding time
    from substream ``EVENT_STREAM_BASE + k`` of *sample_seed* (in that
    fixed order), so the event list is a pure function of the seed —
    identical across processes, worker counts and routing cores.
    """
    if spec.kind != "poisson":
        raise ArrivalSpecError(
            f"cannot generate events for arrival kind {spec.kind!r}"
        )
    if num_users < 2:
        raise ArrivalSpecError(
            f"need at least 2 users to generate arrivals, got {num_users}"
        )
    events: List[ArrivalEvent] = []
    time = 0.0
    k = 0
    while True:
        rng = stream_rng(sample_seed, EVENT_STREAM_BASE + k)
        time += float(rng.exponential(1.0 / spec.rate))
        if time >= duration:
            return events
        i, j = rng.choice(num_users, size=2, replace=False)
        events.append(
            ArrivalEvent(
                time=time,
                source_index=int(i),
                dest_index=int(j),
                hold=spec.hold.sample(rng),
            )
        )
        k += 1


# ----------------------------------------------------------------------
# Trace files (JSON lines: one header, then one event per line)


def write_trace(
    path: Union[str, Path],
    replications: List[List[ArrivalEvent]],
) -> None:
    """Record per-replication event lists as a replayable trace file.

    Sorted-key JSON with ``repr``-round-tripped floats, so replaying
    the file reproduces the recording run's events bit-exactly.
    """
    lines = [
        json.dumps(
            {
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
                "replications": len(replications),
            },
            sort_keys=True,
        )
    ]
    for replication, events in enumerate(replications):
        for event in events:
            lines.append(
                json.dumps(
                    {
                        "replication": replication,
                        "time": event.time,
                        "source": event.source_index,
                        "dest": event.dest_index,
                        "hold": event.hold,
                    },
                    sort_keys=True,
                )
            )
    Path(path).write_text("\n".join(lines) + "\n")


def read_trace(path: Union[str, Path]) -> List[List[ArrivalEvent]]:
    """Load a trace file into per-replication event lists.

    Validates the header, that every event names a declared
    replication, and that each replication's times are non-decreasing.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ArrivalSpecError(f"cannot read trace file {path}: {exc}") from None
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ArrivalSpecError(f"trace file {path} is empty")
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise ArrivalSpecError(
            f"trace file {path} has an unreadable header line"
        ) from None
    if (
        not isinstance(header, dict)
        or header.get("format") != TRACE_FORMAT
        or header.get("version") != TRACE_VERSION
    ):
        raise ArrivalSpecError(
            f"trace file {path} is not a {TRACE_FORMAT} v{TRACE_VERSION} "
            "file"
        )
    count = header.get("replications")
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise ArrivalSpecError(
            f"trace file {path}: header 'replications' must be a "
            f"positive int, got {count!r}"
        )
    replications: List[List[ArrivalEvent]] = [[] for _ in range(count)]
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError:
            raise ArrivalSpecError(
                f"trace file {path} line {lineno}: unreadable JSON"
            ) from None
        try:
            replication = record["replication"]
            if isinstance(replication, bool) or not isinstance(
                replication, int
            ):
                # A float or bool here would silently alias another
                # replication's event list (or crash the list index).
                raise ArrivalSpecError(
                    f"replication must be an int, got {replication!r}"
                )
            event = ArrivalEvent(
                time=float(record["time"]),
                source_index=int(record["source"]),
                dest_index=int(record["dest"]),
                hold=float(record["hold"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArrivalSpecError(
                f"trace file {path} line {lineno}: {exc}"
            ) from None
        if not 0 <= replication < count:
            raise ArrivalSpecError(
                f"trace file {path} line {lineno}: replication "
                f"{replication} outside the declared 0..{count - 1}"
            )
        events = replications[replication]
        if events and event.time < events[-1].time:
            raise ArrivalSpecError(
                f"trace file {path} line {lineno}: times must be "
                "non-decreasing within a replication"
            )
        events.append(event)
    return replications

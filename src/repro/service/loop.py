"""The event-driven serving loop.

Demands arrive one at a time (:mod:`repro.service.arrivals`), are
routed against whatever capacity earlier flows left behind, hold their
qubits for their holding time and then depart, releasing the capacity
for later arrivals.  Two re-planning modes drive the router per
arrival:

``incremental``
    Calls the router's ``route_online`` interface (when it has one)
    with a session-long :class:`~repro.routing.allocation.QubitLedger`
    and channel-rate cache, so each arrival re-plans against O(changes)
    of incremental state — the ledger's feasibility journal patches the
    compiled core's cached relay flags instead of rebuilding them, and
    each arrival's width sweep runs through the compiled core's fused
    multi-width Dijkstra pass (one shared frontier per
    ``search_widths`` batch), so per-arrival latency benefits from the
    same kernel batching as the offline sweeps.

``resnapshot``
    Rebuilds a residual-capacity copy of the network per arrival and
    runs the router's ordinary batch ``route`` on it.  Works with
    *any* registry router; the baseline the incremental path must beat.

The two modes are decision-identical by construction (``route_online``
mirrors ``route`` on the residual view), so the deterministic metrics
never depend on the mode — only the re-plan latency does.  Wall-clock
latency is measured through the sanctioned
:func:`repro.utils.timing.perf_timer` accessor and reported separately
from the deterministic metrics; it must never reach stdout or a cache.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.allocation import QubitLedger
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.service.arrivals import ArrivalEvent
from repro.utils.timing import perf_timer

#: Valid re-planning modes, in CLI listing order.
REPLAN_MODES = ("incremental", "resnapshot")


@dataclass(frozen=True)
class ServeMetrics:
    """Deterministic steady-state metrics of one serving run.

    Counters cover arrivals inside the measurement window
    ``[warmup, duration)``; the time-averaged quantities integrate over
    that window, including the contribution of flows admitted during
    warmup that are still held.  Every field is a pure function of the
    event list and the routing decisions — safe to cache and to print
    on stdout.
    """

    arrivals: int
    admitted: int
    rejected: int
    admission_ratio: float
    throughput: float
    mean_held: float
    mean_hold: float


@dataclass(frozen=True)
class ServeRun:
    """One serving run: deterministic metrics plus wall-clock latencies.

    ``latencies_s`` holds one re-plan latency (seconds) per arrival, in
    arrival order; ``mode`` is the re-planning path actually taken
    (a router without ``route_online`` falls back to ``resnapshot``).
    """

    metrics: ServeMetrics
    latencies_s: List[float]
    mode: str


def latency_summary(latencies_s: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank percentile summary of re-plan latencies, in ms."""
    values = sorted(latencies_s)
    if not values:
        return {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}

    def rank(fraction: float) -> float:
        index = math.ceil(fraction * len(values)) - 1
        return values[max(0, min(index, len(values) - 1))] * 1000.0

    return {
        "count": len(values),
        "p50_ms": rank(0.50),
        "p99_ms": rank(0.99),
        "mean_ms": sum(values) / len(values) * 1000.0,
    }


def residual_view(
    network: QuantumNetwork, ledger: QubitLedger
) -> QuantumNetwork:
    """A copy of *network* whose switch capacities are the ledger's
    remaining counts (users stay unlimited, lengths are preserved)."""
    view = QuantumNetwork()
    for node_id in network.nodes():
        node = network.node(node_id)
        if node.qubit_capacity is not None:
            node = dataclasses.replace(
                node, qubit_capacity=int(ledger.remaining(node_id))
            )
        view.add_node(node)
    for u, v in network.edge_keys():
        view.add_edge(u, v, network.edge_length(u, v))
    return view


class ServeSession:
    """Mutable serving state over one network: ledger, caches, router."""

    def __init__(
        self,
        network: QuantumNetwork,
        link_model: LinkModel,
        swap_model: SwapModel,
        router,
        replan: str = "incremental",
    ):
        if replan not in REPLAN_MODES:
            raise ConfigurationError(
                f"replan mode must be one of {', '.join(REPLAN_MODES)}, "
                f"got {replan!r}"
            )
        self.network = network
        self.users = network.users()
        self.link_model = link_model
        self.swap_model = swap_model
        self.router = router
        self.ledger = QubitLedger(network)
        # Session-long channel-rate memo: the incremental path reuses it
        # (and the compiled snapshot hanging off it) across arrivals.
        self.rate_cache = ChannelRateCache(network, link_model)
        self._online = (
            getattr(router, "route_online", None)
            if replan == "incremental"
            else None
        )
        self.mode = "incremental" if self._online is not None else "resnapshot"

    def route_arrival(
        self, demand: Demand
    ) -> Optional[Tuple[FlowLikeGraph, float]]:
        """Plan one arrival; returns ``(flow, rate)`` or ``None``.

        On admission the session ledger is charged with the flow's full
        qubit usage; :meth:`release_flow` undoes it at departure.
        """
        if self._online is not None:
            result = self._online(
                self.network,
                demand,
                self.link_model,
                self.swap_model,
                ledger=self.ledger,
                rate_cache=self.rate_cache,
            )
        else:
            view = residual_view(self.network, self.ledger)
            result = self.router.route(
                view, DemandSet([demand]), self.link_model, self.swap_model
            )
        flow = result.plan.flow_for(demand.demand_id)
        if flow is None or flow.num_paths == 0:
            return None
        if self._online is None:
            # The batch route charged its own ledger over the view;
            # mirror the reservation onto the session ledger.
            for node in flow.nodes():
                self.ledger.reserve(node, flow.qubits_used_at(node))
        return flow, result.demand_rates[demand.demand_id]

    def release_flow(self, flow: FlowLikeGraph) -> None:
        """Dismantle a departing flow, returning its qubits to the
        ledger path by path (exercising the incremental release APIs)."""
        for path in flow.paths:
            released = flow.remove_path(path)
            for (u, v), width in sorted(released.items()):
                self.ledger.release(u, width)
                self.ledger.release(v, width)


def run_serve(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    router,
    events: Sequence[ArrivalEvent],
    duration: float,
    warmup: float,
    replan: str = "incremental",
) -> ServeRun:
    """Serve one replication's event list and report its metrics.

    Departures are processed before the arrival they precede (or tie
    with), so an arrival always sees every release up to its own
    timestamp.  Window integrals are accumulated at admission time with
    the flow's ``[arrival, departure)`` interval clamped to
    ``[warmup, duration)`` — exact, and independent of processing
    order.
    """
    if not duration > 0:
        raise ConfigurationError(f"duration must be > 0, got {duration!r}")
    if not 0 <= warmup < duration:
        raise ConfigurationError(
            f"warmup must satisfy 0 <= warmup < duration, got "
            f"warmup={warmup!r}, duration={duration!r}"
        )
    session = ServeSession(network, link_model, swap_model, router, replan)
    users = session.users
    window = duration - warmup
    held: List[Tuple[float, int, FlowLikeGraph]] = []
    sequence = 0
    arrivals = admitted = 0
    hold_sum = 0.0
    rate_integral = 0.0
    held_integral = 0.0
    latencies: List[float] = []

    def overlap(start: float, end: float) -> float:
        return max(0.0, min(end, duration) - max(start, warmup))

    for index, event in enumerate(events):
        if event.time >= duration:
            break
        if event.source_index >= len(users) or event.dest_index >= len(users):
            raise ConfigurationError(
                f"arrival at t={event.time!r} names user index "
                f"{max(event.source_index, event.dest_index)} but the "
                f"network has {len(users)} users"
            )
        while held and held[0][0] <= event.time:
            _, _, flow = heappop(held)
            session.release_flow(flow)
        demand = Demand(
            demand_id=index,
            source=users[event.source_index],
            destination=users[event.dest_index],
        )
        start = perf_timer()
        routed = session.route_arrival(demand)
        latencies.append(perf_timer() - start)
        in_window = event.time >= warmup
        if in_window:
            arrivals += 1
        if routed is None:
            continue
        flow, rate = routed
        departure = event.time + event.hold
        if in_window:
            admitted += 1
            hold_sum += event.hold
        rate_integral += rate * overlap(event.time, departure)
        held_integral += overlap(event.time, departure)
        heappush(held, (departure, sequence, flow))
        sequence += 1

    metrics = ServeMetrics(
        arrivals=arrivals,
        admitted=admitted,
        rejected=arrivals - admitted,
        admission_ratio=admitted / arrivals if arrivals else 0.0,
        throughput=rate_integral / window,
        mean_held=held_integral / window,
        mean_hold=hold_sum / admitted if admitted else 0.0,
    )
    return ServeRun(metrics=metrics, latencies_s=latencies, mode=session.mode)

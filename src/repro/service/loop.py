"""The event-driven serving loop.

Demands arrive one at a time (:mod:`repro.service.arrivals`), are
routed against whatever capacity earlier flows left behind, hold their
qubits for their holding time and then depart, releasing the capacity
for later arrivals.  Two re-planning modes drive the router per
arrival:

``incremental``
    Calls the router's ``route_online`` interface (when it has one)
    with a session-long :class:`~repro.routing.allocation.QubitLedger`
    and channel-rate cache, so each arrival re-plans against O(changes)
    of incremental state — the ledger's feasibility journal patches the
    compiled core's cached relay flags instead of rebuilding them, and
    each arrival's width sweep runs through the compiled core's fused
    multi-width Dijkstra pass (one shared frontier per
    ``search_widths`` batch), so per-arrival latency benefits from the
    same kernel batching as the offline sweeps.

``resnapshot``
    Rebuilds a residual-capacity copy of the network per arrival and
    runs the router's ordinary batch ``route`` on it.  Works with
    *any* registry router; the baseline the incremental path must beat.

Fault injection (:mod:`repro.service.faults`) merges link/switch
down/up events into the same event stream.  A down event masks the
element out of all future routing — the ``incremental`` mode passes
the session's down-element sets as search-time bans (memo-keyed masks
on the compiled snapshot, O(changes) per fault transition), the
``resnapshot`` mode omits the elements from the residual view; the
two are bit-identical because a masked element searches exactly like
an absent one — and invalidates every held flow crossing it.  Each
disrupted flow is released exactly (the ledger journal replays the
release like any departure) and handed to the repair policy: ``drop``
counts it, ``reroute`` re-plans it now and retries on a deterministic
backoff schedule, degrading to a counted drop when the budget runs out.
Repair never raises out of the loop: a routing failure is a failed
attempt, not a crash.

The two modes are decision-identical by construction (``route_online``
mirrors ``route`` on the residual view), so the deterministic metrics
never depend on the mode — only the re-plan latency does.  Wall-clock
latency (re-plan and recovery alike) is measured through the
sanctioned :func:`repro.utils.timing.perf_timer` accessor and reported
separately from the deterministic metrics; it must never reach stdout
or a cache.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError, ReproError
from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.allocation import QubitLedger
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.service.arrivals import ArrivalEvent, validate_events
from repro.service.faults import KIND_ORDER, FaultEvent, RepairSpec, as_repair
from repro.utils.timing import perf_timer

EdgeKey = Tuple[int, int]

#: Valid re-planning modes, in CLI listing order.
REPLAN_MODES = ("incremental", "resnapshot")

#: Fixed tie-break order of simultaneous events, lowest first:
#: departures release capacity before anything else sees the instant;
#: element repairs land before element failures (a recovering element
#: must not mask a concurrent failure elsewhere); repair retries run
#: before new arrivals compete for the freed capacity.  Equal-priority
#: ties fall back to push order (a monotone sequence number).
_PRI_DEPARTURE = 0
_PRI_FAULT_BASE = 1  # + KIND_ORDER[kind]: up events 1-2, down events 3-4
_PRI_RETRY = 5
_PRI_ARRIVAL = 6


@dataclass(frozen=True)
class ServeMetrics:
    """Deterministic steady-state metrics of one serving run.

    Counters cover events inside the measurement window
    ``[warmup, duration)``; the time-averaged quantities integrate over
    that window, including the contribution of flows admitted during
    warmup that are still held.  ``disruptions`` counts held flows
    invalidated by a fault, ``repaired``/``dropped`` how each
    disruption resolved (every in-window disruption resolves to exactly
    one of the two), ``repair_ratio`` their quotient.  Every field is a
    pure function of the event list and the routing decisions — safe to
    cache and to print on stdout.
    """

    arrivals: int
    admitted: int
    rejected: int
    admission_ratio: float
    throughput: float
    mean_held: float
    mean_hold: float
    disruptions: int = 0
    repaired: int = 0
    dropped: int = 0
    repair_ratio: float = 0.0


@dataclass(frozen=True)
class ServeRun:
    """One serving run: deterministic metrics plus wall-clock latencies.

    ``latencies_s`` holds one re-plan latency (seconds) per arrival, in
    arrival order; ``repair_latencies_s`` one recovery latency per
    repair attempt (successful or not), in attempt order; ``mode`` is
    the re-planning path actually taken (a router without
    ``route_online`` falls back to ``resnapshot``).
    """

    metrics: ServeMetrics
    latencies_s: List[float]
    mode: str
    repair_latencies_s: List[float] = field(default_factory=list)


def latency_summary(latencies_s: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank percentile summary of re-plan latencies, in ms."""
    values = sorted(latencies_s)
    if not values:
        return {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}

    def rank(fraction: float) -> float:
        index = math.ceil(fraction * len(values)) - 1
        return values[max(0, min(index, len(values) - 1))] * 1000.0

    return {
        "count": len(values),
        "p50_ms": rank(0.50),
        "p99_ms": rank(0.99),
        "mean_ms": sum(values) / len(values) * 1000.0,
    }


def residual_view(
    network: QuantumNetwork,
    ledger: QubitLedger,
    down_edges: FrozenSet[EdgeKey] = frozenset(),
    down_switches: FrozenSet[int] = frozenset(),
) -> QuantumNetwork:
    """A copy of *network* whose switch capacities are the ledger's
    remaining counts (users stay unlimited, lengths are preserved).

    Down elements are omitted *as edges only*: a down edge disappears,
    a down switch keeps its node (so user/switch orderings — and the
    derived default max width — match the incremental mode's view of
    the full network) but loses every incident edge, which makes it
    unroutable exactly like the incremental mode's node ban.
    """
    view = QuantumNetwork()
    for node_id in network.nodes():
        node = network.node(node_id)
        if node.qubit_capacity is not None:
            node = dataclasses.replace(
                node, qubit_capacity=int(ledger.remaining(node_id))
            )
        view.add_node(node)
    for u, v in network.edge_keys():
        if (u, v) in down_edges:
            continue
        if u in down_switches or v in down_switches:
            continue
        view.add_edge(u, v, network.edge_length(u, v))
    return view


class ServeSession:
    """Mutable serving state over one network: ledger, caches, router,
    and the current fault state (down edges/switches)."""

    def __init__(
        self,
        network: QuantumNetwork,
        link_model: LinkModel,
        swap_model: SwapModel,
        router,
        replan: str = "incremental",
    ):
        if replan not in REPLAN_MODES:
            raise ConfigurationError(
                f"replan mode must be one of {', '.join(REPLAN_MODES)}, "
                f"got {replan!r}"
            )
        self.network = network
        self.users = network.users()
        self.link_model = link_model
        self.swap_model = swap_model
        self.router = router
        self.ledger = QubitLedger(network)
        # Session-long channel-rate memo: the incremental path reuses it
        # (and the compiled snapshot hanging off it) across arrivals.
        self.rate_cache = ChannelRateCache(network, link_model)
        # Fault state: updated by mark_* transitions, read as frozen
        # ban sets by every routing call.  The compiled snapshot keys
        # its search memo and masked rate rows on these sets, so each
        # distinct fault state pays its masking once and is O(1) after.
        self.down_edges: FrozenSet[EdgeKey] = frozenset()
        self.down_switches: FrozenSet[int] = frozenset()
        self._online = (
            getattr(router, "route_online", None)
            if replan == "incremental"
            else None
        )
        self.mode = "incremental" if self._online is not None else "resnapshot"

    # -- fault-state transitions ---------------------------------------

    def mark_edge(self, edge: EdgeKey, down: bool) -> bool:
        """Record one edge's up/down transition; True when it changed."""
        if down == (edge in self.down_edges):
            return False
        if down:
            self.down_edges = self.down_edges | {edge}
        else:
            self.down_edges = self.down_edges - {edge}
        return True

    def mark_switch(self, switch: int, down: bool) -> bool:
        """Record one switch's up/down transition; True when changed."""
        if down == (switch in self.down_switches):
            return False
        if down:
            self.down_switches = self.down_switches | {switch}
        else:
            self.down_switches = self.down_switches - {switch}
        return True

    # -- routing -------------------------------------------------------

    def route_arrival(
        self, demand: Demand
    ) -> Optional[Tuple[FlowLikeGraph, float]]:
        """Plan one arrival; returns ``(flow, rate)`` or ``None``.

        Down elements never appear in the result: the incremental path
        passes them as search bans, the resnapshot path routes on a
        view without them.  On admission the session ledger is charged
        with the flow's full qubit usage; :meth:`release_flow` undoes
        it at departure.
        """
        if self._online is not None:
            result = self._online(
                self.network,
                demand,
                self.link_model,
                self.swap_model,
                ledger=self.ledger,
                rate_cache=self.rate_cache,
                banned_nodes=self.down_switches,
                banned_edges=self.down_edges,
            )
        else:
            view = residual_view(
                self.network, self.ledger, self.down_edges,
                self.down_switches,
            )
            result = self.router.route(
                view, DemandSet([demand]), self.link_model, self.swap_model
            )
        flow = result.plan.flow_for(demand.demand_id)
        if flow is None or flow.num_paths == 0:
            return None
        if self._online is None:
            # The batch route charged its own ledger over the view;
            # mirror the reservation onto the session ledger.
            for node in flow.nodes():
                self.ledger.reserve(node, flow.qubits_used_at(node))
        return flow, result.demand_rates[demand.demand_id]

    def release_flow(self, flow: FlowLikeGraph) -> None:
        """Dismantle a departing (or disrupted) flow, returning its
        qubits to the ledger path by path (exercising the incremental
        release APIs) — the ledger ends byte-identical to never having
        admitted the flow."""
        for path in flow.paths:
            released = flow.remove_path(path)
            for (u, v), width in sorted(released.items()):
                self.ledger.release(u, width)
                self.ledger.release(v, width)


class _HeldFlow:
    """One admitted flow while it holds capacity."""

    __slots__ = ("seq", "flow", "demand", "departure", "rate", "edges",
                 "switches")

    def __init__(self, seq, flow, demand, departure, rate, edges, switches):
        self.seq = seq
        self.flow = flow
        self.demand = demand
        self.departure = departure
        self.rate = rate
        self.edges = edges
        self.switches = switches


class _RepairJob:
    """One disrupted flow moving through the repair policy."""

    __slots__ = ("demand", "departure", "attempt", "in_window")

    def __init__(self, demand, departure, in_window):
        self.demand = demand
        self.departure = departure
        self.attempt = 0
        self.in_window = in_window


def run_serve(
    network: QuantumNetwork,
    link_model: LinkModel,
    swap_model: SwapModel,
    router,
    events: Sequence[ArrivalEvent],
    duration: float,
    warmup: float,
    replan: str = "incremental",
    faults: Sequence[FaultEvent] = (),
    repair: Union[str, RepairSpec, None] = None,
) -> ServeRun:
    """Serve one replication's event list and report its metrics.

    Simultaneous events process in a fixed order — departures, element
    repairs (links before switches), element failures (links before
    switches), repair retries, then arrivals — so an arrival always
    sees every release up to its own timestamp and fault transitions
    are deterministic.  Window integrals are accumulated at admission
    time with the flow's ``[arrival, departure)`` interval clamped to
    ``[warmup, duration)`` and corrected when a disruption (or a later
    repair) changes the interval actually served — exact, and
    independent of processing order.

    *faults* is a time-sorted :class:`FaultEvent` timeline (element
    indices into the sorted ``edge_keys()``/``switches()`` lists);
    *repair* the policy for disrupted flows (default ``reroute``).
    """
    if not duration > 0:
        raise ConfigurationError(f"duration must be > 0, got {duration!r}")
    if not 0 <= warmup < duration:
        raise ConfigurationError(
            f"warmup must satisfy 0 <= warmup < duration, got "
            f"warmup={warmup!r}, duration={duration!r}"
        )
    validate_events(events)
    repair_spec = as_repair(repair) if repair is not None else RepairSpec()
    retry_delays = repair_spec.delays()
    session = ServeSession(network, link_model, swap_model, router, replan)
    users = session.users
    edge_keys = network.edge_keys()
    switch_ids = network.switches()
    switch_set = frozenset(switch_ids)
    window = duration - warmup

    last_fault_time: Optional[float] = None
    for fault in faults:
        if last_fault_time is not None and fault.time < last_fault_time:
            raise ConfigurationError(
                f"fault events must be time-sorted; event at "
                f"t={fault.time!r} precedes its predecessor at "
                f"t={last_fault_time!r}"
            )
        last_fault_time = fault.time
        limit = (
            len(edge_keys) if fault.kind.startswith("link") else
            len(switch_ids)
        )
        if fault.element >= limit:
            raise ConfigurationError(
                f"fault at t={fault.time!r} names element "
                f"{fault.element} but the network has {limit} "
                f"{'edges' if fault.kind.startswith('link') else 'switches'}"
            )

    # One heap carries every event class; entries are
    # (time, priority, push_seq, payload).
    heap: List[Tuple[float, int, int, object]] = []
    push_seq = 0

    def push(time: float, priority: int, payload: object) -> None:
        nonlocal push_seq
        heappush(heap, (time, priority, push_seq, payload))
        push_seq += 1

    for index, event in enumerate(events):
        if event.time >= duration:
            break
        push(event.time, _PRI_ARRIVAL, (index, event))
    for fault in faults:
        if fault.time >= duration:
            break
        push(fault.time, _PRI_FAULT_BASE + KIND_ORDER[fault.kind], fault)

    held: Dict[int, _HeldFlow] = {}
    hold_seq = 0
    arrivals = admitted = 0
    disruptions = repaired = dropped = 0
    hold_sum = 0.0
    rate_integral = 0.0
    held_integral = 0.0
    latencies: List[float] = []
    repair_latencies: List[float] = []

    def overlap(start: float, end: float) -> float:
        return max(0.0, min(end, duration) - max(start, warmup))

    def admit(flow, demand, departure, rate, now) -> None:
        nonlocal hold_seq, rate_integral, held_integral
        rate_integral += rate * overlap(now, departure)
        held_integral += overlap(now, departure)
        record = _HeldFlow(
            seq=hold_seq,
            flow=flow,
            demand=demand,
            departure=departure,
            rate=rate,
            edges=frozenset(flow.edges()),
            switches=frozenset(n for n in flow.nodes() if n in switch_set),
        )
        held[hold_seq] = record
        push(departure, _PRI_DEPARTURE, hold_seq)
        hold_seq += 1

    def attempt_repair(job: _RepairJob, now: float) -> None:
        """One repair attempt; schedules the next or counts a drop.

        Never raises: a routing error is a failed attempt like any
        infeasible re-route, so a pathological fault state degrades to
        a counted drop instead of crashing the loop.
        """
        nonlocal repaired, dropped
        start = perf_timer()
        try:
            routed = session.route_arrival(job.demand)
        except ReproError:
            routed = None
        repair_latencies.append(perf_timer() - start)
        if routed is not None:
            flow, rate = routed
            if job.in_window:
                repaired += 1
            admit(flow, job.demand, job.departure, rate, now)
            return
        if job.attempt < len(retry_delays):
            next_time = now + retry_delays[job.attempt]
            job.attempt += 1
            if next_time < job.departure and next_time < duration:
                push(next_time, _PRI_RETRY, job)
                return
            # A retry landing at or after the flow's departure (or the
            # horizon) can never restore service, and later retries in
            # the schedule land later still: degrade to a drop now.
        if job.in_window:
            dropped += 1

    def resolve_disruption(record: _HeldFlow, now: float) -> None:
        """Account one already-released disrupted flow and hand it to
        the repair policy."""
        nonlocal disruptions, dropped, rate_integral, held_integral
        # Undo the optimistically-accumulated remainder of the flow's
        # interval; what was actually served ([admit, now)) stays.
        rate_integral -= record.rate * overlap(now, record.departure)
        held_integral -= overlap(now, record.departure)
        in_window = now >= warmup
        if in_window:
            disruptions += 1
        if repair_spec.kind == "drop":
            if in_window:
                dropped += 1
            return
        attempt_repair(_RepairJob(record.demand, record.departure, in_window),
                       now)

    def apply_fault(fault: FaultEvent, now: float) -> None:
        if fault.kind == "link_down":
            edge = edge_keys[fault.element]
            if not session.mark_edge(edge, down=True):
                return
            affected = [r for r in held.values() if edge in r.edges]
        elif fault.kind == "link_up":
            session.mark_edge(edge_keys[fault.element], down=False)
            return
        elif fault.kind == "switch_down":
            switch = switch_ids[fault.element]
            if not session.mark_switch(switch, down=True):
                return
            affected = [r for r in held.values() if switch in r.switches]
        else:  # switch_up
            session.mark_switch(switch_ids[fault.element], down=False)
            return
        # Release every overlapping flow first (repairs then see all
        # the freed capacity), then repair in admission order.
        affected.sort(key=lambda record: record.seq)
        for record in affected:
            del held[record.seq]
            session.release_flow(record.flow)
        for record in affected:
            resolve_disruption(record, now)

    while heap:
        time, priority, _, payload = heappop(heap)
        if time >= duration:
            break
        if priority == _PRI_DEPARTURE:
            record = held.pop(payload, None)
            if record is not None:
                session.release_flow(record.flow)
            continue
        if priority == _PRI_RETRY:
            attempt_repair(payload, time)
            continue
        if priority != _PRI_ARRIVAL:
            apply_fault(payload, time)
            continue
        index, event = payload
        if event.source_index >= len(users) or event.dest_index >= len(users):
            raise ConfigurationError(
                f"arrival at t={event.time!r} names user index "
                f"{max(event.source_index, event.dest_index)} but the "
                f"network has {len(users)} users"
            )
        demand = Demand(
            demand_id=index,
            source=users[event.source_index],
            destination=users[event.dest_index],
        )
        start = perf_timer()
        routed = session.route_arrival(demand)
        latencies.append(perf_timer() - start)
        in_window = event.time >= warmup
        if in_window:
            arrivals += 1
        if routed is None:
            continue
        flow, rate = routed
        if in_window:
            admitted += 1
            hold_sum += event.hold
        admit(flow, demand, event.time + event.hold, rate, event.time)

    metrics = ServeMetrics(
        arrivals=arrivals,
        admitted=admitted,
        rejected=arrivals - admitted,
        admission_ratio=admitted / arrivals if arrivals else 0.0,
        throughput=rate_integral / window,
        mean_held=held_integral / window,
        mean_hold=hold_sum / admitted if admitted else 0.0,
        disruptions=disruptions,
        repaired=repaired,
        dropped=dropped,
        repair_ratio=repaired / disruptions if disruptions else 0.0,
    )
    return ServeRun(
        metrics=metrics,
        latencies_s=latencies,
        mode=session.mode,
        repair_latencies_s=repair_latencies,
    )

"""Multi-seed replication runner for the online serving loop.

Fans one serve configuration out over ``replications`` independently
sampled networks — the sample seeds come from the exact harness
derivation the sweep grids use (:func:`sample_seeds`), so replication r
of a serve run rebuilds the same network as sample r of any sweep on
the same scenario/seed.  Replications execute through
:func:`parallel_map`; each one's event stream is addressed statelessly
from its sample seed, so the report is bit-identical whatever the
worker count.

Deterministic per-replication metrics round-trip through the shared
:class:`~repro.experiments.cache.ResultCache` under a ``serve``-kind
key (scenario + router + arrivals + duration + warmup + sample seed).
The re-planning mode is deliberately **not** part of the key: the
``incremental`` and ``resnapshot`` modes are decision-identical by
construction, and keying them separately would let the cache hide a
divergence instead of exposing it.  Re-plan latencies are wall-clock
and are never cached (cache hits report no latency).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.experiments.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    default_result_cache,
    payload_key,
    router_fingerprint,
)
from repro.experiments.config import default_workers
from repro.experiments.harness import parallel_map, sample_seeds
from repro.experiments.runner import reject_duplicate_labels
from repro.experiments.scenarios import ScenarioSpec, as_scenario
from repro.network.builder import build_network
from repro.service.arrivals import (
    ArrivalEvent,
    ArrivalSpec,
    as_arrivals,
    poisson_events,
    read_trace,
    write_trace,
)
from repro.service.faults import (
    FaultEvent,
    FaultSpec,
    RepairSpec,
    as_faults,
    as_repair,
    fault_events,
    read_fault_trace,
)
from repro.service.loop import (
    REPLAN_MODES,
    ServeMetrics,
    latency_summary,
    run_serve,
)
from repro.utils.rng import ensure_rng

#: Cache entry kind tag for serve results.
SERVE_KIND = "serve"


def router_label(router) -> str:
    """The series label a router will report, knowable upfront."""
    label = getattr(router, "algorithm_label", None)
    if label is None:
        label = getattr(router, "name", None)
    return label if label is not None else type(router).__name__


def serve_key(
    scenario: ScenarioSpec,
    router,
    arrivals: ArrivalSpec,
    duration: float,
    warmup: float,
    sample_seed: int,
    faults: Optional[FaultSpec] = None,
    repair: Optional[RepairSpec] = None,
) -> str:
    """Content hash addressing one replication's deterministic metrics.

    Fault-free runs hash the exact pre-fault payload (no ``faults``
    key at all), so existing cache entries stay addressable; a fault
    spec extends the payload with its own identity and the repair
    policy (repair decisions change the metrics, so it must key).
    """
    payload = {
        "cache_format_version": CACHE_FORMAT_VERSION,
        "kind": SERVE_KIND,
        "scenario": scenario.config_dict(),
        "router": router_fingerprint(router),
        "arrivals": arrivals.config_dict(),
        "duration": duration,
        "warmup": warmup,
        "sample_seed": sample_seed,
    }
    if faults is not None:
        payload["faults"] = faults.config_dict()
        payload["repair"] = (
            repair if repair is not None else RepairSpec()
        ).config_dict()
    return payload_key(payload)


@dataclass(frozen=True)
class ServeTask:
    """One replication of one router's serving run (picklable unit)."""

    scenario: ScenarioSpec
    router: object
    router_index: int
    replication: int
    sample_seed: int
    arrivals: ArrivalSpec
    events: Optional[Tuple[ArrivalEvent, ...]]
    duration: float
    warmup: float
    replan: str
    collect_events: bool = False
    faults: Optional[FaultSpec] = None
    fault_timeline: Optional[Tuple[FaultEvent, ...]] = None
    repair: Optional[RepairSpec] = None


def _execute_serve_task(task: ServeTask) -> Dict:
    """Run one replication: rebuild its network, serve its events."""
    rng = ensure_rng(task.sample_seed)
    network = build_network(task.scenario.network_config(), rng)
    setting = task.scenario.setting()
    if task.events is not None:
        events = list(task.events)
    else:
        events = poisson_events(
            task.arrivals, task.sample_seed, len(network.users()),
            task.duration,
        )
    if task.fault_timeline is not None:
        timeline = list(task.fault_timeline)
    elif task.faults is not None:
        timeline = fault_events(
            task.faults, task.sample_seed, len(network.edge_keys()),
            len(network.switches()), task.duration,
        )
    else:
        timeline = []
    run = run_serve(
        network,
        setting.link_model(),
        setting.swap_model(),
        task.router,
        events,
        task.duration,
        task.warmup,
        task.replan,
        faults=timeline,
        repair=task.repair,
    )
    result = {
        "router_index": task.router_index,
        "replication": task.replication,
        "mode": run.mode,
        "metrics": dataclasses.asdict(run.metrics),
        "latencies_s": run.latencies_s,
        "repair_latencies_s": run.repair_latencies_s,
    }
    if task.collect_events:
        result["events"] = events
    return result


@dataclass(frozen=True)
class ServeReport:
    """The full serve run: per-replication metrics plus latency stats.

    ``rows`` maps ``(router_index, replication)`` to deterministic
    metrics; ``latencies_s`` pools re-plan latencies per router over
    the replications that actually executed (cache hits contribute
    none); ``cached`` counts hits per router.
    """

    scenario: ScenarioSpec
    arrivals: ArrivalSpec
    duration: float
    warmup: float
    replications: int
    seed: Optional[int]
    replan: str
    labels: List[str]
    modes: List[str]
    rows: Dict[Tuple[int, int], ServeMetrics]
    latencies_s: Dict[int, List[float]]
    cached: Dict[int, int]
    faults: Optional[FaultSpec] = None
    repair: Optional[RepairSpec] = None
    repair_latencies_s: Dict[int, List[float]] = field(default_factory=dict)
    baseline_throughput: Optional[Dict[int, float]] = None

    def metrics_for(self, router_index: int) -> List[ServeMetrics]:
        """One router's metrics, in replication order."""
        return [
            self.rows[(router_index, replication)]
            for replication in range(self.replications)
        ]

    def mean_metrics_for(self, router_index: int) -> ServeMetrics:
        """One router's replication-aggregated row (counters summed,
        ratios and time averages meaned)."""
        series = self.metrics_for(router_index)
        n = len(series)
        return ServeMetrics(
            arrivals=sum(m.arrivals for m in series),
            admitted=sum(m.admitted for m in series),
            rejected=sum(m.rejected for m in series),
            admission_ratio=sum(m.admission_ratio for m in series) / n,
            throughput=sum(m.throughput for m in series) / n,
            mean_held=sum(m.mean_held for m in series) / n,
            mean_hold=sum(m.mean_hold for m in series) / n,
            disruptions=sum(m.disruptions for m in series),
            repaired=sum(m.repaired for m in series),
            dropped=sum(m.dropped for m in series),
            repair_ratio=sum(m.repair_ratio for m in series) / n,
        )

    def to_text(self) -> str:
        """Deterministic stdout report (header, per-replication rows,
        per-router means) — a pure function of the run's spec.

        Without faults the text is byte-identical to the pre-fault
        report; an active fault spec extends the header and adds the
        disruption/repair columns plus a per-router degradation line
        against the fault-free companion run.
        """
        header_line = (
            "online serve: "
            f"scenario={self.scenario.to_string()} "
            f"arrivals={self.arrivals.to_string()} "
            f"duration={self.duration!r} warmup={self.warmup!r} "
            f"replications={self.replications} seed={self.seed}"
        )
        if self.faults is not None:
            repair = self.repair if self.repair is not None else RepairSpec()
            header_line += (
                f" faults={self.faults.to_string()} "
                f"repair={repair.to_string()}"
            )
        lines = [header_line]
        width = max(len(label) for label in self.labels) + 2
        header = (
            f"{'router':<{width}}{'rep':>5}{'arrivals':>10}"
            f"{'admitted':>10}{'ratio':>9}{'throughput':>13}"
            f"{'mean-held':>11}{'mean-hold':>11}"
        )
        if self.faults is not None:
            header += f"{'disrupt':>9}{'repaired':>10}{'dropped':>9}"
        lines.append(header)
        lines.append("-" * len(header))

        def row(label: str, rep: str, m: ServeMetrics) -> str:
            text = (
                f"{label:<{width}}{rep:>5}{m.arrivals:>10}"
                f"{m.admitted:>10}{m.admission_ratio:>9.4f}"
                f"{m.throughput:>13.6f}{m.mean_held:>11.4f}"
                f"{m.mean_hold:>11.4f}"
            )
            if self.faults is not None:
                text += (
                    f"{m.disruptions:>9}{m.repaired:>10}{m.dropped:>9}"
                )
            return text

        for router_index, label in enumerate(self.labels):
            series = self.metrics_for(router_index)
            for replication, metrics in enumerate(series):
                lines.append(row(label, str(replication), metrics))
            mean = self.mean_metrics_for(router_index)
            lines.append(row(label, "mean", mean))
            if (
                self.baseline_throughput is not None
                and router_index in self.baseline_throughput
            ):
                base = self.baseline_throughput[router_index]
                degradation = (
                    (base - mean.throughput) / base * 100.0 if base else 0.0
                )
                lines.append(
                    f"{label}: fault-free throughput {base:.6f} -> "
                    f"{mean.throughput:.6f} under faults "
                    f"(degradation {degradation:.2f}%)"
                )
        return "\n".join(lines)

    def latency_text(self) -> str:
        """Wall-clock latency report (stderr only, never cached)."""
        lines = []
        for router_index, label in enumerate(self.labels):
            mode = self.modes[router_index]
            pooled = self.latencies_s.get(router_index, [])
            if not pooled:
                lines.append(
                    f"re-plan latency [{label}] ({mode}): all "
                    f"{self.replications} replication(s) served from "
                    "cache; latency not re-measured"
                )
                continue
            stats = latency_summary(pooled)
            note = ""
            if self.cached.get(router_index):
                note = (
                    f" ({self.cached[router_index]} cached replication(s) "
                    "excluded)"
                )
            lines.append(
                f"re-plan latency [{label}] ({mode}): "
                f"n={stats['count']} p50={stats['p50_ms']:.2f}ms "
                f"p99={stats['p99_ms']:.2f}ms "
                f"mean={stats['mean_ms']:.2f}ms{note}"
            )
        if self.faults is None:
            return "\n".join(lines)
        for router_index, label in enumerate(self.labels):
            mode = self.modes[router_index]
            pooled = self.repair_latencies_s.get(router_index, [])
            if not pooled:
                lines.append(
                    f"recovery latency [{label}] ({mode}): no repair "
                    "attempts measured (cache hits or no disruptions)"
                )
                continue
            stats = latency_summary(pooled)
            lines.append(
                f"recovery latency [{label}] ({mode}): "
                f"n={stats['count']} p50={stats['p50_ms']:.2f}ms "
                f"p99={stats['p99_ms']:.2f}ms "
                f"mean={stats['mean_ms']:.2f}ms"
            )
        return "\n".join(lines)


def _metrics_from_entry(entry: Dict) -> Optional[ServeMetrics]:
    """Reconstruct cached metrics, rejecting malformed entries."""
    fields = {f.name for f in dataclasses.fields(ServeMetrics)}
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict) or set(metrics) != fields:
        return None
    values = {}
    for name in (
        "arrivals", "admitted", "rejected",
        "disruptions", "repaired", "dropped",
    ):
        value = metrics[name]
        if not isinstance(value, int) or isinstance(value, bool):
            return None
        values[name] = value
    for name in (
        "admission_ratio", "throughput", "mean_held", "mean_hold",
        "repair_ratio",
    ):
        value = metrics[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        values[name] = float(value)
    return ServeMetrics(**values)


def run_serve_experiment(
    scenario: Union[str, ScenarioSpec] = "paper-default",
    routers: Optional[Sequence] = None,
    arrivals: Union[str, ArrivalSpec, None] = None,
    duration: float = 200.0,
    warmup: float = 20.0,
    replications: int = 3,
    seed: Optional[int] = None,
    replan: str = "incremental",
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    record_trace: Optional[str] = None,
    faults: Union[str, FaultSpec, None] = None,
    repair: Union[str, RepairSpec, None] = None,
) -> ServeReport:
    """Serve one scenario under one arrival process, replicated.

    ``routers`` defaults to ALG-N-FUSION *without* Algorithm 4: the
    batch end-stage spends every leftover qubit widening the current
    plan, which in continuous operation would let each admitted flow
    starve all later arrivals.  ``seed`` defaults to the harness seed;
    ``replications`` is overridden by a trace's recorded count.
    ``record_trace`` writes the (Poisson) event streams to a replayable
    trace file and forces fresh execution (a cache hit has no events).

    ``faults`` turns on fault injection (a :class:`FaultSpec` or its
    string form); ``repair`` picks the recovery policy and defaults to
    ``reroute`` when faults are active.  A fault run also serves the
    same configuration fault-free (one recursive call, sharing the
    cache and workers) so the report can state throughput degradation.
    """
    from repro.routing.registry import parse_router_specs

    if replan not in REPLAN_MODES:
        raise ConfigurationError(
            f"replan mode must be one of {', '.join(REPLAN_MODES)}, "
            f"got {replan!r}"
        )
    scenario = as_scenario(scenario)
    arrivals = as_arrivals(
        arrivals if arrivals is not None else ArrivalSpec()
    )
    faults = as_faults(faults) if faults is not None else None
    if repair is not None and faults is None:
        raise ConfigurationError(
            "a repair policy needs an active fault spec; pass faults="
        )
    repair = as_repair(repair) if repair is not None else (
        RepairSpec() if faults is not None else None
    )
    if routers is None:
        routers = [
            spec.build()
            for spec in parse_router_specs("alg-n-fusion:include_alg4=false")
        ]
    routers = [
        router.build() if hasattr(router, "build") else router
        for router in routers
    ]
    reject_duplicate_labels(routers)
    if workers is None:
        workers = default_workers()
    if cache is None:
        cache = default_result_cache()

    trace_events: Optional[List[List[ArrivalEvent]]] = None
    if arrivals.kind == "trace":
        if record_trace is not None:
            raise ConfigurationError(
                "cannot --record-trace from a trace replay; it would "
                "copy the input file"
            )
        trace_events = read_trace(arrivals.file)
        replications = len(trace_events)
    fault_traces: Optional[List[List[FaultEvent]]] = None
    if faults is not None and faults.kind == "trace":
        fault_traces = read_fault_trace(faults.file)
        if trace_events is not None and len(fault_traces) != replications:
            raise ConfigurationError(
                f"fault trace records {len(fault_traces)} replication(s) "
                f"but the arrival trace records {replications}"
            )
        replications = len(fault_traces)
    if replications < 1:
        raise ConfigurationError(
            f"replications must be >= 1, got {replications}"
        )

    setting = scenario.setting(num_networks=replications, seed=seed)
    seeds = sample_seeds(setting)
    labels = [router_label(router) for router in routers]

    rows: Dict[Tuple[int, int], ServeMetrics] = {}
    cached: Dict[int, int] = {}
    tasks: List[ServeTask] = []
    keys: Dict[Tuple[int, int], str] = {}
    for router_index, router in enumerate(routers):
        for replication, sample_seed in enumerate(seeds):
            key = serve_key(
                scenario, router, arrivals, duration, warmup, sample_seed,
                faults=faults, repair=repair,
            )
            keys[(router_index, replication)] = key
            if cache is not None and record_trace is None:
                entry = cache.get_json(key, SERVE_KIND)
                metrics = (
                    _metrics_from_entry(entry) if entry is not None else None
                )
                if metrics is not None:
                    rows[(router_index, replication)] = metrics
                    cached[router_index] = cached.get(router_index, 0) + 1
                    continue
            tasks.append(
                ServeTask(
                    scenario=scenario,
                    router=router,
                    router_index=router_index,
                    replication=replication,
                    sample_seed=sample_seed,
                    arrivals=arrivals,
                    events=(
                        tuple(trace_events[replication])
                        if trace_events is not None
                        else None
                    ),
                    duration=duration,
                    warmup=warmup,
                    replan=replan,
                    collect_events=(
                        record_trace is not None and router_index == 0
                    ),
                    faults=faults,
                    fault_timeline=(
                        tuple(fault_traces[replication])
                        if fault_traces is not None
                        else None
                    ),
                    repair=repair,
                )
            )

    results = parallel_map(_execute_serve_task, tasks, workers)

    latencies: Dict[int, List[float]] = {}
    repair_latencies: Dict[int, List[float]] = {}
    modes: Dict[int, str] = {}
    recorded: Dict[int, List[ArrivalEvent]] = {}
    for task, result in zip(tasks, results):
        position = (result["router_index"], result["replication"])
        metrics = ServeMetrics(**result["metrics"])
        rows[position] = metrics
        latencies.setdefault(result["router_index"], []).extend(
            result["latencies_s"]
        )
        repair_latencies.setdefault(result["router_index"], []).extend(
            result["repair_latencies_s"]
        )
        modes[result["router_index"]] = result["mode"]
        if "events" in result:
            recorded[result["replication"]] = result["events"]
        if cache is not None:
            cache.put_json(
                keys[position], SERVE_KIND,
                {"metrics": result["metrics"]},
            )

    if record_trace is not None:
        write_trace(
            record_trace,
            [recorded[r] for r in range(replications)],
        )

    # A router whose replications all hit the cache never reported its
    # mode; derive it the way the session would have.
    mode_list = []
    for router_index, router in enumerate(routers):
        if router_index in modes:
            mode_list.append(modes[router_index])
        elif replan == "incremental" and hasattr(router, "route_online"):
            mode_list.append("incremental")
        else:
            mode_list.append("resnapshot")

    baseline_throughput: Optional[Dict[int, float]] = None
    if faults is not None:
        # The degradation line needs the fault-free companion run; it
        # shares cache and workers, so repeated fault runs pay for the
        # baseline once.
        baseline = run_serve_experiment(
            scenario=scenario,
            routers=routers,
            arrivals=arrivals,
            duration=duration,
            warmup=warmup,
            replications=replications,
            seed=seed,
            replan=replan,
            workers=workers,
            cache=cache,
        )
        baseline_throughput = {
            router_index: baseline.mean_metrics_for(router_index).throughput
            for router_index in range(len(routers))
        }

    return ServeReport(
        scenario=scenario,
        arrivals=arrivals,
        duration=duration,
        warmup=warmup,
        replications=replications,
        seed=seed if seed is not None else setting.seed,
        replan=replan,
        labels=labels,
        modes=mode_list,
        rows=rows,
        latencies_s=latencies,
        cached=cached,
        faults=faults,
        repair=repair,
        repair_latencies_s=repair_latencies,
        baseline_throughput=baseline_throughput,
    )

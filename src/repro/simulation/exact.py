"""Exact establishment probability of small flow-like graphs.

Enumerates every channel/switch outcome combination and sums the
probability of those where the demand's users stay connected — the exact
value that Equation 1 approximates and the Monte Carlo engines estimate.
Cost is ``2^(edges + switches)``, so this is for validation on small
flows (the evaluator refuses beyond a configurable element budget).

A conditioning decomposition keeps the common cases cheap: elements are
processed in a deterministic order and the recursion short-circuits as
soon as connectivity is decided, which prunes most of the outcome tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import SimulationError
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph

EdgeKey = Tuple[int, int]

#: Refuse exact evaluation beyond this many stochastic elements.
DEFAULT_MAX_ELEMENTS = 22


def exact_flow_rate(
    network: QuantumNetwork,
    flow: FlowLikeGraph,
    link_model: LinkModel,
    swap_model: SwapModel,
    max_elements: int = DEFAULT_MAX_ELEMENTS,
) -> float:
    """Exact establishment probability of *flow*.

    Raises :class:`~repro.exceptions.SimulationError` when the flow has
    more than *max_elements* stochastic elements (channels + switches).
    """
    edges = flow.edges()
    switches = [
        node for node in flow.nodes() if network.node(node).is_switch
    ]
    if len(edges) + len(switches) > max_elements:
        raise SimulationError(
            f"flow has {len(edges)} channels + {len(switches)} switches; "
            f"exact evaluation is capped at {max_elements} elements"
        )
    channel_probs = {
        (u, v): link_model.channel_probability(
            network.edge_length(u, v), flow.edge_width(u, v)
        )
        for u, v in edges
    }
    switch_probs = {
        node: swap_model.success_probability(flow.fusion_arity(node))
        for node in switches
    }
    elements: List[Tuple[str, object, float]] = [
        ("switch", node, switch_probs[node]) for node in switches
    ] + [("edge", key, channel_probs[key]) for key in edges]

    def connected(edge_state: Dict[EdgeKey, bool],
                  switch_state: Dict[int, bool]) -> Optional[bool]:
        """Tri-state connectivity under partial assignments.

        Returns True when source and destination are already connected
        through elements fixed alive, False when they cannot be connected
        even if every undecided element comes up alive, None otherwise.
        """
        def reachable(optimistic: bool) -> bool:
            adjacency: Dict[int, Set[int]] = {}
            for (u, v) in edges:
                edge_ok = edge_state.get((u, v))
                if edge_ok is None:
                    edge_ok = optimistic
                if not edge_ok:
                    continue
                endpoint_ok = True
                for node in (u, v):
                    if node in switch_probs:
                        state = switch_state.get(node)
                        if state is None:
                            state = optimistic
                        endpoint_ok &= state
                if not endpoint_ok:
                    continue
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
            frontier, seen = [flow.source], {flow.source}
            while frontier:
                node = frontier.pop()
                if node == flow.destination:
                    return True
                for nbr in adjacency.get(node, ()):
                    if nbr not in seen:
                        seen.add(nbr)
                        frontier.append(nbr)
            return False

        if reachable(optimistic=False):
            return True
        if not reachable(optimistic=True):
            return False
        return None

    def recurse(index: int, probability: float,
                edge_state: Dict[EdgeKey, bool],
                switch_state: Dict[int, bool]) -> float:
        decided = connected(edge_state, switch_state)
        if decided is True:
            return probability
        if decided is False:
            return 0.0
        kind, key, p = elements[index]
        total = 0.0
        for alive, weight in ((True, p), (False, 1.0 - p)):
            if weight == 0.0:
                continue
            if kind == "edge":
                edge_state[key] = alive  # type: ignore[index]
            else:
                switch_state[key] = alive  # type: ignore[index]
            total += recurse(index + 1, probability * weight,
                             edge_state, switch_state)
            if kind == "edge":
                del edge_state[key]  # type: ignore[arg-type]
            else:
                del switch_state[key]  # type: ignore[arg-type]
        return total

    if not edges:
        return 0.0
    return recurse(0, 1.0, {}, {})

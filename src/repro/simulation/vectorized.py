"""Vectorised Monte Carlo engine.

The reference :class:`~repro.simulation.engine.EntanglementProcessSimulator`
decides one trial at a time in pure Python; this engine evaluates *all*
trials of a flow simultaneously with numpy boolean algebra:

* channel survival is sampled as a ``trials x edges`` Bernoulli matrix
  (per-channel success ``1 - (1-p)^w``),
* switch fusion survival as a ``trials x switches`` matrix,
* establishment is undirected reachability from source to destination,
  computed by a synchronous frontier expansion over the flow's (small)
  node set — each expansion step is one vectorised sweep over edges.

Semantics are identical to the reference engine draw-for-draw (the test
suite checks agreement in distribution), at 1-2 orders of magnitude higher
throughput, which is what makes the validation benches cheap.

``plan_estimate`` can additionally sample **survival masks**: per trial
a network-wide Bernoulli keep/lose draw over every edge and switch
(``link_survival``/``switch_survival``), shared by all of the plan's
flows so one lost element fails every flow crossing it in that trial.
A masked-out edge behaves as a failed channel and a masked-out switch
as a failed fusion; the default ``1.0`` draws nothing, leaving the
estimation stream byte-identical to the loss-free engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.plan import RoutingPlan
from repro.simulation.monte_carlo import MonteCarloEstimate
from repro.utils.rng import RandomState, ensure_rng


class VectorizedProcessSimulator:
    """Batch Monte Carlo evaluation of flow establishment probabilities."""

    def __init__(
        self,
        network: QuantumNetwork,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
        rng: Optional[RandomState] = None,
    ):
        self.network = network
        self.link_model = link_model or LinkModel()
        self.swap_model = swap_model or SwapModel()
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------

    def _uniforms(
        self, trials: int, count: int, antithetic: bool
    ) -> np.ndarray:
        """A ``(trials, count)`` uniform draw matrix.

        With ``antithetic`` the first ``trials/2`` rows are fresh draws
        ``U`` and the rest their mirrors ``1 - U``, so trial ``i`` pairs
        with trial ``i + trials/2`` across every edge and node draw.
        Establishment is monotone in each uniform (success is
        ``u < p``), so the paired outcomes are negatively correlated —
        the classic antithetic-variates construction.
        """
        if not antithetic:
            return self._rng.uniform(size=(trials, count))
        draws = self._rng.uniform(size=(trials // 2, count))
        return np.concatenate([draws, 1.0 - draws], axis=0)

    def _survival_masks(
        self,
        trials: int,
        link_survival: float,
        switch_survival: float,
        antithetic: bool,
    ) -> "Tuple[Dict[Tuple[int, int], np.ndarray], Dict[int, np.ndarray]]":
        """Network-wide per-trial keep/lose masks.

        Drawn once per estimate in the network's canonical element order
        (sorted ``edge_keys()``, then ``switches()``), *before* any flow
        draws — a pure function of the estimation stream, shared across
        every flow of the plan.  Elements with survival ``1.0`` draw
        nothing.
        """
        edge_masks: Dict[Tuple[int, int], np.ndarray] = {}
        switch_masks: Dict[int, np.ndarray] = {}
        if link_survival != 1.0:
            edge_keys = sorted(self.network.edge_keys())
            draws = self._uniforms(trials, len(edge_keys), antithetic)
            for column, key in enumerate(edge_keys):
                edge_masks[key] = draws[:, column] < link_survival
        if switch_survival != 1.0:
            switches = list(self.network.switches())
            draws = self._uniforms(trials, len(switches), antithetic)
            for column, switch in enumerate(switches):
                switch_masks[switch] = draws[:, column] < switch_survival
        return edge_masks, switch_masks

    def simulate_flow(
        self,
        flow: FlowLikeGraph,
        trials: int,
        antithetic: bool = False,
        survival_masks: "Optional[Tuple[Dict, Dict]]" = None,
    ) -> np.ndarray:
        """Boolean establishment outcomes of shape ``(trials,)``."""
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if antithetic and trials % 2:
            raise ValueError(
                f"antithetic pairing needs an even trial count, got {trials}"
            )
        edges = flow.edges()
        nodes = flow.nodes()
        node_index = {node: i for i, node in enumerate(nodes)}
        num_nodes = len(nodes)

        # Channel survival matrix: trials x edges.
        channel_probs = np.array(
            [
                self.link_model.channel_probability(
                    self.network.edge_length(u, v), flow.edge_width(u, v)
                )
                for u, v in edges
            ]
        )
        channels_ok = (
            self._uniforms(trials, len(edges), antithetic) < channel_probs
        )

        # Node survival matrix: trials x nodes (users always survive).
        node_alive = np.ones((trials, num_nodes), dtype=bool)
        for node in nodes:
            if self.network.node(node).is_switch:
                q = self.swap_model.success_probability(flow.fusion_arity(node))
                node_alive[:, node_index[node]] = (
                    self._uniforms(trials, 1, antithetic)[:, 0] < q
                )

        # Infrastructure loss: a masked-out edge is a failed channel, a
        # masked-out switch a failed fusion, in exactly the trials the
        # network-wide draw lost them.
        if survival_masks is not None:
            edge_masks, switch_masks = survival_masks
            for column, (u, v) in enumerate(edges):
                key = (u, v) if u < v else (v, u)
                mask = edge_masks.get(key)
                if mask is not None:
                    channels_ok[:, column] &= mask
            for node in nodes:
                mask = switch_masks.get(node)
                if mask is not None:
                    node_alive[:, node_index[node]] &= mask

        # An edge is usable when its channel delivered and both endpoints
        # survived: trials x edges.
        endpoint_u = np.array([node_index[u] for u, _ in edges])
        endpoint_v = np.array([node_index[v] for _, v in edges])
        usable = (
            channels_ok
            & node_alive[:, endpoint_u]
            & node_alive[:, endpoint_v]
        )

        # Synchronous frontier expansion: reach starts at the source and
        # spreads across usable edges until a fixed point (at most
        # num_nodes sweeps, typically the flow diameter).
        reach = np.zeros((trials, num_nodes), dtype=bool)
        reach[:, node_index[flow.source]] = True
        for _ in range(num_nodes):
            spread_u = reach[:, endpoint_u] & usable
            spread_v = reach[:, endpoint_v] & usable
            new_reach = reach.copy()
            # Propagate across every edge in both directions; scatter with
            # logical_or.at because endpoints repeat across edges.
            np.logical_or.at(new_reach, (slice(None), endpoint_v), spread_u)
            np.logical_or.at(new_reach, (slice(None), endpoint_u), spread_v)
            if np.array_equal(new_reach, reach):
                break
            reach = new_reach
        return reach[:, node_index[flow.destination]]

    def flow_rate(self, flow: FlowLikeGraph, trials: int) -> float:
        """Empirical establishment probability of one flow."""
        return float(self.simulate_flow(flow, trials).mean())

    def plan_estimate(
        self,
        plan: RoutingPlan,
        trials: int,
        antithetic: bool = False,
        link_survival: float = 1.0,
        switch_survival: float = 1.0,
    ) -> MonteCarloEstimate:
        """Monte Carlo estimate of a plan's network entanglement rate.

        With ``antithetic`` the trials run as negatively correlated
        mirror pairs; the mean is unchanged in expectation while the
        standard error — computed over the ``trials/2`` independent
        pair means, the valid estimator under pairing — shrinks at
        equal trial count.  ``link_survival``/``switch_survival`` below
        ``1.0`` additionally sample per-trial network-wide element loss
        (see the module docstring); the masks mirror under antithetic
        pairing like every other draw.
        """
        flows = plan.flows()
        if not flows:
            return MonteCarloEstimate(0.0, 0.0, trials)
        survival_masks = None
        if link_survival != 1.0 or switch_survival != 1.0:
            survival_masks = self._survival_masks(
                trials, link_survival, switch_survival, antithetic
            )
        totals = np.zeros(trials)
        for flow in flows:
            totals += self.simulate_flow(
                flow, trials, antithetic=antithetic,
                survival_masks=survival_masks,
            ).astype(float)
        if antithetic:
            half = trials // 2
            pair_means = (totals[:half] + totals[half:]) / 2.0
            paired = MonteCarloEstimate.from_outcomes(list(pair_means))
            return MonteCarloEstimate(paired.mean, paired.stderr, trials)
        return MonteCarloEstimate.from_outcomes(list(totals))

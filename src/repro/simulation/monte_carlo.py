"""Monte Carlo aggregation helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.plan import RoutingPlan
from repro.simulation.engine import EntanglementProcessSimulator
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A mean with its standard error and trial count."""

    mean: float
    stderr: float
    trials: int

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval (default 95%)."""
        return (self.mean - z * self.stderr, self.mean + z * self.stderr)

    @staticmethod
    def from_outcomes(outcomes: Sequence[float]) -> "MonteCarloEstimate":
        """Estimate from raw per-trial outcomes (0/1 or totals)."""
        n = len(outcomes)
        if n == 0:
            raise ValueError("cannot estimate from zero outcomes")
        mean = sum(outcomes) / n
        if n == 1:
            return MonteCarloEstimate(mean, float("inf"), 1)
        variance = sum((x - mean) ** 2 for x in outcomes) / (n - 1)
        return MonteCarloEstimate(mean, math.sqrt(variance / n), n)


def estimate_plan_rate(
    network: QuantumNetwork,
    plan: RoutingPlan,
    link_model: Optional[LinkModel] = None,
    swap_model: Optional[SwapModel] = None,
    trials: int = 500,
    rng: Optional[RandomState] = None,
) -> MonteCarloEstimate:
    """Monte Carlo estimate of a plan's network entanglement rate.

    Per trial, each flow's establishment (0/1) is summed into a network
    total; the estimate is over per-trial totals, so its standard error
    reflects cross-demand variance correctly.
    """
    rng = ensure_rng(rng)
    simulator = EntanglementProcessSimulator(network, link_model, swap_model, rng)
    flows = plan.flows()
    totals = []
    for _ in range(trials):
        total = 0.0
        for flow in flows:
            sample = simulator.sampler.sample(flow)
            total += 1.0 if simulator.establishment(flow, sample) else 0.0
        totals.append(total)
    return MonteCarloEstimate.from_outcomes(totals)

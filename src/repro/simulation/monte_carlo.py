"""Monte Carlo aggregation helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.plan import RoutingPlan
from repro.simulation.engine import EntanglementProcessSimulator
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A mean with its standard error and trial count."""

    mean: float
    stderr: float
    trials: int

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval (default 95%)."""
        return (self.mean - z * self.stderr, self.mean + z * self.stderr)

    @staticmethod
    def from_outcomes(outcomes: Sequence[float]) -> "MonteCarloEstimate":
        """Estimate from raw per-trial outcomes (0/1 or totals)."""
        n = len(outcomes)
        if n == 0:
            raise ValueError("cannot estimate from zero outcomes")
        mean = sum(outcomes) / n
        if n == 1:
            return MonteCarloEstimate(mean, float("inf"), 1)
        variance = sum((x - mean) ** 2 for x in outcomes) / (n - 1)
        return MonteCarloEstimate(mean, math.sqrt(variance / n), n)


def estimate_plan_rate(
    network: QuantumNetwork,
    plan: RoutingPlan,
    link_model: Optional[LinkModel] = None,
    swap_model: Optional[SwapModel] = None,
    trials: int = 500,
    rng: Optional[RandomState] = None,
    link_survival: float = 1.0,
    switch_survival: float = 1.0,
) -> MonteCarloEstimate:
    """Monte Carlo estimate of a plan's network entanglement rate.

    Per trial, each flow's establishment (0/1) is summed into a network
    total; the estimate is over per-trial totals, so its standard error
    reflects cross-demand variance correctly.

    ``link_survival``/``switch_survival`` below ``1.0`` draw one
    network-wide keep/lose mask per trial (canonical element order:
    sorted ``edge_keys()``, then ``switches()``) *before* the trial's
    flow draws; a lost edge zeroes its channel and a lost switch fails
    its fusion in every flow of that trial — the same semantics, in
    distribution, as the vectorised engine's masks.  The default
    ``1.0`` draws nothing, leaving the loss-free stream untouched.
    """
    rng = ensure_rng(rng)
    simulator = EntanglementProcessSimulator(network, link_model, swap_model, rng)
    flows = plan.flows()
    mask_survival = link_survival != 1.0 or switch_survival != 1.0
    edge_keys = sorted(network.edge_keys()) if mask_survival else []
    switches = list(network.switches()) if mask_survival else []
    totals = []
    for _ in range(trials):
        lost_edges = set()
        lost_switches = set()
        if mask_survival:
            if link_survival != 1.0:
                for key in edge_keys:
                    if not rng.uniform() < link_survival:
                        lost_edges.add(key)
            if switch_survival != 1.0:
                for switch in switches:
                    if not rng.uniform() < switch_survival:
                        lost_switches.add(switch)
        total = 0.0
        for flow in flows:
            sample = simulator.sampler.sample(flow)
            if lost_edges or lost_switches:
                sample = _mask_sample(sample, lost_edges, lost_switches)
            total += 1.0 if simulator.establishment(flow, sample) else 0.0
        totals.append(total)
    return MonteCarloEstimate.from_outcomes(totals)


def _mask_sample(sample, lost_edges, lost_switches):
    """*sample* with the trial's lost infrastructure failed outright."""
    from repro.simulation.sampler import TrialSample

    return TrialSample(
        link_successes={
            key: 0 if key in lost_edges else count
            for key, count in sample.link_successes.items()
        },
        switch_successes={
            node: False if node in lost_switches else ok
            for node, ok in sample.switch_successes.items()
        },
    )

"""Protocol-level Phase III simulation on the quantum substrate.

Where :class:`~repro.simulation.engine.EntanglementProcessSimulator`
decides trials by graph connectivity, this engine *executes* the protocol
on the symbolic :class:`~repro.quantum.tracker.EntanglementTracker`:

1. Every surviving channel materialises one Bell pair between per-node
   qubits.
2. The control plane picks a source->destination route through the
   surviving channels and asks each route switch to GHZ-fuse its two route
   qubits.  A fusion failure destroys the states it touched (the tracker's
   failure semantics).
3. Because link successes are heralded, the protocol *retries*: after a
   failed fusion, any remaining disjoint route through still-alive
   resources is attempted.  Retrying can only help, so this engine's
   establishment probability dominates the reference engine's (a property
   the test suite checks), and the two coincide exactly on single paths.

The establishment criterion is genuinely quantum-mechanical bookkeeping:
the trial succeeds iff a source qubit and a destination qubit end up in
the same GHZ group.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.quantum.tracker import EntanglementTracker
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.plan import RoutingPlan
from repro.simulation.sampler import TrialSample, TrialSampler
from repro.utils.rng import RandomState, ensure_rng

EdgeKey = Tuple[int, int]


class QuantumProtocolSimulator:
    """Executes Phase III on the GHZ-group tracker, with heralded retries."""

    def __init__(
        self,
        network: QuantumNetwork,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
        rng: Optional[RandomState] = None,
    ):
        self.network = network
        self.link_model = link_model or LinkModel()
        self.swap_model = swap_model or SwapModel()
        self._rng = ensure_rng(rng)
        self._sampler = TrialSampler(
            network, self.link_model, self.swap_model, self._rng
        )

    # ------------------------------------------------------------------

    def establishment(self, flow: FlowLikeGraph, sample: TrialSample) -> bool:
        """Run one trial's fusions on the tracker; True iff a source qubit
        and a destination qubit join the same GHZ group."""
        tracker = EntanglementTracker()
        # One qubit id per (node, edge) endpoint role; ids are dense ints.
        qubit_ids: Dict[Tuple[int, EdgeKey], int] = {}
        alive_edges: Set[EdgeKey] = set()
        next_id = 0
        for u, v in flow.edges():
            if not sample.channel_ok(u, v):
                continue
            key = (u, v)
            for node in (u, v):
                qubit_ids[(node, key)] = next_id
                next_id += 1
            tracker.create_bell_pair(qubit_ids[(u, key)], qubit_ids[(v, key)])
            alive_edges.add(key)

        attempted_switches: Set[int] = set()
        while True:
            route = self._find_route(flow, alive_edges, attempted_switches)
            if route is None:
                return False
            success = True
            for node in route[1:-1]:
                attempted_switches.add(node)
                incoming, outgoing = self._route_edges(route, node)
                measured = [
                    qubit_ids[(node, incoming)],
                    qubit_ids[(node, outgoing)],
                ]
                fused = tracker.fuse(
                    measured, success=sample.switch_successes.get(node, False)
                )
                if fused is None:
                    # The failed fusion destroyed the states it touched:
                    # remove every edge whose Bell pair died.
                    for key in list(alive_edges):
                        u, v = key
                        if not tracker.is_entangled(qubit_ids[(u, key)]):
                            alive_edges.discard(key)
                    success = False
                    break
            if not success:
                continue
            if len(route) == 2:
                # Direct user-user channel (no fusion needed).
                key = self._ekey(route[0], route[1])
                return tracker.same_group(
                    qubit_ids[(route[0], key)], qubit_ids[(route[1], key)]
                )
            first_key = self._ekey(route[0], route[1])
            last_key = self._ekey(route[-2], route[-1])
            return tracker.same_group(
                qubit_ids[(route[0], first_key)],
                qubit_ids[(route[-1], last_key)],
            )

    def _find_route(
        self,
        flow: FlowLikeGraph,
        alive_edges: Set[EdgeKey],
        attempted_switches: Set[int],
    ) -> Optional[List[int]]:
        """BFS a source->destination route through alive channels avoiding
        switches whose fusion already failed (attempted switches whose
        resources died are unusable; successful ones consumed theirs)."""
        adjacency: Dict[int, List[int]] = {}
        for u, v in alive_edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        source, destination = flow.source, flow.destination
        if source not in adjacency:
            return None
        parents: Dict[int, int] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for nbr in adjacency.get(node, ()):
                    if nbr in parents:
                        continue
                    if nbr != destination and (
                        self.network.node(nbr).is_user
                        or nbr in attempted_switches
                    ):
                        continue
                    parents[nbr] = node
                    if nbr == destination:
                        route = [destination]
                        while route[-1] != source:
                            route.append(parents[route[-1]])
                        route.reverse()
                        return route
                    next_frontier.append(nbr)
            frontier = next_frontier
        return None

    @staticmethod
    def _ekey(a: int, b: int) -> EdgeKey:
        return (a, b) if a < b else (b, a)

    @staticmethod
    def _route_edges(route: List[int], node: int) -> Tuple[EdgeKey, EdgeKey]:
        index = route.index(node)
        a = (route[index - 1], node)
        b = (node, route[index + 1])
        return (
            (a[0], a[1]) if a[0] < a[1] else (a[1], a[0]),
            (b[0], b[1]) if b[0] < b[1] else (b[1], b[0]),
        )

    # ------------------------------------------------------------------

    def simulate_flow(self, flow: FlowLikeGraph, trials: int) -> List[bool]:
        """Per-trial establishment outcomes for one flow."""
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        return [
            self.establishment(flow, self._sampler.sample(flow))
            for _ in range(trials)
        ]

    def flow_rate(self, flow: FlowLikeGraph, trials: int) -> float:
        """Empirical establishment probability of one flow."""
        outcomes = self.simulate_flow(flow, trials)
        return sum(outcomes) / len(outcomes)

    def plan_rate(self, plan: RoutingPlan, trials: int) -> float:
        """Empirical network entanglement rate of a routing plan."""
        return sum(self.flow_rate(flow, trials) for flow in plan.flows())

"""Reference Phase III semantics: survival connectivity.

A demanded state is established in a trial iff, after removing failed
channels (no surviving link) and failed switches (fusion failure), the
flow-like graph still connects the demand's source user to its destination
user.  This is the exact event whose probability the paper's Equation 1
approximates with a branch-independence recursion.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.plan import RoutingPlan
from repro.simulation.sampler import TrialSample, TrialSampler
from repro.utils.rng import RandomState, ensure_rng


class EntanglementProcessSimulator:
    """Monte Carlo simulator of the paper's three-phase process."""

    def __init__(
        self,
        network: QuantumNetwork,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
        rng: Optional[RandomState] = None,
    ):
        self.network = network
        self.link_model = link_model or LinkModel()
        self.swap_model = swap_model or SwapModel()
        self._rng = ensure_rng(rng)
        self._sampler = TrialSampler(
            network, self.link_model, self.swap_model, self._rng
        )

    @property
    def sampler(self) -> TrialSampler:
        """The trial sampler (shared so engines can be compared per draw)."""
        return self._sampler

    # ------------------------------------------------------------------

    def establishment(self, flow: FlowLikeGraph, sample: TrialSample) -> bool:
        """Decide one trial: does *sample* leave source and destination
        connected through surviving channels and switches?"""
        adjacency: Dict[int, Set[int]] = {}
        for u, v in flow.edges():
            if not sample.channel_ok(u, v):
                continue
            if not self._node_alive(u, sample) or not self._node_alive(v, sample):
                continue
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        source, destination = flow.source, flow.destination
        if source not in adjacency:
            return False
        frontier = [source]
        seen = {source}
        while frontier:
            node = frontier.pop()
            for nbr in adjacency.get(node, ()):
                if nbr == destination:
                    return True
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return False

    def _node_alive(self, node: int, sample: TrialSample) -> bool:
        if self.network.node(node).is_user:
            return True
        return sample.switch_successes.get(node, False)

    # ------------------------------------------------------------------

    def simulate_flow(self, flow: FlowLikeGraph, trials: int) -> List[bool]:
        """Per-trial establishment outcomes for one flow."""
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        return [
            self.establishment(flow, self._sampler.sample(flow))
            for _ in range(trials)
        ]

    def flow_rate(self, flow: FlowLikeGraph, trials: int) -> float:
        """Empirical establishment probability of one flow."""
        outcomes = self.simulate_flow(flow, trials)
        return sum(outcomes) / len(outcomes)

    def plan_rate(self, plan: RoutingPlan, trials: int) -> float:
        """Empirical network entanglement rate of a routing plan."""
        return sum(self.flow_rate(flow, trials) for flow in plan.flows())

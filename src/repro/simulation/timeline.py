"""Time-slotted operation and waiting-time statistics.

The paper's entanglement process (Section III-B) is one synchronised
attempt: Phase III either delivers each demanded state or not.  Deployed
networks repeat the process every time slot, so the operational quantities
are *throughput* (states delivered per slot) and *waiting time* (slots
until a pair first shares a state — the metric Shchukin et al. study for
repeater chains).  Slots are independent, which makes the per-demand slot
outcomes Bernoulli and the waiting time geometric with mean ``1/rate``;
the simulator measures both empirically so the analytic rates can be
checked end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.plan import RoutingPlan
from repro.simulation.vectorized import VectorizedProcessSimulator
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class TimelineResult:
    """Outcome of a multi-slot run.

    Attributes
    ----------
    num_slots:
        Simulated slots.
    delivered_per_demand:
        Total states delivered per demand over the run.
    throughput_per_slot:
        Mean states delivered per slot across the network.
    waiting_time:
        Per demand: slots until the first delivery, or ``None`` if the
        demand never succeeded within the run.
    """

    num_slots: int
    delivered_per_demand: Dict[int, int]
    throughput_per_slot: float
    waiting_time: Dict[int, Optional[int]]

    @property
    def total_delivered(self) -> int:
        """Total states delivered across all demands."""
        return sum(self.delivered_per_demand.values())

    def mean_waiting_time(self) -> Optional[float]:
        """Mean waiting time over demands that succeeded at least once."""
        observed = [w for w in self.waiting_time.values() if w is not None]
        if not observed:
            return None
        return sum(observed) / len(observed)


class TimeSlottedSimulator:
    """Repeat the Phase III process over independent time slots."""

    def __init__(
        self,
        network: QuantumNetwork,
        link_model: Optional[LinkModel] = None,
        swap_model: Optional[SwapModel] = None,
        rng: Optional[RandomState] = None,
    ):
        self.network = network
        self.link_model = link_model or LinkModel()
        self.swap_model = swap_model or SwapModel()
        self._rng = ensure_rng(rng)
        self._engine = VectorizedProcessSimulator(
            network, self.link_model, self.swap_model, self._rng
        )

    def run(self, plan: RoutingPlan, num_slots: int) -> TimelineResult:
        """Simulate *num_slots* independent slots of *plan*."""
        if num_slots < 1:
            raise SimulationError(f"num_slots must be >= 1, got {num_slots}")
        delivered: Dict[int, int] = {}
        waiting: Dict[int, Optional[int]] = {}
        total = 0
        for flow in plan.flows():
            outcomes = self._engine.simulate_flow(flow, num_slots)
            count = int(outcomes.sum())
            delivered[flow.demand_id] = count
            total += count
            if count:
                waiting[flow.demand_id] = int(np.argmax(outcomes)) + 1
            else:
                waiting[flow.demand_id] = None
        return TimelineResult(
            num_slots=num_slots,
            delivered_per_demand=delivered,
            throughput_per_slot=total / num_slots,
            waiting_time=waiting,
        )

"""Sampling one Phase III outcome for a flow-like graph.

Both simulation engines consume the same :class:`TrialSample` so their
establishment decisions can be compared draw-for-draw in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.graph import QuantumNetwork
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.utils.rng import RandomState, ensure_rng

EdgeKey = Tuple[int, int]


@dataclass(frozen=True)
class TrialSample:
    """One sampled Phase III outcome for one flow-like graph.

    Attributes
    ----------
    link_successes:
        Per edge, how many of the channel's parallel links produced a
        Bell pair (the channel is usable iff at least one did).
    switch_successes:
        Per switch in the flow, whether its GHZ fusion would succeed this
        trial (sampled once per switch per state, the paper's model).
    """

    link_successes: Dict[EdgeKey, int]
    switch_successes: Dict[int, bool]

    def channel_ok(self, u: int, v: int) -> bool:
        """True iff edge (*u*, *v*) delivered at least one Bell pair."""
        key = (u, v) if u < v else (v, u)
        return self.link_successes.get(key, 0) > 0


class TrialSampler:
    """Draws :class:`TrialSample` objects for a flow-like graph."""

    def __init__(
        self,
        network: QuantumNetwork,
        link_model: LinkModel,
        swap_model: SwapModel,
        rng: RandomState = None,
    ):
        self._network = network
        self._link_model = link_model
        self._swap_model = swap_model
        self._rng = ensure_rng(rng)

    def sample(self, flow: FlowLikeGraph) -> TrialSample:
        """Sample link- and fusion-level outcomes for one trial."""
        link_successes: Dict[EdgeKey, int] = {}
        for (u, v), width in flow.edge_widths().items():
            p = self._link_model.success_probability(
                self._network.edge_length(u, v)
            )
            link_successes[(u, v)] = int(self._rng.binomial(width, p))
        switch_successes: Dict[int, bool] = {}
        for node in flow.nodes():
            if self._network.node(node).is_switch:
                q = self._swap_model.success_probability(
                    flow.fusion_arity(node)
                )
                switch_successes[node] = bool(self._rng.uniform() < q)
        return TrialSample(link_successes, switch_successes)

"""Phase I-III entanglement-process simulation.

The routing layer's entanglement rate (paper Eq. 1) is an *analytic
approximation* (it treats branch subtrees of a flow-like graph as
independent).  This package provides the ground truth:

* :class:`~repro.simulation.sampler.TrialSampler` — samples one Phase III
  outcome: per-channel link successes and per-switch fusion successes.
* :class:`~repro.simulation.engine.EntanglementProcessSimulator` — the
  reference semantics: a state is established iff the surviving channels
  and switches still connect the demand's users.
* :class:`~repro.simulation.quantum_engine.QuantumProtocolSimulator` — a
  protocol-level simulation that executes the fusions on the symbolic
  :class:`~repro.quantum.tracker.EntanglementTracker` (with heralded-retry
  adaptivity), closing the loop to the quantum substrate.
* :class:`~repro.simulation.monte_carlo.MonteCarloEstimate` — mean / CI
  aggregation helpers.
"""

from repro.simulation.sampler import TrialSample, TrialSampler
from repro.simulation.engine import EntanglementProcessSimulator
from repro.simulation.quantum_engine import QuantumProtocolSimulator
from repro.simulation.monte_carlo import MonteCarloEstimate, estimate_plan_rate
from repro.simulation.vectorized import VectorizedProcessSimulator
from repro.simulation.exact import exact_flow_rate
from repro.simulation.timeline import TimelineResult, TimeSlottedSimulator

__all__ = [
    "TrialSample",
    "TrialSampler",
    "EntanglementProcessSimulator",
    "QuantumProtocolSimulator",
    "MonteCarloEstimate",
    "estimate_plan_rate",
    "VectorizedProcessSimulator",
    "exact_flow_rate",
    "TimeSlottedSimulator",
    "TimelineResult",
]

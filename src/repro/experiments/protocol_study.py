"""Protocol-timing study: what the analytic model hides.

Sweeps the memory coherence time and measures the timed-protocol
establishment rate of an ALG-N-FUSION plan against its analytic Equation 1
rate.  Three regimes emerge:

* **memory-starved** — coherence shorter than a link round trip: nothing
  survives to the fusions;
* **transition** — establishment climbs towards the analytic rate;
* **time-multiplexed** — with long slots the protocol retries failed
  links and *exceeds* the single-attempt analytic rate (the space-time
  multiplexing effect of ref. [21]).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import (
    ExperimentSetting,
    default_workers,
    is_full_run,
)
from repro.experiments.harness import parallel_map
from repro.experiments.runner import SweepResult
from repro.network.builder import build_network
from repro.network.demands import generate_demands
from repro.protocol.hardware import HardwareTimings
from repro.protocol.simulator import ProtocolSimulator
from repro.routing.registry import make_router
from repro.utils.rng import ensure_rng

#: Coherence times swept (seconds).
COHERENCE_VALUES = (0.001, 0.01, 0.1, 1.0)


def _coherence_point(args) -> Tuple[float, int]:
    """One sweep point: timed-protocol totals at one coherence time.

    Top-level so the sweep can fan points out over worker processes; the
    simulator draws from a fresh fixed-seed generator per point, so the
    result is independent of which process runs it.
    """
    network, flows, link, swap, slot_duration_s, coherence, slots = args
    timings = HardwareTimings(
        coherence_time_s=coherence, slot_duration_s=slot_duration_s
    )
    simulator = ProtocolSimulator(network, link, swap, timings, ensure_rng(4040))
    total = 0.0
    expiry = 0
    for flow in flows:
        stats = simulator.run(flow, slots)
        total += stats.establishment_rate
        expiry += stats.failures["memory_expiry"]
    return total, expiry


def protocol_coherence_study(
    quick: Optional[bool] = None,
    slot_duration_s: float = 0.5,
    coherence_values: Sequence[float] = COHERENCE_VALUES,
    workers: Optional[int] = None,
) -> SweepResult:
    """Establishment rate vs memory coherence time for one routed plan."""
    if quick is None:
        quick = not is_full_run()
    setting = ExperimentSetting(fixed_p=0.4, seed=1717)
    setting = setting.scaled_for_quick_run() if quick else setting
    slots = 150 if quick else 600

    rng = ensure_rng(setting.seed)
    network = build_network(setting.network, rng)
    demands = generate_demands(network, setting.num_states, rng)
    link, swap = setting.link_model(), setting.swap_model()
    result = make_router("alg-n-fusion").route(network, demands, link, swap)
    flows = result.plan.flows()

    sweep = SweepResult(
        title=(
            "Protocol study: establishment vs memory coherence time "
            f"(slot {slot_duration_s}s; analytic rate "
            f"{result.total_rate:.2f})"
        ),
        x_label="coherence_s",
        x_values=list(coherence_values),
    )
    points = parallel_map(
        _coherence_point,
        [
            (network, flows, link, swap, slot_duration_s, coherence, slots)
            for coherence in coherence_values
        ],
        workers=default_workers() if workers is None else workers,
    )
    for total, expiry in points:
        sweep.add_point(
            {
                "protocol rate": total,
                "analytic rate": result.total_rate,
                "expiry failures": float(expiry),
            }
        )
    return sweep

"""Figure 8 — entanglement rate vs. quantum parameters.

* 8a: uniform link success probability p in {0.1, 0.2, 0.3, 0.4} (the
  paper fixes p across links here to remove topology randomness).
* 8b: switch swapping success probability q in {0.3, 0.5, 0.7, 0.9}.

Both sweeps accept a base ``scenario`` — the swept parameter overrides
the scenario's value at each x value, everything else (topology,
demand model, the other hardware knobs) comes from the scenario.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting, is_full_run
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.scenarios import as_setting

P_VALUES = (0.1, 0.2, 0.3, 0.4)
Q_VALUES = (0.3, 0.5, 0.7, 0.9)


def fig8a_link_probability(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenario=None,
) -> SweepResult:
    """Run the Figure 8a sweep over the uniform link success probability."""
    if quick is None:
        quick = not is_full_run()
    base = as_setting(scenario) if scenario is not None else ExperimentSetting()
    settings = []
    for p in P_VALUES:
        setting = base.with_updates(fixed_p=p)
        if quick:
            setting = setting.scaled_for_quick_run()
        settings.append(setting)
    return run_sweep(
        title="Figure 8a: entanglement rate vs. link success probability p",
        x_label="p",
        x_values=list(P_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )


def fig8b_swap_probability(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenario=None,
) -> SweepResult:
    """Run the Figure 8b sweep over the swapping success probability."""
    if quick is None:
        quick = not is_full_run()
    base = as_setting(scenario) if scenario is not None else ExperimentSetting()
    settings = []
    for q in Q_VALUES:
        setting = base.with_updates(swap_q=q)
        if quick:
            setting = setting.scaled_for_quick_run()
        settings.append(setting)
    return run_sweep(
        title="Figure 8b: entanglement rate vs. swapping success probability q",
        x_label="q",
        x_values=list(Q_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )

"""Figure 9 — entanglement rate vs. network parameters.

* 9a: qubits per switch in {6, 8, 10, 12}
* 9b: number of switches in {50, 100, 200, 400}
* 9c: number of demanded states in {10, 20, 30, 40}
* 9d: average switch degree in {5, 10, 15, 20}
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting, is_full_run
from repro.experiments.runner import SweepResult, run_sweep

QUBIT_VALUES = (6, 8, 10, 12)
SWITCH_VALUES = (50, 100, 200, 400)
STATE_VALUES = (10, 20, 30, 40)
DEGREE_VALUES = (5, 10, 15, 20)


def _base(quick: bool) -> ExperimentSetting:
    setting = ExperimentSetting()
    return setting.scaled_for_quick_run() if quick else setting


def fig9a_qubits(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> SweepResult:
    """Run the Figure 9a sweep over switch qubit capacity."""
    if quick is None:
        quick = not is_full_run()
    settings = []
    for capacity in QUBIT_VALUES:
        setting = _base(quick)
        setting = setting.with_updates(
            network=setting.network.with_updates(qubit_capacity=capacity)
        )
        settings.append(setting)
    return run_sweep(
        title="Figure 9a: entanglement rate vs. qubits per switch",
        x_label="qubits",
        x_values=list(QUBIT_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
    )


def fig9b_switches(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> SweepResult:
    """Run the Figure 9b sweep over the number of switches."""
    if quick is None:
        quick = not is_full_run()
    settings = []
    for count in SWITCH_VALUES:
        setting = ExperimentSetting()
        setting = setting.with_updates(
            network=setting.network.with_updates(num_switches=count)
        )
        if quick:
            # Keep the sweep's x values; only shrink the averaging.
            setting = setting.with_updates(num_networks=1)
        settings.append(setting)
    return run_sweep(
        title="Figure 9b: entanglement rate vs. number of switches",
        x_label="switches",
        x_values=list(SWITCH_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
    )


def fig9c_states(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> SweepResult:
    """Run the Figure 9c sweep over the number of demanded states."""
    if quick is None:
        quick = not is_full_run()
    settings = []
    for states in STATE_VALUES:
        setting = _base(quick)
        setting = setting.with_updates(num_states=states)
        settings.append(setting)
    return run_sweep(
        title="Figure 9c: entanglement rate vs. number of demanded states",
        x_label="states",
        x_values=list(STATE_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
    )


def fig9d_degree(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> SweepResult:
    """Run the Figure 9d sweep over the average switch degree."""
    if quick is None:
        quick = not is_full_run()
    settings = []
    for degree in DEGREE_VALUES:
        setting = _base(quick)
        setting = setting.with_updates(
            network=setting.network.with_updates(average_degree=float(degree))
        )
        settings.append(setting)
    return run_sweep(
        title="Figure 9d: entanglement rate vs. average switch degree",
        x_label="degree",
        x_values=list(DEGREE_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
    )

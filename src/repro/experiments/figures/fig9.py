"""Figure 9 — entanglement rate vs. network parameters.

* 9a: qubits per switch in {6, 8, 10, 12}
* 9b: number of switches in {50, 100, 200, 400}
* 9c: number of demanded states in {10, 20, 30, 40}
* 9d: average switch degree in {5, 10, 15, 20}

``fig9b_ext_switches`` extends 9b beyond the paper (800, 1600
switches); the extension lands only in full (``REPRO_FULL``) runs.

Every sweep accepts a base ``scenario`` (the swept parameter overrides
the scenario's value at each x value) and an ``mc_overlay`` estimator
appending ``[MC]`` validation columns next to the analytic series.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting, is_full_run
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.scenarios import as_setting

QUBIT_VALUES = (6, 8, 10, 12)
SWITCH_VALUES = (50, 100, 200, 400)
STATE_VALUES = (10, 20, 30, 40)
DEGREE_VALUES = (5, 10, 15, 20)

#: Beyond-paper switch counts for the extended 9b sweep.
EXTENDED_SWITCH_VALUES = SWITCH_VALUES + (800, 1600)

#: Averaging for the 800/1600-switch tail: fewer samples keep the
#: nightly full tier tractable while the paper-range points retain the
#: paper's averaging (and share cache entries with plain fig9b).
EXTENDED_TAIL_NETWORKS = 2


def _base(quick: bool, scenario=None) -> ExperimentSetting:
    setting = (
        as_setting(scenario) if scenario is not None else ExperimentSetting()
    )
    return setting.scaled_for_quick_run() if quick else setting


def fig9a_qubits(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenario=None,
) -> SweepResult:
    """Run the Figure 9a sweep over switch qubit capacity."""
    if quick is None:
        quick = not is_full_run()
    settings = []
    for capacity in QUBIT_VALUES:
        setting = _base(quick, scenario)
        setting = setting.with_updates(
            network=setting.network.with_updates(qubit_capacity=capacity)
        )
        settings.append(setting)
    return run_sweep(
        title="Figure 9a: entanglement rate vs. qubits per switch",
        x_label="qubits",
        x_values=list(QUBIT_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )


def fig9b_switches(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenario=None,
) -> SweepResult:
    """Run the Figure 9b sweep over the number of switches."""
    if quick is None:
        quick = not is_full_run()
    base = as_setting(scenario) if scenario is not None else ExperimentSetting()
    settings = []
    for count in SWITCH_VALUES:
        setting = base.with_updates(
            network=base.network.with_updates(num_switches=count)
        )
        if quick:
            # Keep the sweep's x values; only shrink the averaging.
            setting = setting.with_updates(num_networks=1)
        settings.append(setting)
    return run_sweep(
        title="Figure 9b: entanglement rate vs. number of switches",
        x_label="switches",
        x_values=list(SWITCH_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )


def fig9b_ext_switches(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenario=None,
) -> SweepResult:
    """Run the extended Figure 9b-style sweep over switch counts.

    Extends the paper's x axis with 800 and 1600 switches — feasible
    because the task harness spreads each point's (sample, router) grid
    over worker processes and caches the series.  The extension lands
    behind ``REPRO_FULL`` (or ``quick=False``): a quick run keeps the
    paper's grid, bit-identical to :func:`fig9b_switches`, so both
    share cache entries.  The 800/1600 tail averages
    ``EXTENDED_TAIL_NETWORKS`` samples instead of the paper's five.
    """
    if quick is None:
        quick = not is_full_run()
    values = SWITCH_VALUES if quick else EXTENDED_SWITCH_VALUES
    base = as_setting(scenario) if scenario is not None else ExperimentSetting()
    settings = []
    for count in values:
        setting = base.with_updates(
            network=base.network.with_updates(num_switches=count)
        )
        if quick:
            # Keep the sweep's x values; only shrink the averaging.
            setting = setting.with_updates(num_networks=1)
        elif count not in SWITCH_VALUES:
            setting = setting.with_updates(
                num_networks=EXTENDED_TAIL_NETWORKS
            )
        settings.append(setting)
    return run_sweep(
        title=(
            "Figure 9b (extended): entanglement rate vs. number of "
            "switches"
        ),
        x_label="switches",
        x_values=list(values),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )


def fig9c_states(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenario=None,
) -> SweepResult:
    """Run the Figure 9c sweep over the number of demanded states."""
    if quick is None:
        quick = not is_full_run()
    settings = []
    for states in STATE_VALUES:
        setting = _base(quick, scenario)
        setting = setting.with_updates(num_states=states)
        settings.append(setting)
    return run_sweep(
        title="Figure 9c: entanglement rate vs. number of demanded states",
        x_label="states",
        x_values=list(STATE_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )


def fig9d_degree(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenario=None,
) -> SweepResult:
    """Run the Figure 9d sweep over the average switch degree."""
    if quick is None:
        quick = not is_full_run()
    settings = []
    for degree in DEGREE_VALUES:
        setting = _base(quick, scenario)
        setting = setting.with_updates(
            network=setting.network.with_updates(average_degree=float(degree))
        )
        settings.append(setting)
    return run_sweep(
        title="Figure 9d: entanglement rate vs. average switch degree",
        x_label="degree",
        x_values=list(DEGREE_VALUES),
        settings=settings,
        routers=routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )

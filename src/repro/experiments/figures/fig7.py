"""Figure 7 — entanglement rate vs. network generation method.

Series: ALG-N-FUSION, Q-CAST, Q-CAST-N, B1 and "Alg-3" (ALG-N-FUSION
without Algorithm 4 — the paper uses this figure to show Algorithm 4's
contribution of up to ~16%).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting, is_full_run
from repro.experiments.runner import SweepResult, run_sweep, standard_specs
from repro.experiments.scenarios import as_setting

GENERATORS = ("waxman", "watts_strogatz", "aiello")


def fig7_generators(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenario=None,
) -> SweepResult:
    """Run the Figure 7 sweep over topology generators.

    ``routers`` (specs, spec strings or instances) overrides the
    figure's default series; ``shard=(i, n)`` runs only that slice of
    the (setting, router) grid (see :func:`repro.experiments.runner.run_settings`).
    ``estimator`` evaluates the sweep analytically (default) or by
    Monte Carlo; ``mc_overlay`` appends ``[MC]`` validation columns
    next to the analytic series.  ``scenario`` (a
    :class:`~repro.experiments.scenarios.ScenarioSpec`, preset name or
    spec string) replaces the paper-default base workload; the figure's
    generator axis still overrides the scenario's topology at each x
    value.
    """
    if quick is None:
        quick = not is_full_run()
    base = as_setting(scenario) if scenario is not None else ExperimentSetting()
    settings = []
    for generator in GENERATORS:
        setting = base.with_updates(
            network=base.network.with_updates(generator=generator)
        )
        if quick:
            setting = setting.scaled_for_quick_run()
        settings.append(setting)
    return run_sweep(
        title="Figure 7: entanglement rate vs. network generation method",
        x_label="generator",
        x_values=list(GENERATORS),
        settings=settings,
        routers=(
            standard_specs(include_alg3_only=True)
            if routers is None
            else routers
        ),
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )

"""Per-figure experiment definitions (paper Figures 7, 8 and 9)."""

from repro.experiments.figures.fig7 import fig7_generators
from repro.experiments.figures.fig8 import (
    fig8a_link_probability,
    fig8b_swap_probability,
)
from repro.experiments.figures.fig9 import (
    fig9a_qubits,
    fig9b_ext_switches,
    fig9b_switches,
    fig9c_states,
    fig9d_degree,
)

__all__ = [
    "fig7_generators",
    "fig8a_link_probability",
    "fig8b_swap_probability",
    "fig9a_qubits",
    "fig9b_switches",
    "fig9b_ext_switches",
    "fig9c_states",
    "fig9d_degree",
]

"""Scenario specs: the workload as a first-class, parseable sweep axis.

A **scenario** is one complete workload description — topology family +
its parameters, the demand model (states, users) and the quantum
hardware parameters (link alpha / uniform p, fusion q, qubit capacity).
The paper evaluates one scenario family (Waxman, Section V-A);
:class:`ScenarioSpec` makes every registered topology family reachable
from the same grammar the router and estimator axes already use::

    paper-default                          (a named preset)
    aiello:switches=100,states=20,q=0.85
    grid:switches=64,users=8,p=0.3
    barabasi_albert:degree=6,alpha=2e-4

Specs parse (:func:`parse_scenario`), serialize
(:meth:`ScenarioSpec.to_string`, a canonical round-trip), convert to
the :class:`~repro.experiments.config.ExperimentSetting` the sweep
harness consumes (:meth:`ScenarioSpec.setting`), and expose a stable
:meth:`ScenarioSpec.config_dict` identity that the result cache keys
settings by — so a scenario is addressable from a CLI flag, a cache
key or a config file exactly like a router or estimator.

Named presets (``scenario_presets()``) pin the paper's hardware
defaults on every topology family; ``paper-default`` is the paper's own
Waxman evaluation scenario.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.experiments.config import ExperimentSetting
from repro.network.builder import NetworkConfig
from repro.network.registry import normalize_topology, topology_keys
from repro.network.topology.base import (
    DEFAULT_AREA,
    DEFAULT_NUM_USERS,
    DEFAULT_QUBIT_CAPACITY,
    DEFAULT_USER_LINKS,
)
from repro.quantum.noise import DEFAULT_ALPHA
import repro.specs as specs
from repro.specs import SpecBase, SpecError


class ScenarioSpecError(SpecError):
    """A scenario topology key, parameter or spec string is invalid.

    Subclasses :class:`ValueError` so ``argparse`` type callables can
    surface the message as a normal usage error.
    """


#: Spec-grammar parameter name -> dataclass field, in the canonical
#: order ``to_string`` emits.
_PARAM_FIELDS = (
    ("switches", "num_switches"),
    ("degree", "average_degree"),
    ("area", "area"),
    ("qubits", "qubit_capacity"),
    ("users", "num_users"),
    ("user_links", "user_links"),
    ("states", "num_states"),
    ("alpha", "alpha"),
    ("p", "fixed_p"),
    ("q", "swap_q"),
)
_FIELD_BY_PARAM = dict(_PARAM_FIELDS)
_PARAM_BY_FIELD = {field: param for param, field in _PARAM_FIELDS}

#: ExperimentSetting's averaging defaults, read off the dataclass so
#: scenario-derived settings can never drift from hand-built ones.
_SETTING_DEFAULTS = {
    f.name: f.default for f in dataclasses.fields(ExperimentSetting)
}


# ----------------------------------------------------------------------
# Value grammar (the router/estimator spec grammar, restricted to the
# numeric/none shapes scenario fields take).


def _parse_value(text: str):
    """The shared value grammar restricted to scenario field shapes:
    numbers and ``none`` (booleans and strings parse fine but are then
    rejected by the field validators below)."""
    value = specs.parse_value(text)
    if value is None or (
        isinstance(value, (int, float)) and not isinstance(value, bool)
    ):
        return value
    raise ScenarioSpecError(
        f"scenario parameter value {text!r} must be a number or 'none'"
    )


def _format_value(value) -> str:
    if value is None:
        return "none"
    return repr(value) if isinstance(value, float) else str(value)


def _require_int(name: str, value) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioSpecError(
            f"scenario parameter {_PARAM_BY_FIELD.get(name, name)!r} must "
            f"be an int, got {value!r}"
        )
    return value


def _require_float(name: str, value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioSpecError(
            f"scenario parameter {_PARAM_BY_FIELD.get(name, name)!r} must "
            f"be a number, got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class ScenarioSpec(SpecBase):
    """One workload: topology + demand model + hardware parameters.

    Defaults are the paper's Section V-A scenario (Waxman, 100 switches,
    average degree 10, 10 qubits/switch, 10 users, 20 demanded states,
    length-based link success ``e^{-alpha L}``, fusion ``q = 0.9``).
    The averaging knobs (``num_networks``, ``seed``) deliberately live
    on :class:`~repro.experiments.config.ExperimentSetting`, not here:
    a scenario describes the workload, not how often it is sampled.
    """

    topology: str = "waxman"
    num_switches: int = 100
    average_degree: float = 10.0
    area: float = DEFAULT_AREA
    qubit_capacity: int = DEFAULT_QUBIT_CAPACITY
    num_users: int = DEFAULT_NUM_USERS
    user_links: int = DEFAULT_USER_LINKS
    num_states: int = 20
    alpha: float = DEFAULT_ALPHA
    fixed_p: Optional[float] = None
    swap_q: float = 0.9

    spec_what = "scenario"
    spec_error = ScenarioSpecError

    def __post_init__(self):
        # Normalizing here (aliases, -/_) makes equal workloads equal
        # specs — and hash identically into cache keys — however they
        # were spelled; unknown topologies fail at parse time with the
        # registry's key listing.
        object.__setattr__(self, "topology", normalize_topology(self.topology))
        for check, fields in (
            (_require_int, ("num_switches", "qubit_capacity", "num_users",
                            "user_links", "num_states")),
            (_require_float, ("average_degree", "area", "alpha", "swap_q")),
        ):
            for name in fields:
                object.__setattr__(self, name, check(name, getattr(self, name)))
        if self.fixed_p is not None:
            object.__setattr__(
                self, "fixed_p", _require_float("fixed_p", self.fixed_p)
            )

    # ------------------------------------------------------------------
    # Parsing / serialization

    @classmethod
    def from_string(cls, text: str) -> "ScenarioSpec":
        """Parse ``topology[:param=val,...]`` (see module docstring)."""
        key, rest = cls._split_spec(text)
        params: Dict[str, object] = {}
        if rest is not None:
            raw = cls._parse_params(
                rest, text=text, valid=[p for p, _ in _PARAM_FIELDS]
            )
            params = {
                _FIELD_BY_PARAM[name]: _parse_value(value)
                for name, value in raw.items()
            }
        return cls(topology=key, **params)

    def to_string(self) -> str:
        """Canonical ``topology[:param=val,...]`` form (non-default
        parameters only, fixed order); round-trips via
        :meth:`from_string`."""
        rendered = [
            f"{_PARAM_BY_FIELD[f.name]}={_format_value(getattr(self, f.name))}"
            for f in dataclasses.fields(self)
            if f.name != "topology" and getattr(self, f.name) != f.default
        ]
        if not rendered:
            return self.topology
        return f"{self.topology}:{','.join(rendered)}"

    # ------------------------------------------------------------------
    # Conversions

    # __str__ and config_dict (the topology key plus every workload
    # parameter) come from SpecBase.

    def network_config(self) -> NetworkConfig:
        """The :class:`NetworkConfig` this scenario's topology implies."""
        return NetworkConfig(
            generator=self.topology,
            num_switches=self.num_switches,
            average_degree=self.average_degree,
            area=self.area,
            qubit_capacity=self.qubit_capacity,
            num_users=self.num_users,
            user_links=self.user_links,
        )

    def setting(
        self,
        num_networks: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> ExperimentSetting:
        """The :class:`ExperimentSetting` evaluating this scenario.

        ``num_networks``/``seed`` default to the paper's averaging (the
        ``ExperimentSetting`` defaults), so
        ``ScenarioSpec().setting() == ExperimentSetting()`` holds
        field-for-field.
        """
        return ExperimentSetting(
            network=self.network_config(),
            num_states=self.num_states,
            alpha=self.alpha,
            fixed_p=self.fixed_p,
            swap_q=self.swap_q,
            num_networks=(
                _SETTING_DEFAULTS["num_networks"]
                if num_networks is None
                else num_networks
            ),
            seed=_SETTING_DEFAULTS["seed"] if seed is None else seed,
        )

    @classmethod
    def from_setting(cls, setting: ExperimentSetting) -> "ScenarioSpec":
        """The scenario a setting evaluates (inverse of :meth:`setting`,
        dropping the averaging knobs)."""
        network = setting.network
        return cls(
            topology=network.generator,
            num_switches=network.num_switches,
            average_degree=network.average_degree,
            area=network.area,
            qubit_capacity=network.qubit_capacity,
            num_users=network.num_users,
            user_links=network.user_links,
            num_states=setting.num_states,
            alpha=setting.alpha,
            fixed_p=setting.fixed_p,
            swap_q=setting.swap_q,
        )

    def with_updates(self, **kwargs) -> "ScenarioSpec":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: The paper's own evaluation workload (Section V-A).
PAPER_DEFAULT = ScenarioSpec()

#: Named presets: the paper's hardware defaults on each topology family.
#: ``paper-default`` is the paper's Waxman scenario; the rest answer
#: "what if the paper had evaluated on family X" with everything else
#: held at the Section V-A values.
SCENARIO_PRESETS: Dict[str, str] = {
    "paper-default": "waxman",
    **{f"paper-{key.replace('_', '-')}": key for key in (
        "waxman",
        "watts_strogatz",
        "aiello",
        "barabasi_albert",
        "random_geometric",
        "grid",
        "ring",
        "erdos_renyi",
    )},
}


def scenario_presets() -> List[str]:
    """All preset names, in definition order."""
    return list(SCENARIO_PRESETS)


def scenario_param_names() -> List[str]:
    """The grammar's parameter names, in canonical order."""
    return [param for param, _ in _PARAM_FIELDS]


def parse_scenario(text: str) -> ScenarioSpec:
    """Parse a preset name or a ``topology[:param=val,...]`` spec."""
    name = text.strip().lower()
    if name in SCENARIO_PRESETS:
        return ScenarioSpec.from_string(SCENARIO_PRESETS[name])
    return ScenarioSpec.from_string(text)


def parse_scenario_names(text: str) -> List[str]:
    """Split a CLI ``--scenarios`` value into individual scenario tokens.

    The value is comma-separated; a segment containing ``=`` before any
    ``:`` continues the previous scenario's parameter list, so
    ``"grid:switches=64,users=8,ring"`` is two scenarios.  Every token
    is validated by :func:`parse_scenario`; the original spellings are
    returned so tables can label columns the way the user wrote them.
    """
    groups: List[List[str]] = []
    for segment in text.split(","):
        colon, eq = segment.find(":"), segment.find("=")
        continues = eq != -1 and (colon == -1 or eq < colon)
        if continues:
            if not groups:
                raise ScenarioSpecError(
                    f"--scenarios value {text!r} starts with a parameter "
                    f"({segment!r}) instead of a topology key or preset"
                )
            groups[-1].append(segment)
        else:
            groups.append([segment])
    names = [",".join(group).strip() for group in groups]
    for name in names:
        parse_scenario(name)
    return names


def as_scenario(value: Union[str, ScenarioSpec]) -> ScenarioSpec:
    """Coerce a spec, preset name or spec string to a :class:`ScenarioSpec`."""
    if isinstance(value, ScenarioSpec):
        return value
    if isinstance(value, str):
        return parse_scenario(value)
    raise ScenarioSpecError(
        f"scenario must be a spec string, preset name or ScenarioSpec, "
        f"got {type(value).__name__}"
    )


def as_setting(
    value: Union[str, ScenarioSpec, ExperimentSetting]
) -> ExperimentSetting:
    """Coerce a scenario (spec, preset or string) or an existing
    :class:`ExperimentSetting` to a setting.

    This is the harness-side coercion that lets ``run_settings`` /
    ``run_sweep`` take scenario strings directly in their ``settings``
    sequences.
    """
    if isinstance(value, ExperimentSetting):
        return value
    return as_scenario(value).setting()

"""Pluggable sweep estimators: analytic Equation 1 vs Monte Carlo.

The sweep harness evaluates each ``(setting, sample, router)`` task
under an **estimator** — the procedure that turns a routing plan into a
rate.  Two kinds exist:

* ``analytic`` — the paper's Equation-1 rate the router itself reports
  (``result.total_rate``); exact under branch independence, free.
* ``mc`` — a Monte-Carlo estimate of the plan's true establishment
  rate from the Phase-III process simulation, parameterised by a trial
  count and an engine (``vectorized``, the numpy batch engine, or
  ``reference``, the trial-at-a-time pure-Python simulator the
  vectorised one is validated against).

Estimator identity is part of the result-cache key and of the task
grid, so MC points shard, parallelise and cache exactly like analytic
ones.  The spec grammar mirrors router specs::

    analytic
    mc                                  (trials=500, engine=vectorized)
    mc:trials=3000
    mc:trials=2000,engine=reference
    mc:trials=2000,antithetic=true      (paired antithetic trials)
    mc:trials=2000,link_survival=0.9    (robustness: random edge loss)
    mc:trials=2000,switch_survival=0.95 (robustness: random switch loss)

``antithetic=true`` evaluates the trials as antithetic pairs (each
uniform draw ``u`` is mirrored by ``1 - u`` in its pair partner): flow
establishment is monotone in the underlying uniforms, so the pairs are
negatively correlated and the standard error shrinks at equal trial
count.  Pairing is only implemented on the vectorised engine and needs
an even trial count; the reported stderr is computed over pair means,
which is the statistically valid estimator under pairing.

``link_survival``/``switch_survival`` (defaults ``1.0``) put the plan
under random infrastructure loss: each trial independently keeps every
network edge with probability ``link_survival`` and every switch with
probability ``switch_survival`` — one network-wide mask shared by all
of the plan's flows, so a lost edge fails every flow crossing it in
that trial, the correlated-failure structure a real outage has.  The
estimate is then the plan's expected rate *given* that element
reliability, which is how ``topology-compare`` ranks topology families
by robustness rather than peak rate.  Both engines implement the masks
identically-in-distribution; ``1.0`` draws nothing, so the default
estimator's stream is untouched.

Estimation draws come from :func:`estimation_rng` — a stateless
substream of the task's sample seed — so the instance-generation stream
is untouched whatever the trial count, and the same task always sees
the same draws in any process, worker or shard.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.network.graph import QuantumNetwork
from repro.specs import SpecBase, SpecError
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.plan import RoutingPlan
from repro.simulation.monte_carlo import MonteCarloEstimate, estimate_plan_rate
from repro.simulation.vectorized import VectorizedProcessSimulator
from repro.utils.rng import RandomState, stream_rng


class EstimatorSpecError(SpecError):
    """An estimator kind, parameter or spec string is invalid.

    Subclasses :class:`ValueError` so ``argparse`` type callables can
    surface the message as a normal usage error.
    """


ESTIMATOR_KINDS = ("analytic", "mc")
MC_ENGINES = ("vectorized", "reference")

#: Default Monte-Carlo trial count when a spec says just ``mc``.
DEFAULT_MC_TRIALS = 500

#: Substream index reserved for estimation draws (``0x4D43`` = "MC");
#: instance generation uses the sample seed's root stream.
ESTIMATION_STREAM = 0x4D43


@dataclass(frozen=True)
class EstimatorSpec(SpecBase):
    """How a task's routing plan is turned into a rate.

    ``trials``/``engine``/``antithetic`` are meaningful only for
    ``kind="mc"`` and are pinned to ``0``/``""``/``False`` for
    ``analytic``, so equal estimators are equal dataclasses (and hash
    identically into cache keys).
    """

    kind: str = "analytic"
    trials: int = 0
    engine: str = ""
    antithetic: bool = False
    link_survival: float = 1.0
    switch_survival: float = 1.0

    spec_what = "estimator"
    spec_error = EstimatorSpecError

    def __post_init__(self):
        if self.kind not in ESTIMATOR_KINDS:
            raise EstimatorSpecError(
                f"unknown estimator kind {self.kind!r}; known kinds: "
                f"{', '.join(ESTIMATOR_KINDS)}"
            )
        for name in ("link_survival", "switch_survival"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EstimatorSpecError(
                    f"estimator {name} must be a number, got {value!r}"
                )
            object.__setattr__(self, name, float(value))
            if not 0 < getattr(self, name) <= 1:
                raise EstimatorSpecError(
                    f"estimator {name} must be in (0, 1], got {value!r}"
                )
        if self.kind == "analytic":
            if self.trials != 0 or self.engine != "" or self.antithetic:
                raise EstimatorSpecError(
                    "the analytic estimator takes no trials/engine/"
                    f"antithetic parameters, got trials={self.trials!r}, "
                    f"engine={self.engine!r}, "
                    f"antithetic={self.antithetic!r}"
                )
            if self.link_survival != 1.0 or self.switch_survival != 1.0:
                raise EstimatorSpecError(
                    "survival masks are a Monte-Carlo feature; Equation 1 "
                    "has no loss model — use an mc estimator with "
                    "link_survival=/switch_survival="
                )
            return
        if not isinstance(self.trials, int) or isinstance(self.trials, bool) \
                or self.trials < 1:
            raise EstimatorSpecError(
                f"mc estimator trials must be an int >= 1, got "
                f"{self.trials!r}"
            )
        if self.engine not in MC_ENGINES:
            raise EstimatorSpecError(
                f"unknown mc engine {self.engine!r}; known engines: "
                f"{', '.join(MC_ENGINES)}"
            )
        if not isinstance(self.antithetic, bool):
            raise EstimatorSpecError(
                f"mc estimator antithetic must be a bool, got "
                f"{self.antithetic!r}"
            )
        if self.antithetic:
            if self.engine != "vectorized":
                raise EstimatorSpecError(
                    "antithetic pairing is only implemented on the "
                    f"vectorized engine, got engine={self.engine!r}"
                )
            if self.trials % 2:
                raise EstimatorSpecError(
                    "antithetic pairing needs an even trial count, got "
                    f"trials={self.trials}"
                )

    @property
    def is_mc(self) -> bool:
        """True for Monte-Carlo estimators."""
        return self.kind == "mc"

    @property
    def has_survival_masks(self) -> bool:
        """True when trials sample random infrastructure loss."""
        return self.link_survival != 1.0 or self.switch_survival != 1.0

    @classmethod
    def mc(
        cls,
        trials: int = DEFAULT_MC_TRIALS,
        engine: str = "vectorized",
        antithetic: bool = False,
        link_survival: float = 1.0,
        switch_survival: float = 1.0,
    ) -> "EstimatorSpec":
        """A Monte-Carlo spec with keyword defaults."""
        return cls(
            "mc", trials, engine, antithetic, link_survival, switch_survival
        )

    @classmethod
    def from_string(cls, text: str) -> "EstimatorSpec":
        """Parse ``analytic`` or ``mc[:trials=N][,engine=E]``."""
        kind, rest = cls._split_spec(text)
        kind = kind.lower()
        if kind == "analytic":
            if rest is not None:
                raise EstimatorSpecError(
                    f"the analytic estimator takes no parameters, got "
                    f"{text!r}"
                )
            return ANALYTIC
        if kind != "mc":
            raise EstimatorSpecError(
                f"unknown estimator kind {kind!r} in spec {text!r}; "
                f"known kinds: {', '.join(ESTIMATOR_KINDS)}"
            )
        params: Dict[str, str] = {}
        if rest is not None:
            params = cls._parse_params(
                rest, text=text,
                valid=(
                    "trials", "engine", "antithetic",
                    "link_survival", "switch_survival",
                ),
            )
        trials = DEFAULT_MC_TRIALS
        if "trials" in params:
            try:
                trials = int(params["trials"])
            except ValueError:
                raise EstimatorSpecError(
                    f"estimator trials must be an int, got "
                    f"{params['trials']!r}"
                ) from None
        antithetic = False
        if "antithetic" in params:
            lowered = params["antithetic"].lower()
            if lowered not in ("true", "false"):
                raise EstimatorSpecError(
                    f"estimator antithetic must be true or false, got "
                    f"{params['antithetic']!r}"
                )
            antithetic = lowered == "true"
        survivals = {}
        for name in ("link_survival", "switch_survival"):
            if name not in params:
                continue
            try:
                survivals[name] = float(params[name])
            except ValueError:
                raise EstimatorSpecError(
                    f"estimator {name} must be a number, got "
                    f"{params[name]!r}"
                ) from None
        return cls(
            "mc", trials, params.get("engine", "vectorized"), antithetic,
            **survivals,
        )

    def to_string(self) -> str:
        """Canonical spec string; round-trips via :meth:`from_string`."""
        if self.kind == "analytic":
            return "analytic"
        rendered = f"mc:trials={self.trials},engine={self.engine}"
        if self.antithetic:
            rendered += ",antithetic=true"
        if self.link_survival != 1.0:
            rendered += f",link_survival={self.link_survival!r}"
        if self.switch_survival != 1.0:
            rendered += f",switch_survival={self.switch_survival!r}"
        return rendered

    def fingerprint(self) -> Dict:
        """Stable, JSON-ready identity for cache keys (the historical
        name; identical to :meth:`config_dict`).

        The survival fields joined the spec after cache keys were
        frozen, so the loss-free default omits them — every pre-existing
        entry keeps its address — and they key only when they bite.
        """
        data = dataclasses.asdict(self)
        if not self.has_survival_masks:
            del data["link_survival"]
            del data["switch_survival"]
        return data

    def config_dict(self) -> Dict:
        """Stable, JSON-ready identity (alias of :meth:`fingerprint`)."""
        return self.fingerprint()

    def __str__(self) -> str:
        return self.to_string()


#: The default estimator: the router's own analytic Equation-1 rate.
ANALYTIC = EstimatorSpec()


def parse_estimator(text: str) -> EstimatorSpec:
    """Parse a CLI ``--estimator`` value (see :meth:`EstimatorSpec.from_string`)."""
    return EstimatorSpec.from_string(text)


def as_estimator(
    value: Union[None, str, EstimatorSpec]
) -> EstimatorSpec:
    """Coerce ``None`` (→ analytic), a spec string or a spec."""
    if value is None:
        return ANALYTIC
    if isinstance(value, EstimatorSpec):
        return value
    if isinstance(value, str):
        return EstimatorSpec.from_string(value)
    raise EstimatorSpecError(
        f"estimator must be None, a spec string or an EstimatorSpec, "
        f"got {type(value).__name__}"
    )


def estimation_rng(sample_seed: int) -> RandomState:
    """The estimation stream of one sample seed.

    A stateless substream (:func:`repro.utils.rng.stream_rng`), disjoint
    from the sample's instance-generation stream, so the networks and
    demands a seed produces are identical whether or not — and however
    hard — the sample is Monte-Carlo estimated.
    """
    return stream_rng(sample_seed, ESTIMATION_STREAM)


def estimate_plan(
    spec: EstimatorSpec,
    network: QuantumNetwork,
    plan: RoutingPlan,
    link_model: Optional[LinkModel],
    swap_model: Optional[SwapModel],
    sample_seed: int,
) -> MonteCarloEstimate:
    """Monte-Carlo estimate of *plan*'s rate under *spec*.

    Draws come from the sample seed's estimation stream, so the estimate
    is a pure function of ``(spec, instance recipe)`` — identical in any
    process, worker or shard.
    """
    if not spec.is_mc:
        raise EstimatorSpecError(
            f"estimate_plan needs an mc estimator, got {spec}"
        )
    rng = estimation_rng(sample_seed)
    if spec.engine == "reference":
        estimate = estimate_plan_rate(
            network, plan, link_model, swap_model,
            trials=spec.trials, rng=rng,
            link_survival=spec.link_survival,
            switch_survival=spec.switch_survival,
        )
    else:
        simulator = VectorizedProcessSimulator(
            network, link_model, swap_model, rng
        )
        estimate = simulator.plan_estimate(
            plan, spec.trials, antithetic=spec.antithetic,
            link_survival=spec.link_survival,
            switch_survival=spec.switch_survival,
        )
    # Plain floats so outcomes equal their JSON-cached round trip
    # type-for-type (numpy scalars leak from the vectorised engine).
    return MonteCarloEstimate(
        float(estimate.mean), float(estimate.stderr), int(estimate.trials)
    )

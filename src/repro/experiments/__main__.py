"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig8a
    python -m repro.experiments fig9b --full --workers 4
    python -m repro.experiments fig7 --routers alg-n-fusion,q-cast
    python -m repro.experiments fig7 --routers "alg-n-fusion:include_alg4=false"
    python -m repro.experiments fig7 --shard 0/2 --cache-dir .sweep-cache
    python -m repro.experiments all --workers 4 --cache-dir .sweep-cache
    python -m repro.experiments regen-regression

``--full`` runs at paper scale (equivalent to REPRO_FULL=1); the default
quick mode shrinks networks and averaging for fast turnaround.
``--workers N`` fans each sweep's (setting, sample, router) task grid
out over N processes — the merged series are bit-identical to a
sequential run.  ``--cache-dir`` reuses previously computed (setting,
router) results from a content-addressed on-disk cache.

``--routers`` replaces a figure's default series with registry specs:
comma-separated ``key[:param=val,...]`` entries (``python -m
repro.experiments routers`` lists the keys).  ``--shard i/n`` runs only
the i-th of n deterministic slices of the (setting, router) grid;
complementary shards — on any machines — merge losslessly through a
shared ``--cache-dir``, and any later run against that cache reports
the complete series.

``regen-regression`` rewrites the pinned regression fixture under
``tests/data/`` bit-exactly from its frozen recipe.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    alg4_ablation,
    fig7_generators,
    fig8a_link_probability,
    fig8b_swap_probability,
    fig9a_qubits,
    fig9b_switches,
    fig9c_states,
    fig9d_degree,
    headline_ratios,
    lattice_distance_study,
    protocol_coherence_study,
)
from repro.experiments.cache import ResultCache
from repro.experiments.harness import parse_shard
from repro.experiments.regression import regenerate_regression_fixture
from repro.experiments.runner import reject_duplicate_labels
from repro.routing.registry import parse_router_specs, router_keys
from repro.utils.cli import argparse_type

EXPERIMENTS: Dict[str, Callable] = {
    "fig7": fig7_generators,
    "fig8a": fig8a_link_probability,
    "fig8b": fig8b_swap_probability,
    "fig9a": fig9a_qubits,
    "fig9b": fig9b_switches,
    "fig9c": fig9c_states,
    "fig9d": fig9d_degree,
    "headline": headline_ratios,
    "ablation": alg4_ablation,
    "protocol": protocol_coherence_study,
    "lattice": lattice_distance_study,
}

#: Experiments whose point loops parallelise but have no (setting,
#: router) grid, hence no result cache, router override or shard.
_WORKERS_ONLY = ("protocol", "lattice")

#: Grid experiments whose router set is fixed by their definition
#: (ratio/ablation tables); they still accept --shard and --cache-dir.
_FIXED_ROUTERS = ("headline", "ablation")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list", "routers", "regen-regression"],
        help=(
            "experiment id (figN / headline / ablation / protocol / "
            "lattice), 'all', 'list', 'routers' or 'regen-regression'"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale instead of the quick default",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "evaluate sweep tasks across N worker processes "
            "(default: REPRO_WORKERS or sequential); results are "
            "bit-identical to a sequential run"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "reuse per-(setting, router) results from this "
            "content-addressed cache directory"
        ),
    )
    parser.add_argument(
        "--routers",
        type=argparse_type(parse_router_specs),
        default=None,
        metavar="SPEC[,SPEC...]",
        help=(
            "router specs to sweep instead of the figure's default "
            "series: comma-separated key[:param=val,...] entries, e.g. "
            "'alg-n-fusion:include_alg4=false,q-cast'"
        ),
    )
    parser.add_argument(
        "--shard",
        type=argparse_type(parse_shard),
        default=None,
        metavar="I/N",
        help=(
            "run only the I-th of N deterministic slices of the "
            "(setting, router) grid; complementary shards merge through "
            "a shared --cache-dir"
        ),
    )
    return parser


def _note(name: str, flag: str, reason: str) -> None:
    print(f"note: {flag} has no effect on {name!r} ({reason})", file=sys.stderr)


def run_one(name: str, quick: bool, workers, cache, routers, shard) -> None:
    fn = EXPERIMENTS[name]
    if name in _WORKERS_ONLY:
        if cache is not None:
            _note(name, "--cache-dir", "no (setting, router) grid to cache")
        if routers is not None:
            _note(name, "--routers", "the study's routers are fixed")
        if shard is not None:
            _note(name, "--shard", "no (setting, router) grid to shard")
        result = fn(quick=quick, workers=workers)
    elif name in _FIXED_ROUTERS:
        if routers is not None:
            _note(name, "--routers", "the table's router set is fixed")
        result = fn(quick=quick, workers=workers, cache=cache, shard=shard)
    else:
        result = fn(
            quick=quick,
            workers=workers,
            cache=cache,
            routers=routers,
            shard=shard,
        )
    print(result.to_text())
    print()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.experiment == "routers":
        for key in router_keys():
            print(key)
        return 0
    if args.experiment == "regen-regression":
        path = regenerate_regression_fixture()
        print(f"regenerated {path}")
        return 0
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    if args.shard is not None and cache is None:
        print(
            "note: --shard without --cache-dir computes a partial result "
            "that cannot merge with other shards",
            file=sys.stderr,
        )
    quick = not args.full
    routers_used = args.routers is not None and (
        args.experiment == "all"
        or args.experiment not in (*_WORKERS_ONLY, *_FIXED_ROUTERS)
    )
    if routers_used:
        # Label collisions only arise from user-supplied specs; check
        # them here so the run fails as a clean usage error before any
        # routing work (runner re-checks as a backstop).  Experiments
        # that ignore --routers keep their "no effect" note instead.
        try:
            reject_duplicate_labels(
                [spec.build() for spec in args.routers]
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.experiment == "all":
        for name in EXPERIMENTS:
            print(f"=== {name} ===")
            run_one(name, quick, args.workers, cache, args.routers, args.shard)
        return 0
    run_one(
        args.experiment, quick, args.workers, cache, args.routers, args.shard
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

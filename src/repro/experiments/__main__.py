"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig8a
    python -m repro.experiments fig9b --full --workers 4
    python -m repro.experiments all --workers 4 --cache-dir .sweep-cache
    python -m repro.experiments regen-regression

``--full`` runs at paper scale (equivalent to REPRO_FULL=1); the default
quick mode shrinks networks and averaging for fast turnaround.
``--workers N`` fans each sweep's (setting, sample, router) task grid
out over N processes — the merged series are bit-identical to a
sequential run.  ``--cache-dir`` reuses previously computed (setting,
router) results from a content-addressed on-disk cache.
``regen-regression`` rewrites the pinned regression fixture under
``tests/data/`` bit-exactly from its frozen recipe.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    alg4_ablation,
    fig7_generators,
    fig8a_link_probability,
    fig8b_swap_probability,
    fig9a_qubits,
    fig9b_switches,
    fig9c_states,
    fig9d_degree,
    headline_ratios,
    lattice_distance_study,
    protocol_coherence_study,
)
from repro.experiments.cache import ResultCache
from repro.experiments.regression import regenerate_regression_fixture

EXPERIMENTS: Dict[str, Callable] = {
    "fig7": fig7_generators,
    "fig8a": fig8a_link_probability,
    "fig8b": fig8b_swap_probability,
    "fig9a": fig9a_qubits,
    "fig9b": fig9b_switches,
    "fig9c": fig9c_states,
    "fig9d": fig9d_degree,
    "headline": headline_ratios,
    "ablation": alg4_ablation,
    "protocol": protocol_coherence_study,
    "lattice": lattice_distance_study,
}

#: Experiments whose point loops parallelise but have no (setting,
#: router) grid, hence no result cache.
_WORKERS_ONLY = ("protocol", "lattice")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list", "regen-regression"],
        help=(
            "experiment id (figN / headline / ablation / protocol / "
            "lattice), 'all', 'list' or 'regen-regression'"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale instead of the quick default",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "evaluate sweep tasks across N worker processes "
            "(default: REPRO_WORKERS or sequential); results are "
            "bit-identical to a sequential run"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "reuse per-(setting, router) results from this "
            "content-addressed cache directory"
        ),
    )
    return parser


def run_one(name: str, quick: bool, workers, cache) -> None:
    fn = EXPERIMENTS[name]
    if name in _WORKERS_ONLY:
        if cache is not None:
            print(
                f"note: --cache-dir has no effect on {name!r} "
                "(no (setting, router) grid to cache)",
                file=sys.stderr,
            )
        result = fn(quick=quick, workers=workers)
    else:
        result = fn(quick=quick, workers=workers, cache=cache)
    print(result.to_text())
    print()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.experiment == "regen-regression":
        path = regenerate_regression_fixture()
        print(f"regenerated {path}")
        return 0
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    quick = not args.full
    if args.experiment == "all":
        for name in EXPERIMENTS:
            print(f"=== {name} ===")
            run_one(name, quick, args.workers, cache)
        return 0
    run_one(args.experiment, quick, args.workers, cache)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig8a
    python -m repro.experiments fig9b --full --workers 4
    python -m repro.experiments fig9b-ext --full --cache-dir .sweep-cache
    python -m repro.experiments fig7 --routers alg-n-fusion,q-cast
    python -m repro.experiments fig7 --routers "alg-n-fusion:include_alg4=false"
    python -m repro.experiments fig7 --shard 0/2 --cache-dir .sweep-cache
    python -m repro.experiments fig8a --mc-overlay
    python -m repro.experiments fig8a --estimator mc:trials=2000
    python -m repro.experiments fig8a --scenario "grid:switches=64,users=8"
    python -m repro.experiments fig9c --scenarios paper-grid,paper-erdos-renyi
    python -m repro.experiments topology-compare --workers 4
    python -m repro.experiments mc-validate --routers alg-n-fusion
    python -m repro.experiments all --workers 4 --cache-dir .sweep-cache
    python -m repro.experiments regen-regression
    python -m repro.experiments serve --scenario paper-default \
        --arrivals poisson:rate=2.0,hold=exp:mean=30 --duration 200 --seed 7
    python -m repro.experiments serve --replan resnapshot
    python -m repro.experiments serve --record-trace run.trace
    python -m repro.experiments serve --arrivals trace:file=run.trace
    python -m repro.experiments serve --faults faults:link_mtbf=120,switch_p=0.01
    python -m repro.experiments serve --faults faults:link_mtbf=60 \
        --repair reroute:retries=4,backoff=exp:base=0.5

``--full`` runs at paper scale (equivalent to REPRO_FULL=1); the default
quick mode shrinks networks and averaging for fast turnaround.
``--workers N`` fans each sweep's (setting, sample, router) task grid
out over N processes — the merged series are bit-identical to a
sequential run.  ``--cache-dir`` reuses previously computed (setting,
router, estimator) results from a content-addressed on-disk cache
(``REPRO_CACHE_DIR`` sets the default).

``--routers`` replaces a figure's default series with registry specs:
comma-separated ``key[:param=val,...]`` entries (``python -m
repro.experiments routers`` lists the keys).  ``--shard i/n`` runs only
the i-th of n deterministic slices of the (setting, router) grid;
complementary shards — on any machines — merge losslessly through a
shared ``--cache-dir``, and any later run against that cache reports
the complete series.

``--scenario`` swaps the workload under any grid experiment: a preset
name (``python -m repro.experiments scenarios`` lists them) or a
``topology[:param=val,...]`` spec such as
``"aiello:switches=100,states=20,q=0.85"``; the experiment's own sweep
axis applies on top of the scenario.  ``--scenarios A,B,...`` runs the
experiment once per workload; for ``topology-compare`` it instead
selects the table's scenario columns (default: every topology-family
preset), producing the cross-family rate table the paper never ran.

``--estimator`` selects how each routed plan becomes a rate:
``analytic`` (Equation 1, the default) or
``mc[:trials=N][,engine=vectorized|reference][,antithetic=true]``
(Monte-Carlo re-evaluation through the Phase-III process simulation;
antithetic pairing shrinks the stderr at equal trials).
``--mc-overlay [SPEC]`` keeps the analytic series and appends ``[MC]``
validation columns next to them (fig7/fig8/fig9/topology-compare);
``mc-validate`` renders a per-sample analytic-vs-MC table with stderr
and relative-error columns for any ``--routers`` set.

``--profile`` wraps the run in cProfile and prints the top 25 functions
to stderr — by cumulative time, or self time with
``--profile-sort tottime`` (``--profile-out FILE`` additionally dumps
the raw stats for pstats/snakeviz) — so perf work starts from data
rather than guesses.

``serve`` runs the online routing service (``repro.service``): demands
arrive continuously (``--arrivals``), hold capacity for their holding
time and release it on departure; each arrival re-plans against the
residual network (``--replan incremental|resnapshot``, deterministic
metrics identical either way).  Steady-state throughput / admission
ratio go to stdout (cached, bit-identical for any ``--workers`` and
routing core); p50/p99 re-plan latency goes to stderr and is never
cached.  ``--record-trace FILE`` captures the event streams for replay
via ``--arrivals trace:file=FILE``.

``--faults`` injects link/switch failures while serving (per-element
renewal processes addressed statelessly from the sample seed, or a
``trace:file=PATH`` replay); down events disrupt overlapping held
flows, which ``--repair`` re-routes with bounded backoff retries (or
drops).  The report gains disruption/repair/drop columns, a throughput
degradation line against the fault-free companion run, and stderr
recovery-latency percentiles.

``regen-regression`` rewrites the pinned regression fixture under
``tests/data/`` bit-exactly from its frozen recipe.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from typing import Callable, Dict

from repro.experiments import (
    alg4_ablation,
    fig7_generators,
    fig8a_link_probability,
    fig8b_swap_probability,
    fig9a_qubits,
    fig9b_ext_switches,
    fig9b_switches,
    fig9c_states,
    fig9d_degree,
    headline_ratios,
    lattice_distance_study,
    mc_validate,
    protocol_coherence_study,
    topology_compare,
)
from repro.experiments.cache import ResultCache, default_result_cache
from repro.experiments.estimators import parse_estimator
from repro.experiments.harness import parse_shard
from repro.experiments.regression import regenerate_regression_fixture
from repro.experiments.runner import reject_duplicate_labels
from repro.experiments.scenarios import (
    SCENARIO_PRESETS,
    parse_scenario,
    parse_scenario_names,
    scenario_param_names,
)
from repro.network.registry import topology_keys
from repro.routing.registry import parse_router_specs, router_keys
from repro.service.arrivals import parse_arrivals
from repro.service.faults import parse_faults, parse_repair
from repro.service.loop import REPLAN_MODES
from repro.service.runner import run_serve_experiment
from repro.utils.cli import argparse_type

EXPERIMENTS: Dict[str, Callable] = {
    "fig7": fig7_generators,
    "fig8a": fig8a_link_probability,
    "fig8b": fig8b_swap_probability,
    "fig9a": fig9a_qubits,
    "fig9b": fig9b_switches,
    "fig9b-ext": fig9b_ext_switches,
    "fig9c": fig9c_states,
    "fig9d": fig9d_degree,
    "headline": headline_ratios,
    "ablation": alg4_ablation,
    "protocol": protocol_coherence_study,
    "lattice": lattice_distance_study,
    "mc-validate": mc_validate,
    "topology-compare": topology_compare,
}

#: Experiments whose point loops parallelise but have no (setting,
#: router) grid, hence no result cache, router override, shard,
#: estimator or scenario.
_WORKERS_ONLY = ("protocol", "lattice")

#: Grid experiments whose router set is fixed by their definition
#: (ratio/ablation tables); they still accept --shard, --cache-dir,
#: --estimator and --scenario.  Every other grid sweep carries
#: --mc-overlay (analytic series plus MC columns).
_FIXED_ROUTERS = ("headline", "ablation")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            *EXPERIMENTS, "serve", "all", "list", "routers", "scenarios",
            "regen-regression",
        ],
        help=(
            "experiment id (figN / headline / ablation / protocol / "
            "lattice / mc-validate / topology-compare), 'serve', 'all', "
            "'list', 'routers', 'scenarios' or 'regen-regression'"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale instead of the quick default",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "evaluate sweep tasks across N worker processes "
            "(default: REPRO_WORKERS or sequential); results are "
            "bit-identical to a sequential run"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "reuse per-(setting, router, estimator) results from this "
            "content-addressed cache directory (default: "
            "REPRO_CACHE_DIR when set)"
        ),
    )
    parser.add_argument(
        "--routers",
        type=argparse_type(parse_router_specs),
        default=None,
        metavar="SPEC[,SPEC...]",
        help=(
            "router specs to sweep instead of the figure's default "
            "series: comma-separated key[:param=val,...] entries, e.g. "
            "'alg-n-fusion:include_alg4=false,q-cast'"
        ),
    )
    scenario_group = parser.add_mutually_exclusive_group()
    scenario_group.add_argument(
        "--scenario",
        type=argparse_type(parse_scenario),
        default=None,
        metavar="SPEC",
        help=(
            "base workload for the experiment: a preset name (see "
            "'scenarios') or topology[:param=val,...], e.g. "
            "'aiello:switches=100,states=20,q=0.85'; the experiment's "
            "sweep axis applies on top"
        ),
    )
    scenario_group.add_argument(
        "--scenarios",
        type=argparse_type(parse_scenario_names),
        default=None,
        metavar="SPEC[,SPEC...]",
        help=(
            "comma-separated scenario specs/presets: topology-compare "
            "uses them as its table columns; any other grid experiment "
            "runs once per scenario"
        ),
    )
    parser.add_argument(
        "--shard",
        type=argparse_type(parse_shard),
        default=None,
        metavar="I/N",
        help=(
            "run only the I-th of N deterministic slices of the "
            "(setting, router) grid; complementary shards merge through "
            "a shared --cache-dir"
        ),
    )
    parser.add_argument(
        "--estimator",
        type=argparse_type(parse_estimator),
        default=None,
        metavar="SPEC",
        help=(
            "how each routed plan becomes a rate: 'analytic' "
            "(Equation 1, default) or 'mc[:trials=N][,engine="
            "vectorized|reference][,antithetic=true]' "
            "(Monte-Carlo re-evaluation); mc-validate defaults to an "
            "mc spec sized for the run scale"
        ),
    )
    parser.add_argument(
        "--mc-overlay",
        nargs="?",
        const="mc",
        default=None,
        metavar="SPEC",
        help=(
            "append Monte-Carlo '[MC]' columns next to the analytic "
            "series (fig7/fig8/fig9/topology-compare); the optional "
            "SPEC is an mc estimator spec, default 'mc' (500 trials, "
            "vectorized engine)"
        ),
    )
    serve_group = parser.add_argument_group(
        "serve", "online-serving options (the 'serve' experiment only)"
    )
    serve_group.add_argument(
        "--arrivals",
        type=argparse_type(parse_arrivals),
        default=None,
        metavar="SPEC",
        help=(
            "arrival process: poisson[:rate=R,hold=DIST:mean=M] or "
            "trace:file=PATH (default "
            "'poisson:rate=2.0,hold=exp:mean=30.0')"
        ),
    )
    serve_group.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="T",
        help="serving horizon in simulated time units (default 200)",
    )
    serve_group.add_argument(
        "--warmup",
        type=float,
        default=None,
        metavar="T",
        help=(
            "measurement starts at this simulated time; earlier "
            "arrivals still occupy capacity (default 20)"
        ),
    )
    serve_group.add_argument(
        "--replications",
        type=int,
        default=None,
        metavar="N",
        help=(
            "independently sampled networks to serve (default 3; a "
            "trace replay uses its recorded count)"
        ),
    )
    serve_group.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="replication seed (default: the harness seed, 20230601)",
    )
    serve_group.add_argument(
        "--replan",
        choices=REPLAN_MODES,
        default=None,
        help=(
            "re-planning mode per arrival: 'incremental' (session "
            "ledger + caches; falls back per router) or 'resnapshot' "
            "(rebuild a residual network copy); both produce identical "
            "metrics (default incremental)"
        ),
    )
    serve_group.add_argument(
        "--record-trace",
        default=None,
        metavar="FILE",
        help=(
            "write the generated arrival streams to FILE for "
            "trace:file=FILE replay (forces fresh execution)"
        ),
    )
    serve_group.add_argument(
        "--faults",
        type=argparse_type(parse_faults),
        default=None,
        metavar="SPEC",
        help=(
            "inject link/switch failures while serving: "
            "faults:link_mtbf=T[,link_mttr=T][,switch_mtbf=T|switch_p=P]"
            "[,switch_mttr=T] or trace:file=PATH (default: no faults)"
        ),
    )
    serve_group.add_argument(
        "--repair",
        type=argparse_type(parse_repair),
        default=None,
        metavar="SPEC",
        help=(
            "recovery policy for disrupted flows: 'drop' or "
            "'reroute[:retries=N,backoff=exp|fixed:base=B]' (default "
            "'reroute'; needs --faults)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the experiment under cProfile and print the top 25 "
            "functions to stderr when it finishes, ordered by "
            "--profile-sort"
        ),
    )
    parser.add_argument(
        "--profile-sort",
        choices=("cumulative", "tottime"),
        default="cumulative",
        help=(
            "pstats sort key for the --profile report: 'cumulative' "
            "(default; where the time goes, call tree included) or "
            "'tottime' (self time only; where the time is spent)"
        ),
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help=(
            "also dump the raw cProfile stats to FILE (readable with "
            "pstats / snakeviz); implies --profile"
        ),
    )
    return parser


def _note(name: str, flag: str, reason: str) -> None:
    print(f"note: {flag} has no effect on {name!r} ({reason})", file=sys.stderr)


def run_one(
    name: str, quick: bool, workers, cache, routers, shard, estimator,
    mc_overlay, scenario=None, scenarios=None,
) -> None:
    fn = EXPERIMENTS[name]
    if name in _WORKERS_ONLY:
        if cache is not None:
            _note(name, "--cache-dir", "no (setting, router) grid to cache")
        if routers is not None:
            _note(name, "--routers", "the study's routers are fixed")
        if shard is not None:
            _note(name, "--shard", "no (setting, router) grid to shard")
        if estimator is not None:
            _note(name, "--estimator", "no (setting, router) grid to estimate")
        if mc_overlay is not None:
            _note(name, "--mc-overlay", "no (setting, router) grid to overlay")
        if scenario is not None or scenarios is not None:
            _note(
                name, "--scenario/--scenarios",
                "the study's workload is fixed by its definition",
            )
        result = fn(quick=quick, workers=workers)
        print(result.to_text())
        print()
        return
    if name == "topology-compare":
        if scenario is not None:
            _note(
                name, "--scenario",
                "the scenario axis is the table itself; use --scenarios "
                "to select its columns",
            )
        result = fn(
            quick=quick,
            workers=workers,
            cache=cache,
            routers=routers,
            shard=shard,
            estimator=estimator,
            mc_overlay=mc_overlay,
            scenarios=scenarios,
        )
        print(result.to_text())
        print()
        return

    # Grid experiments: with --scenarios, run once per workload.
    for index, base in enumerate([scenario] if scenarios is None else scenarios):
        if scenarios is not None:
            print(f"--- scenario: {base} ---")
        kwargs = dict(
            quick=quick,
            workers=workers,
            cache=cache,
            shard=shard,
            estimator=estimator,
            scenario=base,
        )
        if name in _FIXED_ROUTERS:
            if routers is not None and index == 0:
                _note(name, "--routers", "the table's router set is fixed")
            if mc_overlay is not None and index == 0:
                _note(name, "--mc-overlay", "tables have no series to overlay")
        elif name == "mc-validate":
            if mc_overlay is not None and index == 0:
                _note(
                    name, "--mc-overlay",
                    "the validation table already pairs analytic and MC",
                )
            if estimator is not None and not estimator.is_mc:
                # Reachable via `all --estimator analytic`: the other
                # experiments honour the analytic spec, the validation
                # table keeps its MC default instead of failing the run.
                if index == 0:
                    _note(
                        name, "--estimator",
                        "mc-validate always pairs analytic with MC; using "
                        "its default mc spec",
                    )
                kwargs["estimator"] = None
            kwargs["routers"] = routers
        else:
            kwargs["routers"] = routers
            kwargs["mc_overlay"] = mc_overlay
        result = fn(**kwargs)
        print(result.to_text())
        print()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        print("serve")
        return 0
    if args.experiment == "routers":
        for key in router_keys():
            print(key)
        return 0
    if args.experiment == "scenarios":
        print("presets:")
        for name, spec in SCENARIO_PRESETS.items():
            print(f"  {name} = {spec}")
        print(f"topology keys: {', '.join(topology_keys())}")
        print(
            "spec grammar: topology[:param=val,...] with parameters "
            f"{', '.join(scenario_param_names())}"
        )
        return 0
    if args.experiment == "regen-regression":
        path = regenerate_regression_fixture()
        print(f"regenerated {path}")
        return 0
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    if (
        args.shard is not None
        and cache is None
        and default_result_cache() is None
    ):
        print(
            "note: --shard without --cache-dir (or REPRO_CACHE_DIR) "
            "computes a partial result that cannot merge with other "
            "shards",
            file=sys.stderr,
        )
    mc_overlay = None
    if args.mc_overlay is not None:
        try:
            mc_overlay = parse_estimator(args.mc_overlay)
            if not mc_overlay.is_mc:
                raise ValueError(
                    f"--mc-overlay needs a Monte-Carlo estimator spec, "
                    f"got {args.mc_overlay!r}"
                )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if (
        args.experiment == "mc-validate"
        and args.estimator is not None
        and not args.estimator.is_mc
    ):
        print(
            "error: mc-validate needs a Monte-Carlo --estimator "
            "(e.g. mc:trials=1000); it always renders the analytic "
            "column alongside",
            file=sys.stderr,
        )
        return 2
    serve_flags = (
        ("--arrivals", args.arrivals),
        ("--duration", args.duration),
        ("--warmup", args.warmup),
        ("--replications", args.replications),
        ("--seed", args.seed),
        ("--replan", args.replan),
        ("--record-trace", args.record_trace),
        ("--faults", args.faults),
        ("--repair", args.repair),
    )
    if args.experiment != "serve":
        for flag, value in serve_flags:
            if value is not None:
                _note(args.experiment, flag, "only 'serve' reads it")
    else:
        if args.full:
            _note("serve", "--full", "--duration controls the run scale")
        if args.shard is not None:
            _note("serve", "--shard", "no (setting, router) grid to shard")
        if args.estimator is not None:
            _note("serve", "--estimator", "serve reports analytic rates")
        if mc_overlay is not None:
            _note("serve", "--mc-overlay", "serve reports analytic rates")
        if args.scenarios is not None:
            print(
                "error: serve takes a single --scenario, not --scenarios",
                file=sys.stderr,
            )
            return 2
        if args.repair is not None and args.faults is None:
            print(
                "error: --repair picks the recovery policy for injected "
                "faults; pass --faults as well",
                file=sys.stderr,
            )
            return 2
    quick = not args.full
    routers_used = args.routers is not None and (
        args.experiment == "all"
        or args.experiment not in (*_WORKERS_ONLY, *_FIXED_ROUTERS)
    )
    if routers_used:
        # Label collisions only arise from user-supplied specs; check
        # them here so the run fails as a clean usage error before any
        # routing work (runner re-checks as a backstop).  Experiments
        # that ignore --routers keep their "no effect" note instead.
        try:
            reject_duplicate_labels(
                [spec.build() for spec in args.routers]
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.experiment == "all" and args.scenarios is not None:
        print(
            "error: --scenarios multiplies every experiment; run "
            "'all' with a single --scenario, or one experiment with "
            "--scenarios",
            file=sys.stderr,
        )
        return 2

    def run_experiments() -> None:
        if args.experiment == "serve":
            report = run_serve_experiment(
                scenario=(
                    args.scenario if args.scenario is not None
                    else "paper-default"
                ),
                routers=args.routers,
                arrivals=args.arrivals,
                duration=(
                    args.duration if args.duration is not None else 200.0
                ),
                warmup=args.warmup if args.warmup is not None else 20.0,
                replications=(
                    args.replications if args.replications is not None else 3
                ),
                seed=args.seed,
                replan=(
                    args.replan if args.replan is not None else "incremental"
                ),
                workers=args.workers,
                cache=cache,
                record_trace=args.record_trace,
                faults=args.faults,
                repair=args.repair,
            )
            print(report.to_text())
            print()
            print(report.latency_text(), file=sys.stderr)
            if args.record_trace is not None:
                print(
                    f"trace written to {args.record_trace}",
                    file=sys.stderr,
                )
            return
        if args.experiment == "all":
            for name in EXPERIMENTS:
                if name == "fig9b-ext" and quick:
                    # Quick-mode fig9b-ext is bit-identical to fig9b,
                    # which the loop just ran; recomputing it adds
                    # nothing.
                    print(
                        "note: skipping 'fig9b-ext' in quick mode "
                        "(identical to fig9b; run with --full for the "
                        "800/1600 points)",
                        file=sys.stderr,
                    )
                    continue
                print(f"=== {name} ===")
                run_one(
                    name, quick, args.workers, cache, args.routers,
                    args.shard, args.estimator, mc_overlay,
                    scenario=args.scenario,
                )
            return
        run_one(
            args.experiment, quick, args.workers, cache, args.routers,
            args.shard, args.estimator, mc_overlay, scenario=args.scenario,
            scenarios=args.scenarios,
        )

    if not args.profile and args.profile_out is None:
        run_experiments()
        return 0
    # Perf PRs start from data: profile the run as-is (worker processes
    # profile as pool waiting time — use sequential runs to see the
    # routing internals) and report the top of the --profile-sort tree.
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_experiments()
    finally:
        profiler.disable()
        if args.profile_out is not None:
            profiler.dump_stats(args.profile_out)
            print(f"profile stats written to {args.profile_out}",
                  file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats(args.profile_sort).print_stats(25)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig8a
    python -m repro.experiments fig9b --full
    python -m repro.experiments all --full

``--full`` runs at paper scale (equivalent to REPRO_FULL=1); the default
quick mode shrinks networks and averaging for fast turnaround.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    alg4_ablation,
    fig7_generators,
    fig8a_link_probability,
    fig8b_swap_probability,
    fig9a_qubits,
    fig9b_switches,
    fig9c_states,
    fig9d_degree,
    headline_ratios,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig7": fig7_generators,
    "fig8a": fig8a_link_probability,
    "fig8b": fig8b_swap_probability,
    "fig9a": fig9a_qubits,
    "fig9b": fig9b_switches,
    "fig9c": fig9c_states,
    "fig9d": fig9d_degree,
    "headline": headline_ratios,
    "ablation": alg4_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="experiment id (figN / headline / ablation), 'all' or 'list'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at paper scale instead of the quick default",
    )
    return parser


def run_one(name: str, quick: bool) -> None:
    result = EXPERIMENTS[name](quick=quick)
    print(result.to_text())
    print()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    quick = not args.full
    if args.experiment == "all":
        for name in EXPERIMENTS:
            print(f"=== {name} ===")
            run_one(name, quick)
        return 0
    run_one(args.experiment, quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Content-addressed on-disk cache for sweep results.

Every ``(setting, router, estimator)`` triple of a sweep maps to one
cache entry holding the per-sample rates (and, for Monte-Carlo
estimators, standard errors) of that router at that setting.  The entry
key is a stable hash of the full recipe — the setting's scenario
identity (normalized topology key + workload parameters) and averaging
knobs, the router's configuration, the estimator's identity and the
cache format version — so any change to the experiment's inputs changes
the key and
re-running a figure only recomputes the points whose recipe actually
changed.

Entries store the exact floats (JSON round-trips ``repr`` precision), so
a cache hit reproduces the cold-run result bit-exactly.  Setting
``REPRO_CACHE_DIR`` makes every harness entry point cache-aware without
touching call sites (:func:`default_result_cache`) — this is how the
nightly CI tier reuses paper-scale results across runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.config import ExperimentSetting, env_text
from repro.experiments.estimators import ANALYTIC, EstimatorSpec, as_estimator
from repro.routing.registry import RouterSpecError

#: Bump when the cached payload layout or the routing semantics change
#: incompatibly; old entries then miss instead of poisoning results.
#: v2: router identity moved from class name to the registry
#: ``config_dict()`` (key + full parameters).
#: v3: estimator identity joined the key, entries grew per-sample
#: ``stderrs``, ``analytic_rates`` and a ``trials`` count so
#: Monte-Carlo results cache (with the analytic pairing that routing
#: produced as a by-product).
#: v4: setting identity moved to the scenario spec's ``config_dict()``
#: (normalized topology key + workload parameters, plus the averaging
#: knobs), so equal workloads hash identically however they were
#: spelled; estimator fingerprints grew the ``antithetic`` flag.
CACHE_FORMAT_VERSION = 4


def payload_key(payload: Dict) -> str:
    """Content hash of a JSON-ready *payload* dict (sorted-key JSON).

    The one hashing recipe every cache key goes through —
    :meth:`ResultCache.key_for` for sweep grids, the serve runner for
    online-serving results — so key stability rules live in one place.
    """
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def router_fingerprint(router) -> Dict:
    """A stable, JSON-ready description of *router*'s configuration.

    *router* may be a built router instance or a
    :class:`~repro.routing.registry.RouterSpec`; both expose
    ``config_dict()`` — the registry key plus every parameter value —
    which is identical across processes and for spec-built vs
    hand-constructed instances of the same configuration.  Unregistered
    routers fall back to class name + dataclass fields (or ``repr``),
    which keeps correctness at the cost of hashing stability across
    releases.
    """
    config = getattr(router, "config_dict", None)
    if callable(config):
        try:
            return config()
        except RouterSpecError:
            # E.g. an unregistered subclass of a registered router: its
            # inherited config_dict refuses to claim the base class's
            # identity, so fall through to the class-name fingerprint,
            # which keeps the two distinct.
            pass
    fingerprint: Dict = {"class": type(router).__name__}
    if dataclasses.is_dataclass(router) and not isinstance(router, type):
        fingerprint["config"] = dataclasses.asdict(router)
    else:
        fingerprint["repr"] = repr(router)
    return fingerprint


def setting_fingerprint(setting: ExperimentSetting) -> Dict:
    """A stable, JSON-ready description of one experiment setting.

    The workload half is the scenario spec's ``config_dict()`` — the
    normalized topology key plus every workload parameter — so settings
    built from a scenario string, a preset or a hand-constructed
    :class:`~repro.network.builder.NetworkConfig` (including via a
    generator alias) address the same entries.  The averaging knobs
    (``num_networks``, ``seed``) complete the identity.
    """
    return {
        "scenario": setting.scenario().config_dict(),
        "num_networks": setting.num_networks,
        "seed": setting.seed,
    }


class ResultCache:
    """Directory-backed cache of per-(setting, router, estimator) sweep
    results."""

    def __init__(self, cache_dir: Union[str, Path]):
        self.cache_dir = Path(cache_dir)

    def key_for(
        self,
        setting: ExperimentSetting,
        router,
        estimator: Union[None, str, EstimatorSpec] = None,
    ) -> str:
        """Content hash addressing the (setting, router, estimator) result.

        *router* may be an instance or a ``RouterSpec``; equal
        configurations hash identically either way, so shards running in
        different processes (or on different machines) address the same
        entries.  *estimator* defaults to analytic; a Monte-Carlo
        estimator's trials and engine are part of the key, so changing
        either recomputes only the affected points.
        """
        return payload_key({
            "cache_format_version": CACHE_FORMAT_VERSION,
            "setting": setting_fingerprint(setting),
            "router": router_fingerprint(router),
            "estimator": as_estimator(estimator).fingerprint(),
        })

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The cached entry for *key*, or ``None`` on miss/corruption.

        Returns ``{"algorithm": str, "rates": [...], "stderrs": [...],
        "analytic_rates": [...], "trials": int}`` with the lists in
        sample order (for analytic entries, stderrs are all zero,
        trials zero and analytic_rates equal rates).
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("cache_format_version") != CACHE_FORMAT_VERSION:
            return None
        algorithm = entry.get("algorithm")
        rates = entry.get("rates")
        stderrs = entry.get("stderrs")
        analytic_rates = entry.get("analytic_rates")
        trials = entry.get("trials")
        if not isinstance(algorithm, str) or not isinstance(rates, list):
            return None
        if not isinstance(stderrs, list) or len(stderrs) != len(rates):
            return None
        if (
            not isinstance(analytic_rates, list)
            or len(analytic_rates) != len(rates)
        ):
            return None
        if not isinstance(trials, int) or isinstance(trials, bool) or trials < 0:
            return None
        values = rates + stderrs + analytic_rates
        if not all(isinstance(v, (int, float)) for v in values):
            return None
        return {
            "algorithm": algorithm,
            "rates": [float(r) for r in rates],
            "stderrs": [float(s) for s in stderrs],
            "analytic_rates": [float(a) for a in analytic_rates],
            "trials": trials,
        }

    def get_json(self, key: str, kind: str) -> Optional[Dict]:
        """A generic JSON entry of the given *kind*, or ``None``.

        Entries written by :meth:`put_json` carry a ``kind`` tag so
        differently-shaped payloads (sweep grids vs serve results) can
        never masquerade as each other, plus the format version gate the
        sweep entries use.  Returns the stored ``payload`` dict.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("cache_format_version") != CACHE_FORMAT_VERSION:
            return None
        if entry.get("kind") != kind:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put_json(self, key: str, kind: str, payload: Dict) -> None:
        """Store a generic JSON *payload* under *key*, atomically.

        JSON round-trips ``repr`` float precision, so a cache hit
        reproduces the cold-run payload bit-exactly.
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_format_version": CACHE_FORMAT_VERSION,
            "kind": kind,
            "payload": payload,
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)

    def put(
        self,
        key: str,
        algorithm: str,
        rates: List[float],
        stderrs: Optional[List[float]] = None,
        trials: int = 0,
        analytic_rates: Optional[List[float]] = None,
    ) -> None:
        """Store one (setting, router, estimator) result atomically.

        ``stderrs`` defaults to all-zero and ``analytic_rates`` to
        ``rates`` (the analytic case); both must match ``rates``
        sample-for-sample otherwise.
        """
        if stderrs is None:
            stderrs = [0.0] * len(rates)
        if analytic_rates is None:
            analytic_rates = list(rates)
        if len(stderrs) != len(rates):
            raise ValueError(
                f"{len(rates)} rates but {len(stderrs)} stderrs"
            )
        if len(analytic_rates) != len(rates):
            raise ValueError(
                f"{len(rates)} rates but {len(analytic_rates)} "
                "analytic rates"
            )
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_format_version": CACHE_FORMAT_VERSION,
            "algorithm": algorithm,
            "rates": list(rates),
            "stderrs": list(stderrs),
            "analytic_rates": list(analytic_rates),
            "trials": trials,
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)


def default_result_cache() -> Optional[ResultCache]:
    """The environment's default cache, or ``None`` when unset.

    ``REPRO_CACHE_DIR`` names a cache directory every harness entry
    point (figures, tables, benchmarks, CLIs) uses when no explicit
    ``cache``/``--cache-dir`` was given, so a whole pytest bench run can
    be made cache-aware with one variable.
    """
    raw = env_text("REPRO_CACHE_DIR")
    return ResultCache(raw) if raw else None

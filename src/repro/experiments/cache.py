"""Content-addressed on-disk cache for sweep results.

Every ``(setting, router)`` pair of a sweep maps to one cache entry
holding the per-sample rates of that router at that setting.  The entry
key is a stable hash of the full recipe — the
:class:`~repro.experiments.config.ExperimentSetting` fields, the
router's configuration and the cache format version — so any change to
the experiment's inputs changes the key and re-running a figure only
recomputes the points whose recipe actually changed.

Entries store the exact floats (JSON round-trips ``repr`` precision), so
a cache hit reproduces the cold-run result bit-exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.config import ExperimentSetting
from repro.routing.registry import RouterSpecError

#: Bump when the cached payload layout or the routing semantics change
#: incompatibly; old entries then miss instead of poisoning results.
#: v2: router identity moved from class name to the registry
#: ``config_dict()`` (key + full parameters).
CACHE_FORMAT_VERSION = 2


def router_fingerprint(router) -> Dict:
    """A stable, JSON-ready description of *router*'s configuration.

    *router* may be a built router instance or a
    :class:`~repro.routing.registry.RouterSpec`; both expose
    ``config_dict()`` — the registry key plus every parameter value —
    which is identical across processes and for spec-built vs
    hand-constructed instances of the same configuration.  Unregistered
    routers fall back to class name + dataclass fields (or ``repr``),
    which keeps correctness at the cost of hashing stability across
    releases.
    """
    config = getattr(router, "config_dict", None)
    if callable(config):
        try:
            return config()
        except RouterSpecError:
            # E.g. an unregistered subclass of a registered router: its
            # inherited config_dict refuses to claim the base class's
            # identity, so fall through to the class-name fingerprint,
            # which keeps the two distinct.
            pass
    fingerprint: Dict = {"class": type(router).__name__}
    if dataclasses.is_dataclass(router) and not isinstance(router, type):
        fingerprint["config"] = dataclasses.asdict(router)
    else:
        fingerprint["repr"] = repr(router)
    return fingerprint


def setting_fingerprint(setting: ExperimentSetting) -> Dict:
    """A stable, JSON-ready description of one experiment setting."""
    return dataclasses.asdict(setting)


class ResultCache:
    """Directory-backed cache of per-(setting, router) sweep results."""

    def __init__(self, cache_dir: Union[str, Path]):
        self.cache_dir = Path(cache_dir)

    def key_for(self, setting: ExperimentSetting, router) -> str:
        """Content hash addressing the (setting, router) result.

        *router* may be an instance or a ``RouterSpec``; equal
        configurations hash identically either way, so shards running in
        different processes (or on different machines) address the same
        entries.
        """
        payload = {
            "cache_format_version": CACHE_FORMAT_VERSION,
            "setting": setting_fingerprint(setting),
            "router": router_fingerprint(router),
        }
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The cached entry for *key*, or ``None`` on miss/corruption.

        Returns ``{"algorithm": str, "rates": [float, ...]}`` with rates
        in sample order.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("cache_format_version") != CACHE_FORMAT_VERSION:
            return None
        algorithm = entry.get("algorithm")
        rates = entry.get("rates")
        if not isinstance(algorithm, str) or not isinstance(rates, list):
            return None
        if not all(isinstance(rate, (int, float)) for rate in rates):
            return None
        return {"algorithm": algorithm, "rates": [float(r) for r in rates]}

    def put(self, key: str, algorithm: str, rates: List[float]) -> None:
        """Store one (setting, router) result atomically."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_format_version": CACHE_FORMAT_VERSION,
            "algorithm": algorithm,
            "rates": list(rates),
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)

"""Experiment harness: sweeps, figure/table definitions and reporting.

Every figure and table of the paper's evaluation section has a definition
here that regenerates its rows/series; the ``benchmarks/`` tree wraps them
in pytest-benchmark targets.  ``quick=True`` (the default used in CI-sized
runs) shrinks the network count and size; set the environment variable
``REPRO_FULL=1`` — or pass ``quick=False`` — for paper-scale runs.
"""

from repro.experiments.cache import ResultCache, default_result_cache
from repro.experiments.config import ExperimentSetting, default_workers, is_full_run
from repro.experiments.estimators import (
    ANALYTIC,
    EstimatorSpec,
    as_estimator,
    estimate_plan,
    estimation_rng,
    parse_estimator,
)
from repro.experiments.harness import (
    SweepTask,
    TaskOutcome,
    enumerate_tasks,
    execute_task,
    merge_outcomes,
    parallel_map,
    parse_shard,
    run_tasks,
    shard_member,
    shard_tasks,
)
from repro.experiments.regression import (
    build_regression_instance,
    regenerate_regression_fixture,
)
from repro.experiments.mc_validate import McValidationResult, mc_validate
from repro.experiments.runner import (
    SweepResult,
    run_outcomes,
    run_setting,
    run_settings,
    run_sweep,
    standard_specs,
)
from repro.experiments.scenarios import (
    PAPER_DEFAULT,
    ScenarioSpec,
    ScenarioSpecError,
    as_scenario,
    as_setting,
    parse_scenario,
    parse_scenario_names,
    scenario_presets,
)
from repro.experiments.topology_compare import (
    DEFAULT_COMPARE_SCENARIOS,
    topology_compare,
)
from repro.experiments.figures import (
    fig7_generators,
    fig8a_link_probability,
    fig8b_swap_probability,
    fig9a_qubits,
    fig9b_ext_switches,
    fig9b_switches,
    fig9c_states,
    fig9d_degree,
)
from repro.experiments.tables import alg4_ablation, headline_ratios
from repro.experiments.lattice import lattice_distance_study
from repro.experiments.protocol_study import protocol_coherence_study

__all__ = [
    "ANALYTIC",
    "DEFAULT_COMPARE_SCENARIOS",
    "EstimatorSpec",
    "ExperimentSetting",
    "McValidationResult",
    "PAPER_DEFAULT",
    "ResultCache",
    "ScenarioSpec",
    "ScenarioSpecError",
    "as_scenario",
    "as_setting",
    "parse_scenario",
    "parse_scenario_names",
    "scenario_presets",
    "topology_compare",
    "as_estimator",
    "default_result_cache",
    "estimate_plan",
    "estimation_rng",
    "mc_validate",
    "parse_estimator",
    "run_outcomes",
    "default_workers",
    "is_full_run",
    "SweepResult",
    "SweepTask",
    "TaskOutcome",
    "enumerate_tasks",
    "execute_task",
    "merge_outcomes",
    "parallel_map",
    "parse_shard",
    "run_tasks",
    "shard_member",
    "shard_tasks",
    "build_regression_instance",
    "regenerate_regression_fixture",
    "run_setting",
    "run_settings",
    "run_sweep",
    "standard_specs",
    "fig7_generators",
    "fig8a_link_probability",
    "fig8b_swap_probability",
    "fig9a_qubits",
    "fig9b_switches",
    "fig9b_ext_switches",
    "fig9c_states",
    "fig9d_degree",
    "headline_ratios",
    "alg4_ablation",
    "lattice_distance_study",
    "protocol_coherence_study",
]

"""Experiment configuration records."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.network.builder import NetworkConfig
from repro.network.registry import quick_switch_count
from repro.quantum.noise import DEFAULT_ALPHA, LinkModel, SwapModel


def env_raw(name: str) -> Optional[str]:
    """Raw environment read: the value as set, or ``None`` when unset.

    This module is the package's single sanctioned ``os.environ`` read
    path (lint rule RPL003): every variable the library recognises is
    either read here or routed through these accessors, so the full
    environment surface stays greppable in one file.
    """
    return os.environ.get(name)


def env_text(name: str) -> str:
    """Environment read normalised to stripped text (``""`` when unset).

    The common accessor shape: callers that only care whether a value
    was provided (``REPRO_CACHE_DIR``, ``REPRO_WORKERS``) never have to
    distinguish unset from blank.  See :func:`env_raw` for the
    unset-vs-set distinction.
    """
    return os.environ.get(name, "").strip()


def is_full_run() -> bool:
    """True when the environment requests paper-scale experiment runs."""
    return env_text("REPRO_FULL") not in ("", "0", "false")


def default_workers() -> int:
    """Worker-process count requested via ``REPRO_WORKERS`` (0 = inline).

    Harness entry points treat ``workers=None`` as "use this default", so
    one environment variable parallelises every figure/table sweep without
    touching call sites.
    """
    raw = env_text("REPRO_WORKERS")
    if not raw:
        return 0
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from exc
    return max(0, workers)


@dataclass(frozen=True)
class ExperimentSetting:
    """One evaluation point: a network family plus quantum parameters.

    Defaults are the paper's (Section V-A): Waxman, 100 switches, average
    degree 10, 10 qubits/switch, 20 demanded states, q = 0.9,
    p = e^{-1e-4 L}, averaged over 5 random networks.
    """

    network: NetworkConfig = field(default_factory=NetworkConfig)
    num_states: int = 20
    alpha: float = DEFAULT_ALPHA
    fixed_p: Optional[float] = None
    swap_q: float = 0.9
    num_networks: int = 5
    seed: int = 20230601

    def link_model(self) -> LinkModel:
        """The link success model this setting implies."""
        return LinkModel(alpha=self.alpha, fixed_p=self.fixed_p)

    def swap_model(self) -> SwapModel:
        """The fusion success model this setting implies."""
        return SwapModel(q=self.swap_q)

    def with_updates(self, **kwargs) -> "ExperimentSetting":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def scenario(self):
        """The :class:`~repro.experiments.scenarios.ScenarioSpec` this
        setting evaluates (the workload, minus the averaging knobs).

        The result cache keys settings through this — equal workloads
        hash identically however their settings were constructed.
        """
        from repro.experiments.scenarios import ScenarioSpec

        return ScenarioSpec.from_setting(self)

    def scaled_for_quick_run(self) -> "ExperimentSetting":
        """A cheaper variant for CI-sized runs: fewer, smaller networks.

        The scaling keeps the resource ratios (qubits per demand, degree)
        intact so orderings and trends survive; only the averaging and
        network size shrink.  The halved switch count is snapped to the
        topology family's nearest valid value (grids stay square) via
        the registry's ``quick_switches`` hook.
        """
        quick_network = self.network.with_updates(
            num_switches=quick_switch_count(
                self.network.generator,
                max(30, self.network.num_switches // 2),
            )
        )
        return self.with_updates(
            network=quick_network,
            num_networks=min(self.num_networks, 2),
            num_states=min(self.num_states, 20),
        )

"""Headline-comparison and ablation tables (paper Section V-C-1 / V-C-3).

The paper's headline claims are improvement *ratios* over Q-CAST at the
default setting and across parameter sweeps:

* ALG-N-FUSION, Q-CAST-N and B1 improve over Q-CAST by up to 655%, 198%
  and 92% respectively (n-fusion vs. classic swapping);
* ALG-N-FUSION improves over Q-CAST-N / B1 by up to 153% / 293%
  (performance among n-fusion algorithms);
* Algorithm 4 improves over Algorithm 3 alone by up to 16.3%.

:func:`headline_ratios` recomputes those ratios over the same sweeps; the
benchmark target prints paper-vs-measured rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting, is_full_run
from repro.experiments.runner import run_settings, standard_specs
from repro.experiments.scenarios import as_setting
from repro.routing.registry import RouterSpec
from repro.utils.tables import AsciiTable


@dataclass(frozen=True)
class RatioReport:
    """Max observed improvement ratios across the evaluated settings.

    A ratio is ``None`` when no evaluated setting held both of its
    operand series — e.g. a ``--shard`` slice that owns neither — and
    renders as ``n/a`` rather than a fabricated measurement.
    """

    best_improvement_over_qcast: Dict[str, float]
    alg_over_qcast_n: Optional[float]
    alg_over_b1: Optional[float]
    per_setting_rates: List[Dict[str, float]]

    def to_text(self) -> str:
        """Render paper-vs-measured rows."""
        table = AsciiTable(["comparison", "paper (up to)", "measured (up to)"])
        table.add_row([
            "ALG-N-FUSION vs Q-CAST",
            "655%",
            _pct(self.best_improvement_over_qcast.get("ALG-N-FUSION")),
        ])
        table.add_row([
            "Q-CAST-N vs Q-CAST",
            "198%",
            _pct(self.best_improvement_over_qcast.get("Q-CAST-N")),
        ])
        table.add_row([
            "B1 vs Q-CAST",
            "92%",
            _pct(self.best_improvement_over_qcast.get("B1")),
        ])
        table.add_row([
            "ALG-N-FUSION vs Q-CAST-N", "153%", _pct(self.alg_over_qcast_n)
        ])
        table.add_row([
            "ALG-N-FUSION vs B1", "293%", _pct(self.alg_over_b1)
        ])
        return table.render()


def _pct(ratio: Optional[float]) -> str:
    if ratio is None:
        return "n/a"
    return f"{100.0 * ratio:.0f}%"


def _max_or_none(values) -> Optional[float]:
    """``max(values)``, or ``None`` for an empty sequence."""
    values = list(values)
    return max(values) if values else None


def _improvement(a: float, b: float) -> float:
    """Relative improvement of *a* over *b* (0 when b has no signal)."""
    if b <= 1e-9:
        return 0.0
    return (a - b) / b


def headline_settings(
    quick: bool, scenario=None
) -> List[ExperimentSetting]:
    """The settings the headline ratios are maximised over: the base
    network plus the low-p / low-q corners where n-fusion shines.

    ``scenario`` (a spec, preset name or spec string) replaces the
    paper-default base workload; the corner overrides apply on top.
    """
    base = (
        as_setting(scenario) if scenario is not None else ExperimentSetting()
    )
    if quick:
        base = base.scaled_for_quick_run()
    return [
        base,
        base.with_updates(fixed_p=0.1),
        base.with_updates(fixed_p=0.2),
        base.with_updates(swap_q=0.5),
    ]


def headline_ratios(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    scenario=None,
) -> RatioReport:
    """Recompute the paper's Section V-C-1 headline improvement ratios.

    The compared router set is fixed (the ratios are defined over the
    paper's four series); ``shard=(i, n)`` still slices the (setting,
    router) grid for distributed runs merging through a shared cache.
    ``estimator`` recomputes the ratios over Monte-Carlo rates instead
    of analytic ones (the paper's are analytic); ``scenario`` swaps the
    base workload the corners perturb.
    """
    if quick is None:
        quick = not is_full_run()
    best_over_qcast: Dict[str, float] = {}
    alg_over_qcast_n: Optional[float] = None
    alg_over_b1: Optional[float] = None
    per_setting = []
    all_rates = run_settings(
        headline_settings(quick, scenario),
        routers=standard_specs(),
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
    )
    for rates in all_rates:
        per_setting.append(rates)
        # Sharded runs may lack some series at a setting; a ratio is
        # only measured where both of its operands are, so partial runs
        # report n/a instead of fabricated zeros.
        qcast = rates.get("Q-CAST")
        for name in ("ALG-N-FUSION", "Q-CAST-N", "B1"):
            if qcast is None or name not in rates:
                continue
            best_over_qcast.setdefault(name, 0.0)
            improvement = _improvement(rates[name], qcast)
            if improvement > best_over_qcast[name]:
                best_over_qcast[name] = improvement
        alg = rates.get("ALG-N-FUSION")
        if alg is not None and "Q-CAST-N" in rates:
            alg_over_qcast_n = max(
                alg_over_qcast_n or 0.0, _improvement(alg, rates["Q-CAST-N"])
            )
        if alg is not None and "B1" in rates:
            alg_over_b1 = max(
                alg_over_b1 or 0.0, _improvement(alg, rates["B1"])
            )
    return RatioReport(
        best_improvement_over_qcast=best_over_qcast,
        alg_over_qcast_n=alg_over_qcast_n,
        alg_over_b1=alg_over_b1,
        per_setting_rates=per_setting,
    )


@dataclass(frozen=True)
class AblationReport:
    """Decomposition of the residual-spending machinery (paper V-C-3).

    The paper's "Alg-3" series is a *single* Algorithm 3 admission sweep;
    its Algorithm 4 then adds up to 16.3%.  Our Step II additionally runs
    refill sweeps, which spend residual qubits on new branch paths before
    Algorithm 4 sees them.  The report therefore separates three variants
    per setting: the full pipeline, no-Algorithm-4 (refill on), and the
    paper-literal single sweep (no refill, no Algorithm 4); the paper's
    16.3% corresponds to ``full`` vs ``single sweep``.
    """

    rows: Tuple[Tuple[str, float, float, float], ...]

    @property
    def improvement(self) -> Optional[float]:
        """Max gain of the full pipeline over the paper-literal Alg-3
        single sweep (the paper's comparison).

        ``None`` when no row holds both operands (a ``shard`` slice
        owning neither variant); NaN rows are skipped so partial runs
        aggregate only what they measured.
        """
        return _max_or_none(
            _improvement(full, sweep)
            for _, full, _, sweep in self.rows
            if not (math.isnan(full) or math.isnan(sweep))
        )

    @property
    def alg4_only_improvement(self) -> Optional[float]:
        """Max gain attributable to Algorithm 4 once refill already ran."""
        return _max_or_none(
            _improvement(full, no_a4)
            for _, full, no_a4, _ in self.rows
            if not (math.isnan(full) or math.isnan(no_a4))
        )

    def to_text(self) -> str:
        """Render paper-vs-measured rows."""
        table = AsciiTable(
            ["setting", "full", "no Alg-4", "single sweep", "gain vs sweep"]
        )
        for label, full, no_a4, sweep in self.rows:
            table.add_row(
                [label, full, no_a4, sweep, _pct(_improvement(full, sweep))]
            )
        footer = (
            "residual-spending gain, max over settings "
            f"(paper Alg-4: up to 16.3%): {_pct(self.improvement)}; "
            f"Alg-4 after refill: {_pct(self.alg4_only_improvement)}"
        )
        return f"{table.render()}\n{footer}"


def alg4_ablation(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    scenario=None,
) -> AblationReport:
    """Recompute the paper's Algorithm 4 ablation (Section V-C-3).

    The three variants are fixed by the ablation's definition; a
    ``shard`` slice leaves the rows it does not own as NaN until the
    complementary shards land in the shared cache.  ``scenario`` swaps
    the base workload the settings column perturbs.
    """
    if quick is None:
        quick = not is_full_run()
    labels = ("default", "p=0.1", "p=0.2", "q=0.5")
    rows = []
    all_rates = run_settings(
        headline_settings(quick, scenario),
        routers=[
            RouterSpec.create("alg-n-fusion"),
            RouterSpec.create(
                "alg-n-fusion", include_alg4=False, name="ALG-NO4"
            ),
            RouterSpec.create(
                "alg-n-fusion",
                include_alg4=False,
                refill_rounds=0,
                name="ALG-SWEEP",
            ),
        ],
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
    )
    missing = float("nan")
    for label, rates in zip(labels, all_rates):
        rows.append(
            (
                label,
                rates.get("ALG-N-FUSION", missing),
                rates.get("ALG-NO4 (Alg-3 only)", missing),
                rates.get("ALG-SWEEP (Alg-3 only)", missing),
            )
        )
    return AblationReport(rows=tuple(rows))

"""Sweep runner: evaluate routers across experiment settings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.config import ExperimentSetting
from repro.network.builder import build_network
from repro.network.demands import generate_demands
from repro.routing.baselines import B1Router, QCastNRouter, QCastRouter
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.tables import format_series


def standard_routers(include_alg3_only: bool = False) -> List:
    """The paper's benchmark set, in its reporting order."""
    routers = [
        AlgNFusion(),
        QCastRouter(),
        QCastNRouter(),
        B1Router(),
    ]
    if include_alg3_only:
        routers.append(AlgNFusion(include_alg4=False, name="ALG-N-FUSION"))
    return routers


def run_setting(
    setting: ExperimentSetting,
    routers: Optional[Sequence] = None,
) -> Dict[str, float]:
    """Mean network entanglement rate per algorithm at one setting.

    Each of the setting's ``num_networks`` samples draws a fresh topology
    and demand set from the setting's seed; every router sees the same
    samples, so the comparison is paired.
    """
    routers = list(routers) if routers is not None else standard_routers()
    rng = ensure_rng(setting.seed)
    sample_rngs = spawn_rng(rng, setting.num_networks)
    link_model = setting.link_model()
    swap_model = setting.swap_model()
    totals: Dict[str, List[float]] = {}
    for sample_rng in sample_rngs:
        network = build_network(setting.network, sample_rng)
        demands = generate_demands(network, setting.num_states, sample_rng)
        for router in routers:
            result = router.route(network, demands, link_model, swap_model)
            totals.setdefault(result.algorithm, []).append(result.total_rate)
    return {name: sum(values) / len(values) for name, values in totals.items()}


@dataclass
class SweepResult:
    """A figure-style sweep: one x-axis, one series per algorithm."""

    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add_point(self, rates: Mapping[str, float]) -> None:
        """Append one sweep point's per-algorithm rates."""
        for name, value in rates.items():
            self.series.setdefault(name, []).append(value)

    def to_text(self) -> str:
        """Render as the rows/series the paper's figure shows."""
        body = format_series(self.x_label, self.x_values, self.series)
        return f"{self.title}\n{body}"

    def series_for(self, algorithm: str) -> List[float]:
        """One algorithm's series."""
        return list(self.series[algorithm])


def run_sweep(
    title: str,
    x_label: str,
    x_values: Sequence,
    settings: Sequence[ExperimentSetting],
    routers: Optional[Sequence] = None,
) -> SweepResult:
    """Evaluate *settings* (one per x value) into a :class:`SweepResult`."""
    if len(x_values) != len(settings):
        raise ValueError(
            f"{len(x_values)} x values but {len(settings)} settings"
        )
    sweep = SweepResult(title=title, x_label=x_label, x_values=list(x_values))
    for setting in settings:
        sweep.add_point(run_setting(setting, routers))
    return sweep

"""Sweep runner: evaluate router specs across experiment settings.

The runner is a thin orchestration layer over
:mod:`repro.experiments.harness`: it expands settings × samples ×
routers into tasks, satisfies what it can from an optional
:class:`~repro.experiments.cache.ResultCache`, executes the rest inline
or across worker processes, and merges outcomes deterministically.  The
produced series are bit-identical for any ``workers`` value and for
warm-vs-cold caches.

Routers are addressed as :class:`~repro.routing.registry.RouterSpec`
values (spec strings and registered router instances are coerced via
:func:`~repro.routing.registry.as_spec`), so a sweep's router set can
come from a CLI flag, a config file or a cache key as easily as from
code.  Likewise each run evaluates under an
:class:`~repro.experiments.estimators.EstimatorSpec` — the analytic
Equation-1 rate by default, or a Monte-Carlo re-evaluation of every
routed plan (``"mc:trials=N,engine=vectorized|reference"``) — and
estimator identity is part of each cache key.  A ``shard=(index,
count)`` selector restricts execution to a deterministic slice of the
(setting, router) grid; complementary shards running anywhere merge
losslessly through a shared cache directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.cache import ResultCache, default_result_cache
from repro.experiments.config import ExperimentSetting, default_workers
from repro.experiments.estimators import (
    ANALYTIC,
    EstimatorSpec,
    EstimatorSpecError,
    as_estimator,
)
from repro.experiments.harness import (
    TaskOutcome,
    enumerate_tasks,
    merge_outcomes,
    run_tasks,
    shard_member,
    validate_shard,
)
from repro.experiments.scenarios import as_setting
from repro.routing.registry import Router, RouterSpec, as_spec
from repro.utils.tables import format_series


def standard_specs(
    include_alg3_only: bool = False,
    include_mcf: bool = False,
) -> List[RouterSpec]:
    """The paper's benchmark set as specs, in its reporting order.

    ``include_alg3_only`` appends the "Alg-3" ablation series (Figure
    7); ``include_mcf`` appends the multicommodity-flow LP extension.
    """
    specs = [
        RouterSpec.create("alg-n-fusion"),
        RouterSpec.create("q-cast"),
        RouterSpec.create("q-cast-n"),
        RouterSpec.create("b1"),
    ]
    if include_mcf:
        specs.append(RouterSpec.create("mcf"))
    if include_alg3_only:
        specs.append(RouterSpec.create("alg-n-fusion", include_alg4=False))
    return specs


def run_outcomes(
    settings: Sequence[ExperimentSetting],
    routers: Optional[Sequence] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator: Union[None, str, EstimatorSpec] = None,
) -> List[TaskOutcome]:
    """Every (setting, sample, router) outcome, in deterministic order.

    This is the sweep core :func:`run_settings` averages over; callers
    that need per-sample data — Monte-Carlo stderr columns, validation
    tables — consume it directly.  ``estimator`` selects how each routed
    plan becomes a rate (``None``/``"analytic"`` or an ``mc:...`` spec);
    estimator identity is part of the cache key, so analytic and MC
    results of the same grid coexist in one cache directory.

    Outcomes come back sorted by ``(setting, sample, router)`` and are
    bit-identical for any ``workers`` value, for warm-vs-cold caches and
    across complementary shards merged through a shared cache.  In a
    sharded run, series neither owned by this shard nor already cached
    are absent.

    ``settings`` entries may be :class:`ExperimentSetting` values or
    scenarios (:class:`~repro.experiments.scenarios.ScenarioSpec`
    values, preset names or spec strings) — the workload axis is
    addressable exactly like the router and estimator axes.
    """
    settings = [as_setting(setting) for setting in settings]
    estimator = as_estimator(estimator)
    specs = [
        as_spec(router)
        for router in (routers if routers is not None else standard_specs())
    ]
    built: List[Router] = [spec.build() for spec in specs]
    reject_duplicate_labels(built)
    if shard is not None:
        validate_shard(shard)
    if workers is None:
        workers = default_workers()
    if cache is None:
        cache = default_result_cache()

    cached_outcomes: List[TaskOutcome] = []
    pending_settings: List[ExperimentSetting] = []
    pending_router_lists: List[List] = []
    # Maps each pending (sub-)setting back to its original indices so
    # fresh outcomes can be re-labelled and cached after execution.
    pending_origin: List[tuple] = []

    for setting_index, setting in enumerate(settings):
        fresh_routers: List = []
        fresh_router_indices: List[int] = []
        for router_index, router in enumerate(built):
            entry = None
            if cache is not None:
                entry = cache.get(cache.key_for(setting, router, estimator))
            if entry is not None and len(entry["rates"]) == setting.num_networks:
                for sample_index, rate in enumerate(entry["rates"]):
                    cached_outcomes.append(
                        TaskOutcome(
                            setting_index=setting_index,
                            sample_index=sample_index,
                            router_index=router_index,
                            algorithm=entry["algorithm"],
                            total_rate=rate,
                            stderr=entry["stderrs"][sample_index],
                            trials=entry["trials"],
                            analytic_rate=entry["analytic_rates"][sample_index],
                        )
                    )
            elif shard is None or shard_member(
                shard, setting_index, router_index, len(built)
            ):
                fresh_routers.append(router)
                fresh_router_indices.append(router_index)
            # else: the series belongs to another shard — skip it here;
            # a later run sharing the cache directory merges it in.
        if fresh_routers:
            pending_settings.append(setting)
            pending_router_lists.append(fresh_routers)
            pending_origin.append((setting_index, fresh_router_indices))

    tasks = enumerate_tasks(pending_settings, pending_router_lists, estimator)
    raw_outcomes = run_tasks(tasks, workers=workers)

    fresh_outcomes: List[TaskOutcome] = []
    for outcome in raw_outcomes:
        setting_index, router_indices = pending_origin[outcome.setting_index]
        fresh_outcomes.append(
            TaskOutcome(
                setting_index=setting_index,
                sample_index=outcome.sample_index,
                router_index=router_indices[outcome.router_index],
                algorithm=outcome.algorithm,
                total_rate=outcome.total_rate,
                stderr=outcome.stderr,
                trials=outcome.trials,
                analytic_rate=outcome.analytic_rate,
            )
        )

    if cache is not None:
        _store_fresh(cache, settings, built, fresh_outcomes, estimator)

    return sorted(cached_outcomes + fresh_outcomes, key=lambda o: o.key)


def run_settings(
    settings: Sequence[ExperimentSetting],
    routers: Optional[Sequence] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator: Union[None, str, EstimatorSpec] = None,
) -> List[Dict[str, float]]:
    """Mean network entanglement rate per algorithm at each setting.

    Each setting's ``num_networks`` samples draw fresh topologies and
    demand sets from the setting's seed; every router sees the same
    samples, so the comparison is paired.  ``routers`` may mix
    :class:`RouterSpec` values, spec strings and registered router
    instances.  ``workers > 1`` fans the (setting, sample, router) task
    grid out over that many processes; ``cache`` short-circuits
    (setting, router, estimator) series already on disk (``None`` falls
    back to the ``REPRO_CACHE_DIR`` environment default).
    ``workers=None`` reads the ``REPRO_WORKERS`` environment default.
    ``estimator`` selects analytic Equation-1 rates (the default) or a
    Monte-Carlo re-evaluation of each routed plan (``"mc:trials=N"``).

    ``shard=(index, count)`` executes only the grid slice the shard
    owns; series owned by other shards are still *read* from the cache
    when present, so once every shard has run against a shared cache
    directory any further run returns the complete merged result.
    Series neither owned nor cached are simply absent from the returned
    mappings.
    """
    settings = [as_setting(setting) for setting in settings]
    outcomes = run_outcomes(
        settings,
        routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
    )
    return merge_outcomes(len(settings), outcomes)


def reject_duplicate_labels(built: Sequence) -> None:
    """Fail before any routing work when two routers will report the
    same series label.

    ``merge_outcomes`` catches this too, but only after the sweep has
    executed — a potentially hours-long waste for ``--full`` runs.
    Routers expose the label either as ``algorithm_label`` (when it is
    not simply the name, e.g. AlgNFusion's Alg-3-only suffix) or as
    ``name``; routers exposing neither are left to the backstop.
    """
    owners: Dict[str, int] = {}
    for index, router in enumerate(built):
        label = getattr(
            router, "algorithm_label", getattr(router, "name", None)
        )
        if label is None:
            continue
        owner = owners.setdefault(label, index)
        if owner != index:
            raise ValueError(
                f"duplicate algorithm label {label!r}: routers {owner} and "
                f"{index} both report it — give each router a distinct "
                "name (e.g. ':name=VARIANT') so their series stay separate"
            )


def _store_fresh(
    cache: ResultCache,
    settings: Sequence[ExperimentSetting],
    routers: Sequence,
    outcomes: Sequence[TaskOutcome],
    estimator: EstimatorSpec,
) -> None:
    """Persist freshly computed (setting, router, estimator) series."""
    grouped: Dict[tuple, Dict[int, TaskOutcome]] = {}
    for outcome in outcomes:
        slot = grouped.setdefault(
            (outcome.setting_index, outcome.router_index), {}
        )
        slot[outcome.sample_index] = outcome
    for (setting_index, router_index), by_sample in grouped.items():
        setting = settings[setting_index]
        if len(by_sample) != setting.num_networks:
            continue  # incomplete series (shouldn't happen) — don't cache
        ordered = [by_sample[i] for i in range(setting.num_networks)]
        cache.put(
            cache.key_for(setting, routers[router_index], estimator),
            ordered[0].algorithm,
            [outcome.total_rate for outcome in ordered],
            stderrs=[outcome.stderr for outcome in ordered],
            trials=ordered[0].trials,
            analytic_rates=[outcome.analytic_rate for outcome in ordered],
        )


def run_setting(
    setting: ExperimentSetting,
    routers: Optional[Sequence] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator: Union[None, str, EstimatorSpec] = None,
) -> Dict[str, float]:
    """Mean network entanglement rate per algorithm at one setting.

    See :func:`run_settings` for the execution model; this is the
    single-setting convenience wrapper.
    """
    return run_settings(
        [setting],
        routers,
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
    )[0]


@dataclass
class SweepResult:
    """A figure-style sweep: one x-axis, one series per algorithm."""

    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]] = field(default_factory=dict)
    _points_added: int = field(default=0, init=False, repr=False)

    def add_point(self, rates: Mapping[str, float]) -> None:
        """Append one sweep point's per-algorithm rates.

        Algorithms absent at this point — e.g. series owned by another
        shard of a partitioned run — are padded with NaN so every column
        stays aligned with ``x_values``.
        """
        index = self._points_added
        self._points_added = index + 1
        for name, value in rates.items():
            column = self.series.setdefault(name, [])
            column.extend([float("nan")] * (index - len(column)))
            column.append(value)
        for column in self.series.values():
            column.extend([float("nan")] * (index + 1 - len(column)))

    def to_text(self) -> str:
        """Render as the rows/series the paper's figure shows."""
        body = format_series(self.x_label, self.x_values, self.series)
        return f"{self.title}\n{body}"

    def series_for(self, algorithm: str) -> List[float]:
        """One algorithm's series."""
        return list(self.series[algorithm])


#: Suffix appended to a series name for its Monte-Carlo overlay column.
MC_OVERLAY_SUFFIX = " [MC]"


def run_sweep(
    title: str,
    x_label: str,
    x_values: Sequence,
    settings: Sequence[ExperimentSetting],
    routers: Optional[Sequence] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator: Union[None, str, EstimatorSpec] = None,
    mc_overlay: Union[None, str, EstimatorSpec] = None,
) -> SweepResult:
    """Evaluate *settings* (one per x value) into a :class:`SweepResult`.

    All settings' tasks are pooled into one grid before execution, so a
    multi-worker run keeps every process busy across the whole sweep
    rather than barriering at each x value.

    ``estimator`` evaluates the whole sweep under one estimator;
    ``mc_overlay`` additionally evaluates the same grid under a
    Monte-Carlo estimator and appends its series as ``"<name> [MC]"``
    columns next to the base ones, so every figure can carry MC
    validation points.  With an analytic base (the default) the overlay
    needs no extra routing: every MC outcome carries the analytic rate
    its routing produced, so one pass yields both columns.
    """
    if len(x_values) != len(settings):
        raise ValueError(
            f"{len(x_values)} x values but {len(settings)} settings"
        )
    settings = [as_setting(setting) for setting in settings]
    base_spec = as_estimator(estimator)
    overlay_spec = None
    if mc_overlay is not None:
        overlay_spec = as_estimator(mc_overlay)
        if not overlay_spec.is_mc:
            raise EstimatorSpecError(
                f"mc_overlay must be a Monte-Carlo estimator, got "
                f"{overlay_spec}"
            )
    if overlay_spec is not None and base_spec == ANALYTIC:
        outcomes = run_outcomes(
            settings,
            routers,
            workers=workers,
            cache=cache,
            shard=shard,
            estimator=overlay_spec,
        )
        base_points = merge_outcomes(
            len(settings), outcomes, value=lambda o: o.analytic_rate
        )
        overlay_points = merge_outcomes(len(settings), outcomes)
        # The analytic series came for free with the MC routing; store
        # them under their own estimator key too, so a later plain
        # analytic run of this grid is a cache read, not a re-route.
        store_cache = cache if cache is not None else default_result_cache()
        if store_cache is not None:
            specs = [
                as_spec(r)
                for r in (routers if routers is not None else standard_specs())
            ]
            analytic_outcomes = [
                TaskOutcome(
                    setting_index=o.setting_index,
                    sample_index=o.sample_index,
                    router_index=o.router_index,
                    algorithm=o.algorithm,
                    total_rate=o.analytic_rate,
                    analytic_rate=o.analytic_rate,
                )
                for o in outcomes
            ]
            _store_fresh(
                store_cache, settings, specs, analytic_outcomes, ANALYTIC
            )
    elif overlay_spec is not None and overlay_spec == base_spec:
        # Base and overlay are the same estimator; one pass serves both
        # column sets.
        base_points = run_settings(
            settings,
            routers,
            workers=workers,
            cache=cache,
            shard=shard,
            estimator=base_spec,
        )
        overlay_points = base_points
    else:
        base_points = run_settings(
            settings,
            routers,
            workers=workers,
            cache=cache,
            shard=shard,
            estimator=base_spec,
        )
        overlay_points = None
        if overlay_spec is not None:
            overlay_points = run_settings(
                settings,
                routers,
                workers=workers,
                cache=cache,
                shard=shard,
                estimator=overlay_spec,
            )
    sweep = SweepResult(title=title, x_label=x_label, x_values=list(x_values))
    for index, rates in enumerate(base_points):
        point = dict(rates)
        if overlay_points is not None:
            for name, value in overlay_points[index].items():
                point[f"{name}{MC_OVERLAY_SUFFIX}"] = value
        sweep.add_point(point)
    return sweep

"""Sweep runner: evaluate routers across experiment settings.

The runner is a thin orchestration layer over
:mod:`repro.experiments.harness`: it expands settings × samples ×
routers into tasks, satisfies what it can from an optional
:class:`~repro.experiments.cache.ResultCache`, executes the rest inline
or across worker processes, and merges outcomes deterministically.  The
produced series are bit-identical for any ``workers`` value and for
warm-vs-cold caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting, default_workers
from repro.experiments.harness import (
    TaskOutcome,
    enumerate_tasks,
    merge_outcomes,
    run_tasks,
)
from repro.routing.baselines import B1Router, QCastNRouter, QCastRouter
from repro.routing.nfusion import AlgNFusion
from repro.utils.tables import format_series


def standard_routers(include_alg3_only: bool = False) -> List:
    """The paper's benchmark set, in its reporting order."""
    routers = [
        AlgNFusion(),
        QCastRouter(),
        QCastNRouter(),
        B1Router(),
    ]
    if include_alg3_only:
        routers.append(AlgNFusion(include_alg4=False, name="ALG-N-FUSION"))
    return routers


def run_settings(
    settings: Sequence[ExperimentSetting],
    routers: Optional[Sequence] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, float]]:
    """Mean network entanglement rate per algorithm at each setting.

    Each setting's ``num_networks`` samples draw fresh topologies and
    demand sets from the setting's seed; every router sees the same
    samples, so the comparison is paired.  ``workers > 1`` fans the
    (setting, sample, router) task grid out over that many processes;
    ``cache`` short-circuits (setting, router) pairs already on disk.
    ``workers=None`` reads the ``REPRO_WORKERS`` environment default.
    """
    settings = list(settings)
    routers = list(routers) if routers is not None else standard_routers()
    if workers is None:
        workers = default_workers()

    cached_outcomes: List[TaskOutcome] = []
    pending_settings: List[ExperimentSetting] = []
    pending_router_lists: List[List] = []
    # Maps each pending (sub-)setting back to its original indices so
    # fresh outcomes can be re-labelled and cached after execution.
    pending_origin: List[tuple] = []

    for setting_index, setting in enumerate(settings):
        fresh_routers: List = []
        fresh_router_indices: List[int] = []
        for router_index, router in enumerate(routers):
            entry = None
            if cache is not None:
                entry = cache.get(cache.key_for(setting, router))
            if entry is not None and len(entry["rates"]) == setting.num_networks:
                for sample_index, rate in enumerate(entry["rates"]):
                    cached_outcomes.append(
                        TaskOutcome(
                            setting_index=setting_index,
                            sample_index=sample_index,
                            router_index=router_index,
                            algorithm=entry["algorithm"],
                            total_rate=rate,
                        )
                    )
            else:
                fresh_routers.append(router)
                fresh_router_indices.append(router_index)
        if fresh_routers:
            pending_settings.append(setting)
            pending_router_lists.append(fresh_routers)
            pending_origin.append((setting_index, fresh_router_indices))

    tasks = enumerate_tasks(pending_settings, pending_router_lists)
    raw_outcomes = run_tasks(tasks, workers=workers)

    fresh_outcomes: List[TaskOutcome] = []
    for outcome in raw_outcomes:
        setting_index, router_indices = pending_origin[outcome.setting_index]
        fresh_outcomes.append(
            TaskOutcome(
                setting_index=setting_index,
                sample_index=outcome.sample_index,
                router_index=router_indices[outcome.router_index],
                algorithm=outcome.algorithm,
                total_rate=outcome.total_rate,
            )
        )

    if cache is not None:
        _store_fresh(cache, settings, routers, fresh_outcomes)

    return merge_outcomes(len(settings), cached_outcomes + fresh_outcomes)


def _store_fresh(
    cache: ResultCache,
    settings: Sequence[ExperimentSetting],
    routers: Sequence,
    outcomes: Sequence[TaskOutcome],
) -> None:
    """Persist freshly computed (setting, router) series to the cache."""
    grouped: Dict[tuple, Dict[int, TaskOutcome]] = {}
    for outcome in outcomes:
        slot = grouped.setdefault(
            (outcome.setting_index, outcome.router_index), {}
        )
        slot[outcome.sample_index] = outcome
    for (setting_index, router_index), by_sample in grouped.items():
        setting = settings[setting_index]
        if len(by_sample) != setting.num_networks:
            continue  # incomplete series (shouldn't happen) — don't cache
        ordered = [by_sample[i] for i in range(setting.num_networks)]
        cache.put(
            cache.key_for(setting, routers[router_index]),
            ordered[0].algorithm,
            [outcome.total_rate for outcome in ordered],
        )


def run_setting(
    setting: ExperimentSetting,
    routers: Optional[Sequence] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, float]:
    """Mean network entanglement rate per algorithm at one setting.

    See :func:`run_settings` for the execution model; this is the
    single-setting convenience wrapper.
    """
    return run_settings([setting], routers, workers=workers, cache=cache)[0]


@dataclass
class SweepResult:
    """A figure-style sweep: one x-axis, one series per algorithm."""

    title: str
    x_label: str
    x_values: List
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add_point(self, rates: Mapping[str, float]) -> None:
        """Append one sweep point's per-algorithm rates."""
        for name, value in rates.items():
            self.series.setdefault(name, []).append(value)

    def to_text(self) -> str:
        """Render as the rows/series the paper's figure shows."""
        body = format_series(self.x_label, self.x_values, self.series)
        return f"{self.title}\n{body}"

    def series_for(self, algorithm: str) -> List[float]:
        """One algorithm's series."""
        return list(self.series[algorithm])


def run_sweep(
    title: str,
    x_label: str,
    x_values: Sequence,
    settings: Sequence[ExperimentSetting],
    routers: Optional[Sequence] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> SweepResult:
    """Evaluate *settings* (one per x value) into a :class:`SweepResult`.

    All settings' tasks are pooled into one grid before execution, so a
    multi-worker run keeps every process busy across the whole sweep
    rather than barriering at each x value.
    """
    if len(x_values) != len(settings):
        raise ValueError(
            f"{len(x_values)} x values but {len(settings)} settings"
        )
    sweep = SweepResult(title=title, x_label=x_label, x_values=list(x_values))
    for rates in run_settings(settings, routers, workers=workers, cache=cache):
        sweep.add_point(rates)
    return sweep

"""Monte-Carlo validation of Equation 1 as a first-class sweep.

The paper's headline figures are analytic (Equation-1) sweeps; the
reproduction's credibility rests on checking that analytic rate against
the ground-truth Phase-III process simulation.  :func:`mc_validate`
runs that check through the ordinary task harness: the
``(setting, sample, router)`` grid is evaluated once under a
Monte-Carlo estimator — whose outcomes carry the analytic rate their
routing produced as a by-product, so no second routing pass is needed —
and each outcome renders as a per-sample table row with
standard-error and relative-error columns.

Because both passes are plain harness runs, the validation inherits
everything the harness gives: ``--workers`` parallelism, ``--shard``
partitioning and the content-addressed result cache (analytic and MC
series key separately), all bit-identical across execution plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting, is_full_run
from repro.experiments.estimators import (
    EstimatorSpec,
    EstimatorSpecError,
    as_estimator,
)
from repro.experiments.runner import run_outcomes, standard_specs
from repro.experiments.scenarios import as_setting
from repro.utils.tables import AsciiTable

#: The validation point: the paper's default network at a mid-range
#: uniform link probability, away from both saturation and starvation.
VALIDATION_FIXED_P = 0.35
VALIDATION_SEED = 4242

#: Trial counts for quick (CI-sized) and full (paper-scale) runs.
QUICK_TRIALS = 500
FULL_TRIALS = 3000


def validation_setting(quick: bool, scenario=None) -> ExperimentSetting:
    """The standard validation setting (scaled down for quick runs).

    ``scenario`` replaces the paper-default workload; the validation
    still pins its own seed, and a scenario without an explicit uniform
    ``p`` keeps the standard mid-range validation point.
    """
    if scenario is None:
        setting = ExperimentSetting(
            fixed_p=VALIDATION_FIXED_P, seed=VALIDATION_SEED
        )
    else:
        setting = as_setting(scenario)
        updates = {"seed": VALIDATION_SEED}
        if setting.fixed_p is None:
            updates["fixed_p"] = VALIDATION_FIXED_P
        setting = setting.with_updates(**updates)
    return setting.scaled_for_quick_run() if quick else setting


@dataclass(frozen=True)
class McValidationRow:
    """One (router, sample) comparison of analytic vs Monte Carlo."""

    algorithm: str
    sample_index: int
    analytic_rate: float
    mc_rate: float
    stderr: float
    trials: int

    @property
    def rel_err(self) -> float:
        """|MC - analytic| relative to the analytic rate."""
        return abs(self.mc_rate - self.analytic_rate) / max(
            self.analytic_rate, 1e-9
        )


@dataclass(frozen=True)
class McValidationResult:
    """The rendered analytic-vs-MC comparison."""

    title: str
    estimator: EstimatorSpec
    rows: Tuple[McValidationRow, ...]

    @property
    def worst_rel_err(self) -> Optional[float]:
        """Largest relative error across rows (``None`` when a sharded
        run holds no complete pair yet)."""
        if not self.rows:
            return None
        return max(row.rel_err for row in self.rows)

    def to_text(self) -> str:
        """Render the per-sample table plus a worst-case footer."""
        table = AsciiTable(
            ["algorithm", "sample", "analytic rate", "monte carlo",
             "stderr", "rel err"]
        )
        for row in self.rows:
            table.add_row([
                row.algorithm,
                row.sample_index,
                row.analytic_rate,
                row.mc_rate,
                row.stderr,
                row.rel_err,
            ])
        worst = self.worst_rel_err
        footer = (
            f"estimator: {self.estimator}; worst relative error: "
            f"{'n/a' if worst is None else f'{worst:.4g}'}"
        )
        return f"{self.title}\n{table.render()}\n{footer}"


def mc_validate(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator: Union[None, str, EstimatorSpec] = None,
    setting: Optional[ExperimentSetting] = None,
    scenario=None,
) -> McValidationResult:
    """Analytic-vs-Monte-Carlo comparison over one setting's task grid.

    ``routers`` accepts any specs/strings/instances (default: the
    paper's benchmark set); ``estimator`` must be a Monte-Carlo spec
    (default ``mc:trials=500`` quick / ``mc:trials=3000`` full, on the
    vectorised engine).  ``workers``/``cache``/``shard`` behave exactly
    as in :func:`~repro.experiments.runner.run_settings`; in a sharded
    run, rows for series another shard owns appear once that shard has
    populated the shared cache.  ``scenario`` validates Equation 1 on a
    different workload (see :func:`validation_setting`); an explicit
    ``setting`` wins over it.
    """
    if quick is None:
        quick = not is_full_run()
    if setting is None:
        setting = validation_setting(quick, scenario)
    if estimator is None:
        estimator = EstimatorSpec.mc(
            trials=QUICK_TRIALS if quick else FULL_TRIALS
        )
    else:
        estimator = as_estimator(estimator)
    if not estimator.is_mc:
        raise EstimatorSpecError(
            f"mc-validate needs a Monte-Carlo estimator, got {estimator}"
        )
    specs = list(routers) if routers is not None else standard_specs()

    mc = run_outcomes(
        [setting], specs, workers=workers, cache=cache, shard=shard,
        estimator=estimator,
    )

    rows = []
    for outcome in sorted(mc, key=lambda o: (o.router_index, o.sample_index)):
        rows.append(
            McValidationRow(
                algorithm=outcome.algorithm,
                sample_index=outcome.sample_index,
                analytic_rate=outcome.analytic_rate,
                mc_rate=outcome.total_rate,
                stderr=outcome.stderr,
                trials=outcome.trials,
            )
        )
    return McValidationResult(
        title=(
            "Monte Carlo validation of Equation 1 "
            "(branch-independence approximation)"
        ),
        estimator=estimator,
        rows=tuple(rows),
    )

"""Cross-family topology comparison — the table the paper never ran.

The paper's evaluation fixes the workload to the Waxman family
(Section V-A; Figure 7 adds Watts-Strogatz and Aiello).  With the
scenario axis in place, the full cross product — every router × every
registered topology family under the paper's hardware defaults — is
one sweep: each scenario preset is a sweep point, and the routers'
series read across families.  Sharding, ``--workers`` parallelism,
the result cache and estimator selection all compose with the scenario
axis exactly as with any other sweep, bit-identically across execution
plans.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.config import is_full_run
from repro.experiments.runner import SweepResult, run_sweep, standard_specs
from repro.experiments.scenarios import as_scenario

#: The default family grid: the paper's scenario plus every other
#: registered topology family under the paper's hardware defaults.
DEFAULT_COMPARE_SCENARIOS = (
    "paper-default",
    "paper-watts-strogatz",
    "paper-aiello",
    "paper-barabasi-albert",
    "paper-random-geometric",
    "paper-grid",
    "paper-erdos-renyi",
    "paper-ring",
)


def topology_compare(
    quick: Optional[bool] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    routers: Optional[Sequence] = None,
    shard: Optional[Tuple[int, int]] = None,
    estimator=None,
    mc_overlay=None,
    scenarios: Optional[Sequence] = None,
) -> SweepResult:
    """Entanglement rate of every router across topology families.

    ``scenarios`` (specs, preset names or spec strings; default: every
    family preset) is the x axis; ``routers`` defaults to all five
    registered routers (the paper's four series plus the MCF LP
    extension).  ``workers``/``cache``/``shard``/``estimator``/
    ``mc_overlay`` behave exactly as in
    :func:`~repro.experiments.runner.run_sweep`.
    """
    if quick is None:
        quick = not is_full_run()
    chosen = list(
        scenarios if scenarios is not None else DEFAULT_COMPARE_SCENARIOS
    )
    labels = [
        entry if isinstance(entry, str) else entry.to_string()
        for entry in chosen
    ]
    settings = []
    for entry in chosen:
        setting = as_scenario(entry).setting()
        if quick:
            setting = setting.scaled_for_quick_run()
        settings.append(setting)
    return run_sweep(
        title=(
            "Topology comparison: entanglement rate vs. network family "
            "(beyond the paper's Waxman evaluation)"
        ),
        x_label="scenario",
        x_values=labels,
        settings=settings,
        routers=(
            standard_specs(include_mcf=True) if routers is None else routers
        ),
        workers=workers,
        cache=cache,
        shard=shard,
        estimator=estimator,
        mc_overlay=mc_overlay,
    )

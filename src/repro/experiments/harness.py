"""Task-based execution layer for experiment sweeps.

A figure or table sweep is an embarrassingly parallel grid: every
``(setting, sample_index, router)`` triple is one independent unit of
work whose inputs are fully determined by the setting's pre-spawned
sample seed.  The setting axis is scenario-addressable — grid entry
points accept :class:`~repro.experiments.scenarios.ScenarioSpec`
values (or their string/preset spellings) anywhere they accept
settings, so the workload is a sweepable dimension like the router and
estimator.  This module makes that grid explicit:

* :func:`enumerate_tasks` expands settings × samples × routers into
  :class:`SweepTask` records, pre-spawning each sample's RNG seed with
  the exact derivation the sequential runner used (so results are
  bit-identical whatever the execution order);
* :func:`run_tasks` executes tasks inline or on a
  ``ProcessPoolExecutor`` (``workers``), returning outcomes in task
  order;
* :func:`shard_tasks` / :func:`shard_member` partition the grid
  deterministically into ``n`` shards so independent runs (e.g. on
  different machines) each own a disjoint slice and merge through the
  shared content-addressed result cache;
* :func:`merge_outcomes` folds outcomes back into per-setting
  ``{algorithm: mean rate}`` mappings, rejecting duplicate algorithm
  labels that would silently average two routers into one series.

Workers rebuild each sample's network and demand set from its seed; a
small per-process memo shares the instance between the routers evaluated
on the same sample, mirroring the sequential runner's behaviour.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentSetting
from repro.experiments.estimators import ANALYTIC, EstimatorSpec, estimate_plan
from repro.network.builder import build_network
from repro.network.demands import generate_demands
from repro.utils.rng import ensure_rng, spawn_seeds


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: route *router* on one sampled instance
    and evaluate the plan under *estimator*.

    ``sample_seed`` is the pre-spawned seed of the sample's generator;
    rebuilding ``ensure_rng(sample_seed)`` and drawing the network then
    the demands reproduces the sequential runner's instance bit-exactly.
    Monte-Carlo estimators draw from the seed's disjoint estimation
    substream, so the instance is the same whatever the estimator.
    """

    setting_index: int
    sample_index: int
    router_index: int
    sample_seed: int
    setting: ExperimentSetting
    router: object
    estimator: EstimatorSpec = ANALYTIC

    @property
    def key(self) -> Tuple[int, int, int]:
        """Deterministic merge position (setting, sample, router)."""
        return (self.setting_index, self.sample_index, self.router_index)


@dataclass(frozen=True)
class TaskOutcome:
    """The result of one :class:`SweepTask`.

    ``stderr``/``trials`` carry the Monte-Carlo uncertainty; analytic
    outcomes report ``stderr=0.0, trials=0``.  ``analytic_rate`` is the
    router's own Equation-1 rate, which every execution computes as a
    by-product of routing — a Monte-Carlo run therefore yields the
    analytic-vs-MC pair in one pass instead of routing the instance
    twice.
    """

    setting_index: int
    sample_index: int
    router_index: int
    algorithm: str
    total_rate: float
    stderr: float = 0.0
    trials: int = 0
    analytic_rate: Optional[float] = None

    @property
    def key(self) -> Tuple[int, int, int]:
        """Deterministic merge position (setting, sample, router)."""
        return (self.setting_index, self.sample_index, self.router_index)


def sample_seeds(setting: ExperimentSetting) -> List[int]:
    """The setting's per-sample seeds, in sample order."""
    return spawn_seeds(ensure_rng(setting.seed), setting.num_networks)


def enumerate_tasks(
    settings: Sequence,
    router_lists: Sequence[Sequence],
    estimator: EstimatorSpec = ANALYTIC,
) -> List[SweepTask]:
    """Expand settings × samples × routers into executable tasks.

    ``settings`` entries may be :class:`ExperimentSetting` values or
    scenarios (specs, preset names or spec strings), which coerce to
    settings with the paper's averaging — the scenario is a first-class
    grid axis.  ``router_lists`` holds one router sequence per setting
    (usually the same sequence repeated).  Task order matches the
    sequential runner's loop nesting — samples outer, routers inner — so
    replaying outcomes in task order reproduces its exact accumulation
    order.  Every task in the grid shares one *estimator*.
    """
    from repro.experiments.scenarios import as_setting

    settings = [as_setting(setting) for setting in settings]
    if len(settings) != len(router_lists):
        raise ValueError(
            f"{len(settings)} settings but {len(router_lists)} router lists"
        )
    tasks: List[SweepTask] = []
    for setting_index, (setting, routers) in enumerate(
        zip(settings, router_lists)
    ):
        seeds = sample_seeds(setting)
        for sample_index, seed in enumerate(seeds):
            for router_index, router in enumerate(routers):
                tasks.append(
                    SweepTask(
                        setting_index=setting_index,
                        sample_index=sample_index,
                        router_index=router_index,
                        sample_seed=seed,
                        setting=setting,
                        router=router,
                        estimator=estimator,
                    )
                )
    return tasks


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a CLI ``i/n`` shard selector into ``(index, count)``."""
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        shard = (int(index_text), int(count_text))
    except ValueError:
        raise ValueError(
            f"shard must look like i/n with 0 <= i < n (e.g. 0/2), "
            f"got {text!r}"
        ) from None
    return validate_shard(shard)


def validate_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    """Check a ``(index, count)`` shard selector; returns it unchanged."""
    index, count = shard
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must satisfy 0 <= index < count, got "
            f"{index}/{count}"
        )
    return index, count


def shard_member(
    shard: Tuple[int, int],
    setting_index: int,
    router_index: int,
    num_routers: int,
) -> bool:
    """True when *shard* owns the (setting, router) series.

    The partition unit is the whole per-sample series of one (setting,
    router) pair — the same unit the result cache stores — so every
    cache entry is produced by exactly one shard and complementary
    sharded runs merge losslessly through a shared ``--cache-dir``.
    Membership depends only on grid coordinates (round-robin over the
    flattened setting x router grid), never on cache state, so the
    partition is stable across runs and machines.
    """
    index, count = validate_shard(shard)
    return (setting_index * num_routers + router_index) % count == index


def shard_tasks(
    tasks: Sequence[SweepTask],
    shard: Tuple[int, int],
    num_routers: Optional[int] = None,
) -> List[SweepTask]:
    """The subset of *tasks* owned by ``shard = (index, count)``.

    ``num_routers`` is the router count of the full grid; when omitted
    it is inferred from the tasks (valid only when the sequence spans
    the complete grid).
    """
    tasks = list(tasks)
    if num_routers is None:
        num_routers = 1 + max((t.router_index for t in tasks), default=0)
    return [
        task
        for task in tasks
        if shard_member(
            shard, task.setting_index, task.router_index, num_routers
        )
    ]


#: Per-process memo of recently built (network, demands) instances, so
#: the routers evaluated on one sample share a single build.  Keyed by
#: the instance's full recipe; bounded to keep worker memory flat.
_INSTANCE_MEMO: Dict[Tuple, Tuple] = {}
_INSTANCE_MEMO_LIMIT = 4


def _instance_for(task: SweepTask):
    """Build (or recall) the task's sampled network + demand set."""
    key = (task.setting.network, task.setting.num_states, task.sample_seed)
    instance = _INSTANCE_MEMO.get(key)
    if instance is None:
        rng = ensure_rng(task.sample_seed)
        network = build_network(task.setting.network, rng)
        demands = generate_demands(network, task.setting.num_states, rng)
        instance = (network, demands)
        if len(_INSTANCE_MEMO) >= _INSTANCE_MEMO_LIMIT:
            _INSTANCE_MEMO.pop(next(iter(_INSTANCE_MEMO)))
        _INSTANCE_MEMO[key] = instance
    return instance


def execute_task(task: SweepTask) -> TaskOutcome:
    """Run one task: rebuild its instance, route it, estimate the plan.

    The analytic estimator reports the router's own Equation-1 rate;
    Monte-Carlo estimators re-evaluate the routed plan's establishment
    rate empirically, drawing from the sample seed's estimation
    substream so the outcome is identical in any process or shard.
    """
    network, demands = _instance_for(task)
    result = task.router.route(
        network, demands, task.setting.link_model(), task.setting.swap_model()
    )
    if not task.estimator.is_mc:
        return TaskOutcome(
            setting_index=task.setting_index,
            sample_index=task.sample_index,
            router_index=task.router_index,
            algorithm=result.algorithm,
            total_rate=result.total_rate,
            analytic_rate=result.total_rate,
        )
    estimate = estimate_plan(
        task.estimator,
        network,
        result.plan,
        task.setting.link_model(),
        task.setting.swap_model(),
        task.sample_seed,
    )
    return TaskOutcome(
        setting_index=task.setting_index,
        sample_index=task.sample_index,
        router_index=task.router_index,
        algorithm=result.algorithm,
        total_rate=estimate.mean,
        stderr=estimate.stderr,
        trials=estimate.trials,
        analytic_rate=result.total_rate,
    )


def submit_chunksize(num_items: int, workers: int) -> int:
    """Deterministic pool chunk size for a grid of *num_items* tasks.

    Submitting one future per task costs one pickle/IPC round trip per
    task; chunks amortise that.  Four chunks per worker keeps the load
    balanced when task costs vary (large settings next to small ones)
    while cutting the round trips by the chunk size.  Deterministic in
    the grid size alone, so scheduling — and therefore the task-order
    merge — never depends on timing.
    """
    return max(1, num_items // (max(1, workers) * 4))


def run_tasks(tasks: Sequence[SweepTask], workers: int = 0) -> List[TaskOutcome]:
    """Execute *tasks*, inline (``workers <= 1``) or in worker processes.

    Outcomes come back in task order in both modes, so downstream merging
    is independent of scheduling.
    """
    tasks = list(tasks)
    if workers > 1 and len(tasks) > 1:
        chunksize = submit_chunksize(len(tasks), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_task, tasks, chunksize=chunksize))
    return [execute_task(task) for task in tasks]


def merge_outcomes(
    num_settings: int,
    outcomes: Iterable[TaskOutcome],
    value: Optional[Callable[[TaskOutcome], float]] = None,
) -> List[Dict[str, float]]:
    """Fold outcomes into one ``{algorithm: mean rate}`` dict per setting.

    Outcomes are replayed in deterministic ``(setting, sample, router)``
    order, so the mean accumulates per-sample rates exactly as the
    sequential runner did regardless of worker count or cache hits.  Two
    different routers producing the same ``result.algorithm`` label in
    one setting is an error: it would silently average their rates into
    a single series.  ``value`` selects what is averaged (default: the
    outcome's ``total_rate``; e.g. ``analytic_rate`` recovers the
    analytic series from a Monte-Carlo run's outcomes).
    """
    if value is None:
        value = lambda outcome: outcome.total_rate  # noqa: E731
    per_setting: List[Dict[str, List[float]]] = [
        {} for _ in range(num_settings)
    ]
    label_owner: List[Dict[str, int]] = [{} for _ in range(num_settings)]
    for outcome in sorted(outcomes, key=lambda o: o.key):
        owners = label_owner[outcome.setting_index]
        owner = owners.setdefault(outcome.algorithm, outcome.router_index)
        if owner != outcome.router_index:
            raise ValueError(
                f"duplicate algorithm label {outcome.algorithm!r} in "
                f"setting {outcome.setting_index}: routers {owner} and "
                f"{outcome.router_index} both report it — give each router "
                "a distinct name so their series stay separate"
            )
        series = per_setting[outcome.setting_index]
        series.setdefault(outcome.algorithm, []).append(value(outcome))
    return [
        {name: sum(values) / len(values) for name, values in series.items()}
        for series in per_setting
    ]


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: int = 0,
) -> List:
    """Map a picklable top-level function over *items*, optionally in
    worker processes.

    The sequential fallback runs inline; results always come back in
    input order.  Used by point-loops (lattice sides, coherence values)
    that are not setting × router grids.
    """
    items = list(items)
    if workers > 1 and len(items) > 1:
        chunksize = submit_chunksize(len(items), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    return [fn(item) for item in items]

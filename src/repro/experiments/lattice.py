"""Lattice distance study (context for the B1 baseline's origins).

Patil et al. ([20], [21]) showed that on a lattice with GHZ-measuring
switches, the single-pair entanglement rate can become *independent of the
user distance* (a percolation effect), whereas classic BSM swapping decays
exponentially with distance.  This experiment reproduces that contrast in
our framework: two users pinned to opposite corners of a grid, rate
measured as the grid side grows, for ALG-N-FUSION (n-fusion) vs Q-CAST
(classic swapping).

The paper under reproduction cites this as the motivation for n-fusion;
the bench target prints rate-vs-distance series for both swapping modes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.config import default_workers, is_full_run
from repro.experiments.harness import parallel_map
from repro.experiments.runner import SweepResult
from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.network.node import QuantumUser
from repro.network.topology.regular import grid_network
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.registry import make_router
from repro.utils.geometry import Point
from repro.utils.rng import ensure_rng


def corner_pair_grid(side: int, qubit_capacity: int = 10,
                     area: float = 10_000.0, seed: int = 0):
    """A side x side grid with one user at each of two opposite corners."""
    network = grid_network(
        side=side, area=area, qubit_capacity=qubit_capacity, num_users=2,
        rng=ensure_rng(seed),
    )
    # Replace the randomly attached users with corner-pinned ones.
    switches = network.switches()
    first_switch, last_switch = switches[0], switches[-1]
    source = network.num_nodes
    destination = network.num_nodes + 1
    spacing = area / (side + 1)
    network.add_node(QuantumUser(source, Point(0.0, 0.0)))
    network.add_node(
        QuantumUser(destination, Point(area, area))
    )
    network.add_edge(source, first_switch, length=spacing)
    network.add_edge(destination, last_switch, length=spacing)
    return network, Demand(0, source, destination)


def _lattice_point(args) -> Dict[str, float]:
    """One sweep point: both routers on one corner-pinned grid side.

    Top-level so the sweep can fan sides out over worker processes; the
    grid is rebuilt deterministically from the side, so the result is
    independent of which process runs it.
    """
    side, link_p, swap_q = args
    link = LinkModel(fixed_p=link_p)
    swap = SwapModel(q=swap_q)
    network, demand = corner_pair_grid(side)
    demands = DemandSet([demand])
    rates: Dict[str, float] = {}
    # The study is defined as n-fusion vs classic swapping, so the two
    # routers are fixed; built via the registry like every entry point.
    for router in (make_router("alg-n-fusion"), make_router("q-cast")):
        result = router.route(network, demands, link, swap)
        rates[router.name] = result.total_rate
    ratio = (
        rates["ALG-N-FUSION"] / rates["Q-CAST"]
        if rates["Q-CAST"] > 0
        else float("inf")
    )
    rates["advantage"] = ratio
    return rates


def lattice_distance_study(
    quick: Optional[bool] = None,
    link_p: float = 0.55,
    swap_q: float = 0.95,
    workers: Optional[int] = None,
) -> SweepResult:
    """Single-pair rate vs. grid side for n-fusion vs classic swapping."""
    if quick is None:
        quick = not is_full_run()
    sides = (3, 4, 5) if quick else (3, 4, 6, 8, 10)
    sweep = SweepResult(
        title=(
            "Lattice distance study: single-pair rate vs grid side "
            f"(p={link_p}, q={swap_q})"
        ),
        x_label="side",
        x_values=list(sides),
    )
    points = parallel_map(
        _lattice_point,
        [(side, link_p, swap_q) for side in sides],
        workers=default_workers() if workers is None else workers,
    )
    for rates in points:
        sweep.add_point(rates)
    return sweep

"""The pinned regression instance: recipe, regeneration and location.

``tests/data/regression_instance.json`` freezes one small routed
topology (30 Waxman switches + 6 users = 36 nodes, 8 demands,
connected) so the regression tests can pin exact router rates against
it.  This module is the single source of truth for that instance's
recipe: ``python -m repro.experiments regen-regression`` rebuilds the
file bit-exactly via :func:`repro.network.serialization.save_instance`,
which is how the fixture is refreshed after a deliberate change to the
generators (any diff in the regenerated file otherwise signals a
determinism regression).
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import DemandSet, generate_demands
from repro.network.graph import QuantumNetwork
from repro.network.serialization import save_instance
from repro.utils.rng import ensure_rng

#: The frozen recipe.  Changing any of these invalidates the committed
#: fixture and the pinned rates in ``tests/test_regression.py``.
REGRESSION_SEED = 20230601
REGRESSION_NETWORK = NetworkConfig(num_switches=30, num_users=6)
REGRESSION_NUM_DEMANDS = 8

#: Where the committed fixture lives, relative to the repository root.
REGRESSION_FIXTURE = Path("tests") / "data" / "regression_instance.json"


def build_regression_instance() -> Tuple[QuantumNetwork, DemandSet]:
    """Rebuild the pinned instance from its frozen recipe.

    One generator stream draws the topology then the demands, exactly as
    the sweep harness does for its samples.
    """
    rng = ensure_rng(REGRESSION_SEED)
    network = build_network(REGRESSION_NETWORK, rng)
    demands = generate_demands(network, REGRESSION_NUM_DEMANDS, rng)
    return network, demands


def regenerate_regression_fixture(path: Union[str, Path, None] = None) -> Path:
    """Write the pinned instance to *path* (default: the committed file).

    Returns the path written.  The output is byte-stable: running this
    twice produces identical files.
    """
    target = Path(path) if path is not None else REGRESSION_FIXTURE
    network, demands = build_regression_instance()
    target.parent.mkdir(parents=True, exist_ok=True)
    save_instance(target, network, demands)
    return target

"""Top-level command line interface.

Usage::

    python -m repro route --switches 50 --states 10 --seed 7
    python -m repro route --algorithm q-cast --report
    python -m repro route --algorithm "alg-n-fusion:h=5,include_alg4=false"
    python -m repro route --save instance.json
    python -m repro simulate instance.json --trials 2000
    python -m repro version

``route`` samples a network + demand set, runs a router and prints the
resulting rates (optionally the full plan report); ``simulate`` loads a
saved instance, routes it and validates the analytic rate with the
vectorised Monte Carlo engine.  ``--algorithm`` takes a router registry
spec — a key from :func:`repro.routing.registry.router_keys`, optionally
with ``:param=val,...`` overrides.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro import __version__
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.network.serialization import load_instance, save_instance
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.registry import RouterSpec, router_class, router_keys
from repro.routing.report import render_plan_report
from repro.utils.cli import argparse_type
from repro.simulation.vectorized import VectorizedProcessSimulator
from repro.utils.rng import ensure_rng

#: Canonical key -> class view of the router registry (kept as a module
#: attribute for discoverability and back-compat).
ROUTERS = {key: router_class(key) for key in router_keys()}


@argparse_type
def _algorithm_spec(text: str) -> str:
    """Argparse validator: *text* must parse as a router spec.

    Returns the original string (the spec is rebuilt at use time) so
    ``args.algorithm`` stays printable/comparable; argparse_type keeps
    the registry's detailed message in the usage error.
    """
    RouterSpec.from_string(text)
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Entanglement routing over quantum networks (GHZ fusion).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="sample an instance and route it")
    route.add_argument("--generator", default="waxman")
    route.add_argument("--switches", type=int, default=50)
    route.add_argument("--users", type=int, default=8)
    route.add_argument("--degree", type=float, default=10.0)
    route.add_argument("--qubits", type=int, default=10)
    route.add_argument("--states", type=int, default=10)
    route.add_argument("--seed", type=int, default=0)
    route.add_argument("--p", type=float, default=None,
                       help="uniform link success probability (default: "
                            "length-based e^{-alpha L})")
    route.add_argument("--q", type=float, default=0.9,
                       help="fusion success probability")
    route.add_argument("--algorithm", type=_algorithm_spec,
                       default="alg-n-fusion", metavar="SPEC",
                       help="router registry spec key[:param=val,...] "
                            f"(keys: {', '.join(router_keys())})")
    route.add_argument("--report", action="store_true",
                       help="print the full per-demand plan report")
    route.add_argument("--save", metavar="PATH",
                       help="save the sampled instance as JSON")

    simulate = sub.add_parser(
        "simulate", help="route a saved instance and Monte Carlo check it"
    )
    simulate.add_argument("instance", help="instance JSON from route --save")
    simulate.add_argument("--algorithm", type=_algorithm_spec,
                          default="alg-n-fusion", metavar="SPEC",
                          help="router registry spec key[:param=val,...]")
    simulate.add_argument("--trials", type=int, default=2000)
    simulate.add_argument("--p", type=float, default=None)
    simulate.add_argument("--q", type=float, default=0.9)
    simulate.add_argument("--seed", type=int, default=0)

    sub.add_parser("version", help="print the library version")
    return parser


def _models(args) -> tuple:
    link = LinkModel(fixed_p=args.p) if args.p is not None else LinkModel()
    return link, SwapModel(q=args.q)


def cmd_route(args) -> int:
    config = NetworkConfig(
        generator=args.generator,
        num_switches=args.switches,
        num_users=args.users,
        average_degree=args.degree,
        qubit_capacity=args.qubits,
    )
    rng = ensure_rng(args.seed)
    network = build_network(config, rng)
    demands = generate_demands(network, args.states, rng)
    if args.save:
        save_instance(args.save, network, demands)
        print(f"instance saved to {args.save}")
    link, swap = _models(args)
    router = RouterSpec.from_string(args.algorithm).build()
    result = router.route(network, demands, link, swap)
    if args.report:
        print(render_plan_report(network, demands, result, link, swap))
    else:
        print(f"{result.algorithm}: total rate {result.total_rate:.4f}, "
              f"routed {result.num_routed}/{len(demands)} demands")
    return 0


def cmd_simulate(args) -> int:
    network, demands = load_instance(args.instance)
    link, swap = _models(args)
    router = RouterSpec.from_string(args.algorithm).build()
    result = router.route(network, demands, link, swap)
    engine = VectorizedProcessSimulator(
        network, link, swap, ensure_rng(args.seed)
    )
    estimate = engine.plan_estimate(result.plan, trials=args.trials)
    low, high = estimate.confidence_interval()
    print(f"{result.algorithm}: analytic rate {result.total_rate:.4f}")
    print(
        f"monte carlo ({args.trials} trials): {estimate.mean:.4f} "
        f"(95% CI [{low:.4f}, {high:.4f}])"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    if args.command == "route":
        return cmd_route(args)
    if args.command == "simulate":
        return cmd_simulate(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())

"""Fault-injection subsystem tests (repro.service.faults + loop).

Covers the fault/repair spec grammars, the deterministic backoff
helper, fault-timeline statelessness and prefix-stability (mirroring
the arrival-stream contracts), trace record/replay validation, the
serving loop's disruption/repair accounting (ledger restore parity,
dense-fault crash-freedom, mode/core bit-parity under active faults)
and the replicated runner's fault-aware report.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.scenarios import parse_scenario
from repro.network.builder import build_network
from repro.network.demands import Demand
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.compiled import ROUTING_CORE_ENV
from repro.routing.registry import make_router
from repro.service.arrivals import (
    ArrivalEvent,
    parse_arrivals,
    poisson_events,
    validate_events,
)
from repro.service.faults import (
    BackoffSpec,
    FaultEvent,
    FaultSpec,
    FaultSpecError,
    RepairSpec,
    fault_events,
    parse_faults,
    parse_repair,
    read_fault_trace,
    write_fault_trace,
)
from repro.service.loop import ServeSession, run_serve
from repro.service.runner import run_serve_experiment, serve_key
from repro.utils.retry import backoff_delays
from repro.utils.rng import ensure_rng

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)

SCENARIO = "waxman:switches=30,users=6,states=5"
ARRIVALS = "poisson:rate=1.0,hold=exp:mean=10"

#: Mean up-times far below the mean holding time: every held flow is
#: expected to lose an element well before it departs.
DENSE_FAULTS = "faults:link_mtbf=2.0,link_mttr=1.0,switch_p=0.2,switch_mttr=2.0"


def _small_instance(seed=7):
    spec = parse_scenario(SCENARIO)
    return build_network(spec.network_config(), ensure_rng(seed))


def _online_router():
    return make_router("alg-n-fusion", include_alg4=False)


def _timeline(network, text=DENSE_FAULTS, seed=7, duration=40.0):
    return fault_events(
        parse_faults(text), seed, len(network.edge_keys()),
        len(network.switches()), duration,
    )


# ----------------------------------------------------------------------
# Fault spec grammar


class TestFaultGrammar:
    def test_round_trip(self):
        for text in (
            "faults:link_mtbf=300.0",
            "faults:link_mtbf=300.0,link_mttr=15.0",
            "faults:switch_p=0.01",
            "faults:switch_mtbf=800.0,switch_mttr=40.0",
            "faults:link_mtbf=200.0,switch_mtbf=800.0",
            "trace:file=runs/outage.trace",
        ):
            spec = parse_faults(text)
            assert parse_faults(spec.to_string()) == spec

    def test_defaults_stay_out_of_to_string(self):
        spec = parse_faults("faults:link_mtbf=300,link_mttr=30")
        assert spec.to_string() == "faults:link_mtbf=300.0"

    @pytest.mark.parametrize(
        "bad",
        [
            "faults",  # no failure process at all
            "faults:link_mttr=5",  # mttr alone is not a process either
            "faults:link_mtbf=0",
            "faults:link_mtbf=-3",
            "faults:link_mtbf=abc",
            "faults:switch_p=0",
            "faults:switch_p=1.5",
            "faults:switch_p=0.1,switch_mtbf=10",  # two spellings at once
            "faults:link_mtbf=10,file=x",
            "faults:bogus=1",
            "faults:link_mtbf=10,link_mtbf=10",
            "trace",
            "trace:link_mtbf=10,file=x",
            "outage:link_mtbf=10",
            "",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(FaultSpecError):
            parse_faults(bad)

    def test_switch_p_is_a_hazard(self):
        assert parse_faults(
            "faults:switch_p=0.01"
        ).effective_switch_mtbf() == pytest.approx(100.0)
        assert parse_faults(
            "faults:switch_mtbf=250"
        ).effective_switch_mtbf() == 250.0
        assert parse_faults(
            "faults:link_mtbf=10"
        ).effective_switch_mtbf() is None

    def test_config_dict_is_stable(self):
        spec = parse_faults("faults:link_mtbf=120,switch_p=0.01")
        assert spec.config_dict() == {
            "kind": "faults",
            "link_mtbf": 120.0,
            "link_mttr": 30.0,
            "switch_mtbf": None,
            "switch_p": 0.01,
            "switch_mttr": 30.0,
        }

    def test_trace_config_dict_hashes_contents(self, tmp_path):
        path = tmp_path / "outage.trace"
        write_fault_trace(path, [[FaultEvent(1.0, "link_down", 0)]])
        first = parse_faults(f"trace:file={path}").config_dict()
        write_fault_trace(path, [[FaultEvent(2.0, "link_down", 0)]])
        second = parse_faults(f"trace:file={path}").config_dict()
        assert first["kind"] == second["kind"] == "trace"
        assert first["trace_sha256"] != second["trace_sha256"]


class TestRepairGrammar:
    def test_round_trip(self):
        for text in (
            "drop",
            "reroute",
            "reroute:retries=0",
            "reroute:retries=5",
            "reroute:backoff=fixed:base=2.0",
            "reroute:retries=3,backoff=exp:base=0.5",
        ):
            spec = parse_repair(text)
            assert parse_repair(spec.to_string()) == spec

    def test_default_is_reroute(self):
        assert RepairSpec() == parse_repair("reroute")
        assert RepairSpec().to_string() == "reroute"

    def test_delays_follow_backoff(self):
        assert parse_repair("reroute:retries=3").delays() == (1.0, 2.0, 4.0)
        assert parse_repair(
            "reroute:retries=2,backoff=fixed:base=2.5"
        ).delays() == (2.5, 2.5)
        assert parse_repair("drop").delays() == ()

    @pytest.mark.parametrize(
        "bad",
        [
            "drop:retries=1",
            "drop:backoff=exp:base=1",
            "reroute:retries=-1",
            "reroute:retries=x",
            "reroute:backoff=linear:base=1",
            "reroute:backoff=exp:base=0",
            "reroute:backoff=exp",
            "reroute:backoff=exp:rate=2",
            "reroute:bogus=1",
            "repair",
            "",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(FaultSpecError):
            parse_repair(bad)

    def test_backoff_round_trip(self):
        for text in ("exp:base=1.0", "fixed:base=0.25"):
            spec = BackoffSpec.from_string(text)
            assert BackoffSpec.from_string(spec.to_string()) == spec


class TestBackoffDelays:
    def test_exponential_growth(self):
        assert backoff_delays("exp", 1.0, 4) == (1.0, 2.0, 4.0, 8.0)
        assert backoff_delays("exp", 0.5, 2) == (0.5, 1.0)

    def test_fixed(self):
        assert backoff_delays("fixed", 3.0, 3) == (3.0, 3.0, 3.0)

    def test_zero_retries(self):
        assert backoff_delays("exp", 1.0, 0) == ()

    def test_rejects(self):
        with pytest.raises(ConfigurationError):
            backoff_delays("linear", 1.0, 2)
        with pytest.raises(ConfigurationError):
            backoff_delays("exp", 0.0, 2)
        with pytest.raises(ConfigurationError):
            backoff_delays("exp", 1.0, -1)


# ----------------------------------------------------------------------
# Fault timelines: the same statelessness contract as arrivals


class TestFaultEvents:
    SPEC = "faults:link_mtbf=20,link_mttr=5,switch_p=0.05,switch_mttr=5"

    def test_stateless_and_deterministic(self):
        spec = parse_faults(self.SPEC)
        first = fault_events(spec, 1234, 40, 30, 100.0)
        second = fault_events(spec, 1234, 40, 30, 100.0)
        assert first == second
        assert first != fault_events(spec, 1235, 40, 30, 100.0)

    def test_well_formed(self):
        spec = parse_faults(self.SPEC)
        events = fault_events(spec, 99, 40, 30, 120.0)
        assert events, "expected some faults over 120 time units"
        keys = [e.sort_key() for e in events]
        assert keys == sorted(keys)
        assert all(0 <= e.time < 120.0 for e in events)
        # Per element the kinds strictly alternate, starting down.
        for family, count in (("link", 40), ("switch", 30)):
            for element in range(count):
                kinds = [
                    e.kind for e in events
                    if e.element == element and e.kind.startswith(family)
                ]
                for position, kind in enumerate(kinds):
                    expected = "down" if position % 2 == 0 else "up"
                    assert kind == f"{family}_{expected}"

    def test_prefix_stability_in_duration(self):
        # Extending the horizon appends events without moving earlier
        # ones: element timelines are pure functions of (seed, element).
        spec = parse_faults(self.SPEC)
        short = fault_events(spec, 42, 40, 30, 40.0)
        long = fault_events(spec, 42, 40, 30, 120.0)
        assert [e for e in long if e.time < 40.0] == short

    def test_element_streams_are_independent(self):
        # One element's timeline never depends on how many other
        # elements exist: substreams are addressed per element.
        spec = parse_faults(self.SPEC)
        small = fault_events(spec, 7, 10, 5, 80.0)
        large = fault_events(spec, 7, 40, 30, 80.0)
        for family, limit in (("link", 10), ("switch", 5)):
            subset = [
                e for e in large
                if e.kind.startswith(family) and e.element < limit
            ]
            own = [e for e in small if e.kind.startswith(family)]
            assert subset == own

    def test_trace_kind_cannot_generate(self, tmp_path):
        path = tmp_path / "t.trace"
        write_fault_trace(path, [[]])
        spec = parse_faults(f"trace:file={path}")
        with pytest.raises(FaultSpecError, match="cannot generate"):
            fault_events(spec, 7, 10, 5, 10.0)

    def test_event_validation(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(-1.0, "link_down", 0)
        with pytest.raises(FaultSpecError):
            FaultEvent(1.0, "meteor_strike", 0)
        with pytest.raises(FaultSpecError):
            FaultEvent(1.0, "link_down", -2)


# ----------------------------------------------------------------------
# Fault trace files


class TestFaultTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "outage.trace"
        spec = parse_faults("faults:link_mtbf=10,link_mttr=3")
        replications = [
            fault_events(spec, seed, 12, 8, 50.0) for seed in (3, 4)
        ]
        write_fault_trace(path, replications)
        assert read_fault_trace(path) == replications

    def test_rejects_missing_and_empty(self, tmp_path):
        with pytest.raises(FaultSpecError, match="cannot read"):
            read_fault_trace(tmp_path / "absent.trace")
        empty = tmp_path / "empty.trace"
        empty.write_text("")
        with pytest.raises(FaultSpecError, match="empty"):
            read_fault_trace(empty)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(FaultSpecError, match="repro-fault-trace"):
            read_fault_trace(path)

    def _with_line(self, tmp_path, line):
        path = tmp_path / "edited.trace"
        header = (
            '{"format": "repro-fault-trace", "replications": 1, '
            '"version": 1}'
        )
        path.write_text(header + "\n" + line + "\n")
        return path

    def test_rejects_unsorted_times_naming_line(self, tmp_path):
        path = self._with_line(
            tmp_path,
            '{"element": 0, "kind": "link_down", "replication": 0, '
            '"time": 5.0}\n'
            '{"element": 1, "kind": "link_down", "replication": 0, '
            '"time": 2.0}',
        )
        with pytest.raises(FaultSpecError, match="line 3"):
            read_fault_trace(path)

    def test_rejects_bool_replication_naming_line(self, tmp_path):
        path = self._with_line(
            tmp_path,
            '{"element": 0, "kind": "link_down", "replication": true, '
            '"time": 1.0}',
        )
        with pytest.raises(FaultSpecError, match="line 2"):
            read_fault_trace(path)

    def test_rejects_unknown_replication_naming_line(self, tmp_path):
        path = self._with_line(
            tmp_path,
            '{"element": 0, "kind": "link_down", "replication": 3, '
            '"time": 1.0}',
        )
        with pytest.raises(FaultSpecError, match="line 2"):
            read_fault_trace(path)

    def test_rejects_bad_kind_naming_line(self, tmp_path):
        path = self._with_line(
            tmp_path,
            '{"element": 0, "kind": "meteor", "replication": 0, '
            '"time": 1.0}',
        )
        with pytest.raises(FaultSpecError, match="line 2"):
            read_fault_trace(path)


# ----------------------------------------------------------------------
# Programmatic event validation (arrival side of the satellite)


class TestArrivalValidation:
    def test_validate_events_accepts_sorted(self):
        events = poisson_events(parse_arrivals(ARRIVALS), 7, 6, 20.0)
        validate_events(events)

    def test_validate_events_names_offender(self):
        events = [
            ArrivalEvent(time=3.0, source_index=0, dest_index=1, hold=1.0),
            ArrivalEvent(time=1.0, source_index=0, dest_index=1, hold=1.0),
        ]
        with pytest.raises(ConfigurationError, match="event 1"):
            validate_events(events)

    def test_run_serve_rejects_unsorted_events(self):
        network = _small_instance()
        events = [
            ArrivalEvent(time=3.0, source_index=0, dest_index=1, hold=1.0),
            ArrivalEvent(time=1.0, source_index=0, dest_index=1, hold=1.0),
        ]
        with pytest.raises(ConfigurationError, match="time-sorted"):
            run_serve(network, LINK, SWAP, _online_router(), events,
                      10.0, 0.0)


# ----------------------------------------------------------------------
# Serving under faults


class TestServeWithFaults:
    def test_fault_timeline_must_be_sorted(self):
        network = _small_instance()
        faults = [
            FaultEvent(5.0, "link_down", 0),
            FaultEvent(2.0, "link_up", 0),
        ]
        with pytest.raises(ConfigurationError, match="time-sorted"):
            run_serve(network, LINK, SWAP, _online_router(), [],
                      10.0, 0.0, faults=faults)

    def test_fault_element_must_exist(self):
        network = _small_instance()
        faults = [FaultEvent(1.0, "switch_down", 10_000)]
        with pytest.raises(ConfigurationError, match="10000"):
            run_serve(network, LINK, SWAP, _online_router(), [],
                      10.0, 0.0, faults=faults)

    def test_dense_faults_disrupt_every_flow_without_crashing(self):
        # Element up-times are far below holding times, so every
        # admitted flow is disrupted at least once (deterministically,
        # at this seed) — and the loop must degrade gracefully, never
        # raise.
        network = _small_instance()
        events = poisson_events(
            parse_arrivals(ARRIVALS), 7, len(network.users()), 40.0
        )
        run = run_serve(
            network, LINK, SWAP, _online_router(), events, 40.0, 5.0,
            faults=_timeline(network),
            repair="reroute:retries=2,backoff=exp:base=0.5",
        )
        m = run.metrics
        assert m.admitted > 0
        assert m.disruptions >= m.admitted
        assert m.repaired + m.dropped == m.disruptions
        assert m.repair_ratio == pytest.approx(m.repaired / m.disruptions)
        assert len(run.repair_latencies_s) >= m.disruptions

    def test_drop_policy_counts_every_disruption(self):
        network = _small_instance()
        events = poisson_events(
            parse_arrivals(ARRIVALS), 7, len(network.users()), 40.0
        )
        run = run_serve(
            network, LINK, SWAP, _online_router(), events, 40.0, 5.0,
            faults=_timeline(network), repair="drop",
        )
        m = run.metrics
        assert m.disruptions > 0
        assert m.dropped == m.disruptions
        assert m.repaired == 0
        assert run.repair_latencies_s == []

    def test_zero_retry_reroute_never_crashes(self):
        network = _small_instance()
        events = poisson_events(
            parse_arrivals(ARRIVALS), 7, len(network.users()), 40.0
        )
        run = run_serve(
            network, LINK, SWAP, _online_router(), events, 40.0, 5.0,
            faults=_timeline(network), repair="reroute:retries=0",
        )
        m = run.metrics
        assert m.repaired + m.dropped == m.disruptions

    def test_faults_degrade_throughput(self):
        network = _small_instance()
        events = poisson_events(
            parse_arrivals(ARRIVALS), 7, len(network.users()), 40.0
        )
        clean = run_serve(
            network, LINK, SWAP, _online_router(), events, 40.0, 5.0,
        )
        faulty = run_serve(
            network, LINK, SWAP, _online_router(), events, 40.0, 5.0,
            faults=_timeline(network),
        )
        assert faulty.metrics.throughput < clean.metrics.throughput

    def test_modes_bit_identical_under_faults(self):
        network = _small_instance()
        events = poisson_events(
            parse_arrivals(ARRIVALS), 7, len(network.users()), 40.0
        )
        faults = _timeline(network)
        runs = {
            mode: run_serve(
                network, LINK, SWAP, _online_router(), events, 40.0, 5.0,
                replan=mode, faults=faults,
            )
            for mode in ("incremental", "resnapshot")
        }
        assert runs["incremental"].mode == "incremental"
        assert runs["resnapshot"].mode == "resnapshot"
        assert runs["incremental"].metrics == runs["resnapshot"].metrics

    def test_cores_bit_identical_under_faults(self, monkeypatch):
        network = _small_instance()
        events = poisson_events(
            parse_arrivals(ARRIVALS), 7, len(network.users()), 30.0
        )
        faults = _timeline(network, duration=30.0)
        per_core = {}
        for core in ("reference", "compiled"):
            monkeypatch.setenv(ROUTING_CORE_ENV, core)
            per_core[core] = run_serve(
                network, LINK, SWAP, _online_router(), events, 30.0, 5.0,
                faults=faults,
            ).metrics
        assert per_core["reference"] == per_core["compiled"]

    def test_up_events_restore_routability(self):
        # Down every edge, reject an arrival, bring them back up and
        # the same arrival routes again.
        network = _small_instance()
        num_edges = len(network.edge_keys())
        downs = [FaultEvent(1.0, "link_down", e) for e in range(num_edges)]
        ups = [FaultEvent(5.0, "link_up", e) for e in range(num_edges)]
        events = [
            ArrivalEvent(time=2.0, source_index=0, dest_index=1, hold=1.0),
            ArrivalEvent(time=6.0, source_index=0, dest_index=1, hold=1.0),
        ]
        run = run_serve(
            network, LINK, SWAP, _online_router(), events, 10.0, 0.0,
            faults=downs + ups,
        )
        assert run.metrics.arrivals == 2
        assert run.metrics.admitted == 1


# ----------------------------------------------------------------------
# Ledger restore parity


class TestLedgerRestoreOnDisruption:
    def test_disruption_release_equals_never_admitted(self):
        # Session A admits d1 and d2, then releases d2 the way a
        # disruption does; session B admits only d1.  Their ledgers —
        # and their routing decisions for the next arrival — must be
        # indistinguishable.
        network = _small_instance()
        users = network.users()
        d1 = Demand(0, users[0], users[1])
        d2 = Demand(1, users[2], users[3])
        d3 = Demand(2, users[4], users[5])

        a = ServeSession(network, LINK, SWAP, _online_router())
        routed_a1 = a.route_arrival(d1)
        routed_a2 = a.route_arrival(d2)
        assert routed_a1 is not None and routed_a2 is not None
        a.release_flow(routed_a2[0])

        b = ServeSession(network, LINK, SWAP, _online_router())
        routed_b1 = b.route_arrival(d1)
        assert routed_b1 is not None

        assert a.ledger.snapshot() == b.ledger.snapshot()

        routed_a3 = a.route_arrival(d3)
        routed_b3 = b.route_arrival(d3)
        assert (routed_a3 is None) == (routed_b3 is None)
        if routed_a3 is not None:
            flow_a, rate_a = routed_a3
            flow_b, rate_b = routed_b3
            assert rate_a == rate_b
            assert flow_a.edge_widths() == flow_b.edge_widths()
        assert a.ledger.snapshot() == b.ledger.snapshot()


# ----------------------------------------------------------------------
# Replicated runner under faults


class TestRunnerWithFaults:
    FAULTS = "faults:link_mtbf=30,link_mttr=10,switch_p=0.02"

    def _report(self, tmp_path, workers=1, **kwargs):
        return run_serve_experiment(
            scenario=SCENARIO,
            arrivals=ARRIVALS,
            duration=40.0,
            warmup=5.0,
            replications=2,
            seed=3,
            workers=workers,
            cache=ResultCache(tmp_path / f"cache-{workers}"),
            faults=self.FAULTS,
            **kwargs,
        )

    def test_worker_count_invariance(self, tmp_path):
        reports = [
            self._report(tmp_path, workers=workers) for workers in (1, 4)
        ]
        assert reports[0].to_text() == reports[1].to_text()

    def test_report_surfaces_fault_columns(self, tmp_path):
        report = self._report(tmp_path)
        text = report.to_text()
        assert "faults=" in text and "repair=" in text
        assert "disrupt" in text and "repaired" in text
        assert "degradation" in text
        assert report.baseline_throughput is not None
        latency = report.latency_text()
        assert "recovery latency" in latency

    def test_fault_free_report_text_is_unchanged(self, tmp_path):
        report = run_serve_experiment(
            scenario=SCENARIO,
            arrivals=ARRIVALS,
            duration=30.0,
            warmup=5.0,
            replications=1,
            seed=3,
            workers=1,
            cache=ResultCache(tmp_path / "clean"),
        )
        text = report.to_text()
        assert "faults=" not in text
        assert "disrupt" not in text
        assert report.baseline_throughput is None

    def test_repair_requires_faults(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fault"):
            run_serve_experiment(
                scenario=SCENARIO,
                arrivals=ARRIVALS,
                duration=20.0,
                replications=1,
                workers=1,
                cache=ResultCache(tmp_path / "r"),
                repair="drop",
            )

    def test_key_sensitivity(self):
        scenario = parse_scenario(SCENARIO)
        router = _online_router()
        arrivals = parse_arrivals(ARRIVALS)
        base = serve_key(scenario, router, arrivals, 40.0, 5.0, 3)
        faults = parse_faults(self.FAULTS)
        faulted = serve_key(
            scenario, router, arrivals, 40.0, 5.0, 3, faults=faults
        )
        dropped = serve_key(
            scenario, router, arrivals, 40.0, 5.0, 3, faults=faults,
            repair=parse_repair("drop"),
        )
        assert len({base, faulted, dropped}) == 3
        # Fault-free keys ignore the repair default: cache continuity.
        assert base == serve_key(
            scenario, router, arrivals, 40.0, 5.0, 3, faults=None,
            repair=None,
        )

    def test_fault_trace_replay(self, tmp_path):
        # Record the generated timelines, replay them from the trace:
        # identical deterministic report.
        network = _small_instance(seed=3)
        spec = parse_faults(self.FAULTS)
        from repro.experiments.harness import sample_seeds
        from repro.experiments.scenarios import as_scenario

        setting = as_scenario(SCENARIO).setting(num_networks=2, seed=3)
        seeds = sample_seeds(setting)
        timelines = []
        for sample_seed in seeds:
            sampled = build_network(
                as_scenario(SCENARIO).network_config(),
                ensure_rng(sample_seed),
            )
            timelines.append(
                fault_events(
                    spec, sample_seed, len(sampled.edge_keys()),
                    len(sampled.switches()), 40.0,
                )
            )
        path = tmp_path / "replay.trace"
        write_fault_trace(path, timelines)
        direct = self._report(tmp_path)
        replayed = run_serve_experiment(
            scenario=SCENARIO,
            arrivals=ARRIVALS,
            duration=40.0,
            warmup=5.0,
            replications=2,
            seed=3,
            workers=1,
            cache=ResultCache(tmp_path / "replay-cache"),
            faults=f"trace:file={path}",
        )
        for router_index in range(len(direct.labels)):
            assert (
                direct.metrics_for(router_index)
                == replayed.metrics_for(router_index)
            )

"""Unit tests for routing metrics and path records."""

import pytest

from repro.exceptions import RoutingError
from repro.network.demands import Demand
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.metrics import (
    channel_rate,
    path_entanglement_rate,
    path_entanglement_rate_nonuniform,
)
from repro.routing.paths import PathCandidate, validate_path

from tests.conftest import make_line_network


class TestChannelRate:
    def test_matches_formula(self, line_network):
        link = LinkModel(fixed_p=0.4)
        assert channel_rate(line_network, link, 3, 0, 2) == pytest.approx(
            1 - 0.6**2
        )

    def test_length_based(self, line_network):
        link = LinkModel(alpha=1e-3)
        p = link.success_probability(line_network.edge_length(0, 1))
        assert channel_rate(line_network, link, 0, 1, 1) == pytest.approx(p)


class TestPathRate:
    def test_line_formula(self, line_network):
        # Path: user 3 - switches 0,1,2 - user 4 (5 nodes, 4 edges).
        link = LinkModel(fixed_p=0.5)
        swap = SwapModel(q=0.9)
        nodes = [3, 0, 1, 2, 4]
        expected = (0.5**4) * (0.9**3)
        assert path_entanglement_rate(
            line_network, link, swap, nodes, width=1
        ) == pytest.approx(expected)

    def test_width_raises_rate(self, line_network):
        link = LinkModel(fixed_p=0.3)
        swap = SwapModel(q=0.9)
        nodes = [3, 0, 1, 2, 4]
        rates = [
            path_entanglement_rate(line_network, link, swap, nodes, w)
            for w in (1, 2, 3, 4)
        ]
        assert rates == sorted(rates)

    def test_users_pay_no_swap_factor(self, line_network):
        link = LinkModel(fixed_p=1.0)
        swap = SwapModel(q=0.5)
        nodes = [3, 0, 1, 2, 4]
        # Only the three switches pay q.
        assert path_entanglement_rate(
            line_network, link, swap, nodes, 1
        ) == pytest.approx(0.5**3)

    def test_single_edge_path(self, line_network):
        link = LinkModel(fixed_p=0.7)
        swap = SwapModel(q=0.1)
        assert path_entanglement_rate(
            line_network, link, swap, [3, 0], 1
        ) == pytest.approx(0.7)

    def test_nonuniform_widths(self, line_network):
        link = LinkModel(fixed_p=0.5)
        swap = SwapModel(q=1.0)
        nodes = [3, 0, 1]
        widths = {(0, 3): 1, (0, 1): 2}
        assert path_entanglement_rate_nonuniform(
            line_network, link, swap, nodes, widths
        ) == pytest.approx(0.5 * 0.75)

    def test_missing_width_raises(self, line_network):
        link = LinkModel(fixed_p=0.5)
        swap = SwapModel(q=1.0)
        with pytest.raises(RoutingError):
            path_entanglement_rate_nonuniform(
                line_network, link, swap, [3, 0, 1], {(0, 3): 1}
            )

    def test_short_path_rejected(self, line_network):
        with pytest.raises(RoutingError):
            path_entanglement_rate(
                line_network, LinkModel(), SwapModel(), [3], 1
            )

    def test_monotone_decrease_with_extension(self):
        """The paper's Algorithm 1 correctness property: extending a path
        never increases its rate."""
        network = make_line_network(num_switches=6)
        link = LinkModel(fixed_p=0.6)
        swap = SwapModel(q=0.9)
        source = 6  # user
        prefix = [source, 0]
        previous = path_entanglement_rate(network, link, swap, prefix, 1)
        for nxt in (1, 2, 3, 4):
            prefix = prefix + [nxt]
            current = path_entanglement_rate(network, link, swap, prefix, 1)
            assert current <= previous
            previous = current


class TestPathCandidate:
    def test_properties(self):
        c = PathCandidate(0, (9, 1, 2, 8), 2, 0.5)
        assert c.source == 9
        assert c.destination == 8
        assert c.hops == 3
        assert c.edges() == ((1, 9), (1, 2), (2, 8))

    def test_validation(self):
        with pytest.raises(RoutingError):
            PathCandidate(0, (1,), 1, 0.5)
        with pytest.raises(RoutingError):
            PathCandidate(0, (1, 2, 1), 1, 0.5)
        with pytest.raises(RoutingError):
            PathCandidate(0, (1, 2), 0, 0.5)
        with pytest.raises(RoutingError):
            PathCandidate(0, (1, 2), 1, 1.5)

    def test_validate_path_against_network(self, line_network):
        validate_path(line_network, [3, 0, 1, 2, 4])
        validate_path(line_network, [0, 3])  # a bare edge is a valid path
        with pytest.raises(RoutingError):
            validate_path(line_network, [3, 1, 2])  # missing edge 3-1

    def test_validate_path_rejects_user_relay(self, diamond_network):
        diamond_network.add_edge(2, 4)
        with pytest.raises(RoutingError):
            validate_path(diamond_network, [2, 0, 4])  # user 0 as relay

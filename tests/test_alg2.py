"""Unit tests for Algorithm 2 (Yen-based multi-width path selection)."""

import pytest

from repro.exceptions import RoutingError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import Demand
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg2_path_selection import default_max_width, select_paths
from repro.routing.metrics import path_entanglement_rate
from repro.routing.paths import validate_path
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network


@pytest.fixture
def models():
    return LinkModel(fixed_p=0.5), SwapModel(q=0.9)


class TestDefaultMaxWidth:
    def test_half_capacity(self, line_network):
        assert default_max_width(line_network) == 5

    def test_at_least_one(self):
        from tests.conftest import make_line_network

        assert default_max_width(make_line_network(capacity=1)) == 1


class TestSelection:
    def test_widths_and_counts(self, models):
        link, swap = models
        network = make_diamond_network(capacity=8)
        demand = Demand(0, 0, 1)
        selected = select_paths(network, link, swap, demand, h=2)
        assert set(selected) == {1, 2, 3, 4}
        for width, paths in selected.items():
            assert 1 <= len(paths) <= 2
            for candidate in paths:
                assert candidate.width == width
                assert candidate.demand_id == 0
                validate_path(network, candidate.nodes)

    def test_paths_sorted_by_rate(self, models):
        link, swap = models
        network = make_diamond_network()
        demand = Demand(0, 0, 1)
        selected = select_paths(network, link, swap, demand, h=2, max_width=1)
        rates = [c.rate for c in selected[1]]
        assert rates == sorted(rates, reverse=True)

    def test_top_path_is_alg1_optimum(self, models):
        link, swap = models
        network = make_diamond_network()
        demand = Demand(0, 0, 1)
        from repro.routing.alg1_largest_rate import largest_entanglement_rate_path

        best = largest_entanglement_rate_path(network, link, swap, 0, 1, 1)
        selected = select_paths(network, link, swap, demand, h=3, max_width=1)
        assert selected[1][0].nodes == best[0]
        assert selected[1][0].rate == pytest.approx(best[1])

    def test_paths_are_distinct(self, models):
        link, swap = models
        network = make_diamond_network()
        demand = Demand(0, 0, 1)
        selected = select_paths(network, link, swap, demand, h=4, max_width=1)
        nodes = [c.nodes for c in selected[1]]
        assert len(set(nodes)) == len(nodes)

    def test_diamond_yields_both_arms(self, models):
        link, swap = models
        network = make_diamond_network()
        demand = Demand(0, 0, 1)
        selected = select_paths(network, link, swap, demand, h=2, max_width=1)
        arms = {c.nodes for c in selected[1]}
        assert arms == {(0, 2, 3, 1), (0, 4, 5, 1)}

    def test_rates_recomputed_exactly(self, models):
        link, swap = models
        network = make_diamond_network()
        demand = Demand(0, 0, 1)
        selected = select_paths(network, link, swap, demand, h=2)
        for width, paths in selected.items():
            for candidate in paths:
                assert candidate.rate == pytest.approx(
                    path_entanglement_rate(
                        network, link, swap, candidate.nodes, width
                    )
                )

    def test_infeasible_widths_omitted(self, models):
        link, swap = models
        network = make_diamond_network(capacity=4)  # widths > 2 infeasible
        demand = Demand(0, 0, 1)
        selected = select_paths(network, link, swap, demand, h=2, max_width=5)
        assert set(selected) <= {1, 2}

    def test_h_validation(self, models, line_network, line_demand):
        link, swap = models
        with pytest.raises(RoutingError):
            select_paths(line_network, link, swap, line_demand, h=0)

    def test_random_networks_yield_valid_loopless_paths(self):
        link = LinkModel(alpha=2e-4)
        swap = SwapModel(q=0.9)
        for seed in range(4):
            network = build_network(
                NetworkConfig(num_switches=20, num_users=4, average_degree=4.0),
                ensure_rng(seed),
            )
            users = network.users()
            demand = Demand(0, users[0], users[-1])
            selected = select_paths(network, link, swap, demand, h=3)
            for width, paths in selected.items():
                for candidate in paths:
                    validate_path(network, candidate.nodes)
                    assert candidate.nodes[0] == demand.source
                    assert candidate.nodes[-1] == demand.destination

"""Tests for time-slotted simulation and the online scheduler."""

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import Demand, DemandSet, generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.baselines import QCastRouter
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.nfusion import AlgNFusion
from repro.routing.plan import RoutingPlan
from repro.routing.scheduler import OnlineScheduler
from repro.simulation.timeline import TimeSlottedSimulator
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network


def diamond_plan(width=1):
    plan = RoutingPlan()
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path([0, 2, 3, 1], width=width)
    flow.add_path([0, 4, 5, 1], width=width)
    plan.add_flow(flow)
    return plan


class TestTimeSlottedSimulator:
    def test_throughput_matches_analytic_rate(self, diamond_network):
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        plan = diamond_plan()
        analytic = plan.total_rate(diamond_network, link, swap)
        sim = TimeSlottedSimulator(diamond_network, link, swap, ensure_rng(1))
        result = sim.run(plan, num_slots=20_000)
        assert result.throughput_per_slot == pytest.approx(analytic, abs=0.02)
        assert result.total_delivered == result.delivered_per_demand[0]

    def test_waiting_time_is_geometric(self, diamond_network):
        """Mean waiting time over many short runs ~ 1 / rate."""
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        plan = diamond_plan()
        rate = plan.total_rate(diamond_network, link, swap)
        sim = TimeSlottedSimulator(diamond_network, link, swap, ensure_rng(2))
        waits = []
        for _ in range(400):
            result = sim.run(plan, num_slots=200)
            wait = result.waiting_time[0]
            if wait is not None:
                waits.append(wait)
        mean_wait = sum(waits) / len(waits)
        assert mean_wait == pytest.approx(1.0 / rate, rel=0.15)

    def test_never_succeeding_demand(self, diamond_network):
        sim = TimeSlottedSimulator(
            diamond_network, LinkModel(fixed_p=0.0), SwapModel(q=1.0),
            ensure_rng(3),
        )
        result = sim.run(diamond_plan(), num_slots=50)
        assert result.total_delivered == 0
        assert result.waiting_time[0] is None
        assert result.mean_waiting_time() is None

    def test_slot_validation(self, diamond_network):
        sim = TimeSlottedSimulator(diamond_network, rng=ensure_rng(1))
        with pytest.raises(SimulationError):
            sim.run(diamond_plan(), num_slots=0)


class TestOnlineScheduler:
    @pytest.fixture(scope="class")
    def network(self):
        return build_network(
            NetworkConfig(num_switches=30, num_users=6), ensure_rng(21)
        )

    def test_basic_run(self, network):
        scheduler = OnlineScheduler(router=AlgNFusion(), arrival_rate=1.5)
        result = scheduler.run(
            network, num_slots=10,
            link_model=LinkModel(fixed_p=0.5),
            swap_model=SwapModel(q=0.9),
            rng=ensure_rng(5),
        )
        assert result.arrived == result.served + result.dropped
        assert 0.0 <= result.service_fraction <= 1.0
        assert result.mean_throughput_per_slot >= 0.0

    def test_deterministic_given_seed(self, network):
        def run():
            return OnlineScheduler(router=QCastRouter(), arrival_rate=2.0).run(
                network, num_slots=8,
                link_model=LinkModel(fixed_p=0.5),
                swap_model=SwapModel(q=0.9),
                rng=ensure_rng(6),
            )

        a, b = run(), run()
        assert a == b

    def test_low_arrival_rate_serves_everything(self, network):
        scheduler = OnlineScheduler(router=AlgNFusion(), arrival_rate=0.5,
                                    patience=5)
        result = scheduler.run(
            network, num_slots=12,
            link_model=LinkModel(fixed_p=0.6),
            swap_model=SwapModel(q=0.9),
            rng=ensure_rng(7),
        )
        if result.arrived:
            assert result.service_fraction > 0.8

    def test_validation(self, network):
        with pytest.raises(ConfigurationError):
            OnlineScheduler(router=AlgNFusion(), arrival_rate=0.0)
        with pytest.raises(ConfigurationError):
            OnlineScheduler(router=AlgNFusion(), patience=-1)
        scheduler = OnlineScheduler(router=AlgNFusion())
        with pytest.raises(ConfigurationError):
            scheduler.run(network, num_slots=0)

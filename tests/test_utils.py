"""Unit tests for shared utilities (rng, validation, geometry, tables)."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.geometry import Point, bounding_box_diagonal, euclidean_distance
from repro.utils.rng import ensure_rng, random_subset, spawn_rng
from repro.utils.tables import AsciiTable, format_series
from repro.utils.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_ensure_rng_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_ensure_rng_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            ensure_rng("not-a-seed")

    def test_spawn_rng_children_differ(self):
        parent = ensure_rng(7)
        children = spawn_rng(parent, 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rng_reproducible(self):
        a = [c.integers(0, 10**9) for c in spawn_rng(ensure_rng(7), 3)]
        b = [c.integers(0, 10**9) for c in spawn_rng(ensure_rng(7), 3)]
        assert a == b

    def test_spawn_rng_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            spawn_rng(ensure_rng(0), 0)

    def test_random_subset(self):
        items = list(range(20))
        chosen = random_subset(ensure_rng(3), items, 5)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5
        assert set(chosen) <= set(items)

    def test_random_subset_too_many(self):
        with pytest.raises(ConfigurationError):
            random_subset(ensure_rng(3), [1, 2], 3)


class TestValidation:
    def test_check_probability_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), float("inf"), "x", True])
    def test_check_probability_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability("p", bad)

    def test_check_positive(self):
        assert check_positive("x", 2.5) == 2.5
        for bad in (0, -1, float("nan")):
            with pytest.raises(ConfigurationError):
                check_positive("x", bad)

    def test_check_positive_int(self):
        assert check_positive_int("n", 3) == 3
        for bad in (0, -2, 1.5, True):
            with pytest.raises(ConfigurationError):
                check_positive_int("n", bad)

    def test_check_non_negative_int(self):
        assert check_non_negative_int("n", 0) == 0
        with pytest.raises(ConfigurationError):
            check_non_negative_int("n", -1)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5.0
        with pytest.raises(ConfigurationError):
            check_in_range("x", 11, 0, 10)

    def test_check_type(self):
        check_type("s", "abc", str)
        with pytest.raises(ConfigurationError):
            check_type("s", 3, str)


class TestGeometry:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0
        assert euclidean_distance(Point(1, 1), Point(1, 1)) == 0.0

    def test_diagonal(self):
        assert bounding_box_diagonal(3, 4) == 5.0

    def test_points_are_hashable(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestTables:
    def test_render_alignment(self):
        table = AsciiTable(["name", "value"])
        table.add_row(["a", 1.23456])
        table.add_row(["long-name", 2])
        text = table.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.235" in text  # 4 significant digits

    def test_row_width_mismatch(self):
        table = AsciiTable(["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_format_series(self):
        text = format_series("x", [1, 2], {"alg": [0.5, 0.75]})
        assert "x" in text and "alg" in text
        assert "0.75" in text

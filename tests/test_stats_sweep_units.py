"""Small-unit coverage: ProtocolStats, SweepResult, exceptions hierarchy."""

import pytest

import repro
from repro.exceptions import (
    CapacityError,
    FusionError,
    NoPathError,
    QuantumStateError,
    ReproError,
    RoutingError,
)
from repro.experiments.runner import SweepResult
from repro.protocol.simulator import FlowProtocolOutcome, ProtocolStats


class TestProtocolStats:
    def test_record_success(self):
        stats = ProtocolStats()
        stats.record(FlowProtocolOutcome(True, 0.01, None))
        stats.record(FlowProtocolOutcome(True, 0.03, None))
        assert stats.slots == 2
        assert stats.establishment_rate == 1.0
        assert stats.mean_latency_s == pytest.approx(0.02)

    def test_record_failures(self):
        stats = ProtocolStats()
        stats.record(FlowProtocolOutcome(False, None, "link_timeout"))
        stats.record(FlowProtocolOutcome(False, None, "fusion_failure"))
        stats.record(FlowProtocolOutcome(True, 0.02, None))
        assert stats.establishment_rate == pytest.approx(1 / 3)
        assert stats.failures["link_timeout"] == 1
        assert stats.failures["fusion_failure"] == 1
        assert stats.failures["memory_expiry"] == 0

    def test_empty_stats(self):
        stats = ProtocolStats()
        assert stats.establishment_rate == 0.0
        assert stats.mean_latency_s is None


class TestSweepResultUnits:
    def test_missing_series_raises(self):
        sweep = SweepResult("t", "x", [1])
        sweep.add_point({"a": 1.0})
        with pytest.raises(KeyError):
            sweep.series_for("missing")

    def test_to_text_includes_title(self):
        sweep = SweepResult("my title", "x", [1, 2])
        sweep.add_point({"a": 1.0})
        sweep.add_point({"a": 2.0})
        text = sweep.to_text()
        assert text.startswith("my title")


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc", [CapacityError, FusionError, NoPathError, QuantumStateError,
                RoutingError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_no_path_is_routing_error(self):
        assert issubclass(NoPathError, RoutingError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise FusionError("boom")


class TestPackageMetadata:
    def test_version_attribute(self):
        assert repro.__version__ == "1.0.0"

    def test_all_is_sorted_by_section(self):
        # Every name in __all__ resolves and is unique.
        assert len(set(repro.__all__)) == len(repro.__all__)

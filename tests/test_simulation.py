"""Unit tests for the Phase III Monte Carlo engines."""

import pytest

from repro.network.demands import Demand, DemandSet
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.nfusion import AlgNFusion
from repro.routing.plan import RoutingPlan
from repro.simulation.engine import EntanglementProcessSimulator
from repro.simulation.monte_carlo import MonteCarloEstimate, estimate_plan_rate
from repro.simulation.quantum_engine import QuantumProtocolSimulator
from repro.simulation.sampler import TrialSample, TrialSampler
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network, make_line_network


def line_flow(width=1):
    flow = FlowLikeGraph(0, 3, 4)
    flow.add_path([3, 0, 1, 2, 4], width=width)
    return flow


def diamond_flow():
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path([0, 2, 3, 1], width=1)
    flow.add_path([0, 4, 5, 1], width=1)
    return flow


class TestSampler:
    def test_sample_shape(self, line_network):
        sampler = TrialSampler(
            line_network, LinkModel(fixed_p=0.5), SwapModel(q=0.9), ensure_rng(1)
        )
        flow = line_flow(width=3)
        sample = sampler.sample(flow)
        assert set(sample.link_successes) == set(flow.edges())
        assert set(sample.switch_successes) == {0, 1, 2}
        for count in sample.link_successes.values():
            assert 0 <= count <= 3

    def test_extreme_probabilities(self, line_network):
        sampler = TrialSampler(
            line_network, LinkModel(fixed_p=1.0), SwapModel(q=1.0), ensure_rng(1)
        )
        sample = sampler.sample(line_flow())
        assert all(v == 1 for v in sample.link_successes.values())
        assert all(sample.switch_successes.values())

    def test_channel_ok(self):
        sample = TrialSample({(0, 1): 2, (1, 2): 0}, {})
        assert sample.channel_ok(1, 0)
        assert not sample.channel_ok(1, 2)
        assert not sample.channel_ok(5, 6)


class TestConnectivityEngine:
    def test_perfect_world_always_succeeds(self, line_network):
        sim = EntanglementProcessSimulator(
            line_network, LinkModel(fixed_p=1.0), SwapModel(q=1.0), ensure_rng(1)
        )
        assert sim.flow_rate(line_flow(), trials=20) == 1.0

    def test_dead_link_always_fails(self, line_network):
        sim = EntanglementProcessSimulator(
            line_network, LinkModel(fixed_p=0.0), SwapModel(q=1.0), ensure_rng(1)
        )
        assert sim.flow_rate(line_flow(), trials=20) == 0.0

    def test_dead_switches_always_fail(self, line_network):
        sim = EntanglementProcessSimulator(
            line_network, LinkModel(fixed_p=1.0), SwapModel(q=0.0), ensure_rng(1)
        )
        assert sim.flow_rate(line_flow(), trials=20) == 0.0

    def test_single_path_matches_analytic_exactly(self, line_network):
        """On a simple path Eq. 1 is exact, so the MC must converge to it."""
        link, swap = LinkModel(fixed_p=0.7), SwapModel(q=0.9)
        sim = EntanglementProcessSimulator(line_network, link, swap, ensure_rng(2))
        flow = line_flow(width=2)
        analytic = flow.entanglement_rate(line_network, link, swap)
        empirical = sim.flow_rate(flow, trials=4000)
        assert empirical == pytest.approx(analytic, abs=0.03)

    def test_diamond_matches_analytic(self, diamond_network):
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.8)
        sim = EntanglementProcessSimulator(diamond_network, link, swap, ensure_rng(3))
        flow = diamond_flow()
        analytic = flow.entanglement_rate(diamond_network, link, swap)
        empirical = sim.flow_rate(flow, trials=4000)
        assert empirical == pytest.approx(analytic, abs=0.03)

    def test_trials_validation(self, line_network):
        sim = EntanglementProcessSimulator(line_network, rng=ensure_rng(1))
        with pytest.raises(ValueError):
            sim.simulate_flow(line_flow(), trials=0)


class TestQuantumEngine:
    def test_agrees_with_connectivity_on_single_path(self, line_network):
        """Per-draw equivalence on simple paths: same sample, same verdict."""
        link, swap = LinkModel(fixed_p=0.6), SwapModel(q=0.8)
        conn = EntanglementProcessSimulator(line_network, link, swap, ensure_rng(4))
        quantum = QuantumProtocolSimulator(line_network, link, swap, ensure_rng(4))
        flow = line_flow()
        sampler = TrialSampler(line_network, link, swap, ensure_rng(5))
        for _ in range(300):
            sample = sampler.sample(flow)
            assert conn.establishment(flow, sample) == quantum.establishment(
                flow, sample
            )

    def test_retry_dominance_on_branching_flows(self, diamond_network):
        """With heralded retries the protocol engine can only do better
        than plain survival connectivity, never worse."""
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.6)
        conn = EntanglementProcessSimulator(diamond_network, link, swap)
        quantum = QuantumProtocolSimulator(diamond_network, link, swap)
        flow = diamond_flow()
        sampler = TrialSampler(diamond_network, link, swap, ensure_rng(6))
        conn_wins, quantum_wins = 0, 0
        for _ in range(500):
            sample = sampler.sample(flow)
            c = conn.establishment(flow, sample)
            q = quantum.establishment(flow, sample)
            conn_wins += c
            quantum_wins += q
            if c:
                assert q  # connectivity success implies protocol success
        assert quantum_wins >= conn_wins

    def test_perfect_world(self, diamond_network):
        sim = QuantumProtocolSimulator(
            diamond_network, LinkModel(fixed_p=1.0), SwapModel(q=1.0), ensure_rng(1)
        )
        assert sim.flow_rate(diamond_flow(), trials=10) == 1.0

    def test_trials_validation(self, line_network):
        sim = QuantumProtocolSimulator(line_network, rng=ensure_rng(1))
        with pytest.raises(ValueError):
            sim.simulate_flow(line_flow(), trials=0)


class TestMonteCarloEstimate:
    def test_from_outcomes(self):
        est = MonteCarloEstimate.from_outcomes([1.0, 0.0, 1.0, 1.0])
        assert est.mean == 0.75
        assert est.trials == 4
        low, high = est.confidence_interval()
        assert low < 0.75 < high

    def test_single_outcome_infinite_error(self):
        est = MonteCarloEstimate.from_outcomes([1.0])
        assert est.stderr == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloEstimate.from_outcomes([])

    def test_estimate_plan_rate_close_to_analytic(self, diamond_network):
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        demands = DemandSet([Demand(0, 0, 1)])
        result = AlgNFusion().route(diamond_network, demands, link, swap)
        estimate = estimate_plan_rate(
            diamond_network, result.plan, link, swap, trials=3000,
            rng=ensure_rng(7),
        )
        low, high = estimate.confidence_interval(z=3.5)
        assert low - 0.05 <= result.total_rate <= high + 0.05

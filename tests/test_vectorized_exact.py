"""Tests for the vectorised Monte Carlo engine and the exact evaluator."""

import pytest

from repro.exceptions import SimulationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.nfusion import AlgNFusion
from repro.simulation.engine import EntanglementProcessSimulator
from repro.simulation.exact import exact_flow_rate
from repro.simulation.vectorized import VectorizedProcessSimulator
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network, make_line_network


def line_flow(width=1):
    flow = FlowLikeGraph(0, 3, 4)
    flow.add_path([3, 0, 1, 2, 4], width=width)
    return flow


def diamond_flow(width=1):
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path([0, 2, 3, 1], width=width)
    flow.add_path([0, 4, 5, 1], width=width)
    return flow


class TestExactEvaluator:
    def test_single_path_closed_form(self, line_network):
        link, swap = LinkModel(fixed_p=0.6), SwapModel(q=0.8)
        exact = exact_flow_rate(line_network, line_flow(), link, swap)
        assert exact == pytest.approx((0.6**4) * (0.8**3))

    def test_matches_equation1_on_trees(self, diamond_network):
        link, swap = LinkModel(fixed_p=0.45), SwapModel(q=0.7)
        flow = diamond_flow(width=2)
        exact = exact_flow_rate(diamond_network, flow, link, swap)
        analytic = flow.entanglement_rate(diamond_network, link, swap)
        assert exact == pytest.approx(analytic, abs=1e-12)

    def test_equation1_exact_on_shared_prefix(self, diamond_network):
        """Branches that share a *prefix* still form a tree, so Equation 1
        remains exact."""
        diamond_network.add_edge(2, 5)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.8)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        flow.add_path([0, 2, 5, 1], width=1)  # shares edge (0, 2)
        exact = exact_flow_rate(diamond_network, flow, link, swap)
        analytic = flow.entanglement_rate(diamond_network, link, swap)
        assert analytic == pytest.approx(exact, abs=1e-12)

    def test_equation1_is_approximate_on_reconverging_branches(
        self, diamond_network
    ):
        """Branches that *reconverge* before the destination violate the
        independence assumption: Equation 1 then deviates from the exact
        value (the deviation the MC bench quantifies)."""
        diamond_network.add_edge(4, 3)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.8)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        flow.add_path([0, 4, 3, 1], width=1)  # reconverges at switch 3
        exact = exact_flow_rate(diamond_network, flow, link, swap)
        analytic = flow.entanglement_rate(diamond_network, link, swap)
        assert analytic != pytest.approx(exact, abs=1e-6)
        assert abs(analytic - exact) < 0.12  # but stays a mild approximation

    def test_vectorized_tracks_exact_on_reconverging_branches(
        self, diamond_network
    ):
        diamond_network.add_edge(4, 3)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.8)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        flow.add_path([0, 4, 3, 1], width=1)
        exact = exact_flow_rate(diamond_network, flow, link, swap)
        engine = VectorizedProcessSimulator(
            diamond_network, link, swap, ensure_rng(13)
        )
        assert engine.flow_rate(flow, 20_000) == pytest.approx(exact, abs=0.015)

    def test_degenerate_probabilities(self, line_network):
        assert exact_flow_rate(
            line_network, line_flow(), LinkModel(fixed_p=1.0), SwapModel(q=1.0)
        ) == pytest.approx(1.0)
        assert exact_flow_rate(
            line_network, line_flow(), LinkModel(fixed_p=0.0), SwapModel(q=1.0)
        ) == 0.0

    def test_element_budget_enforced(self, line_network):
        with pytest.raises(SimulationError):
            exact_flow_rate(
                line_network, line_flow(), LinkModel(), SwapModel(),
                max_elements=3,
            )

    def test_empty_flow(self, line_network):
        assert exact_flow_rate(
            line_network, FlowLikeGraph(0, 3, 4), LinkModel(), SwapModel()
        ) == 0.0


class TestVectorizedEngine:
    def test_matches_exact_on_line(self, line_network):
        link, swap = LinkModel(fixed_p=0.6), SwapModel(q=0.8)
        engine = VectorizedProcessSimulator(line_network, link, swap, ensure_rng(1))
        exact = exact_flow_rate(line_network, line_flow(), link, swap)
        empirical = engine.flow_rate(line_flow(), trials=20_000)
        assert empirical == pytest.approx(exact, abs=0.015)

    def test_matches_exact_on_diamond(self, diamond_network):
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.7)
        engine = VectorizedProcessSimulator(
            diamond_network, link, swap, ensure_rng(2)
        )
        exact = exact_flow_rate(diamond_network, diamond_flow(), link, swap)
        empirical = engine.flow_rate(diamond_flow(), trials=20_000)
        assert empirical == pytest.approx(exact, abs=0.015)

    def test_matches_exact_with_shared_segment(self, diamond_network):
        """On non-tree flows the vectorised engine must track the exact
        value (not Equation 1)."""
        diamond_network.add_edge(2, 5)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.8)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        flow.add_path([0, 2, 5, 1], width=1)
        engine = VectorizedProcessSimulator(
            diamond_network, link, swap, ensure_rng(3)
        )
        exact = exact_flow_rate(diamond_network, flow, link, swap)
        empirical = engine.flow_rate(flow, trials=20_000)
        assert empirical == pytest.approx(exact, abs=0.015)

    def test_agrees_with_reference_engine_in_distribution(self):
        rng = ensure_rng(11)
        network = build_network(NetworkConfig(num_switches=25, num_users=4), rng)
        demands = generate_demands(network, 4, rng)
        link, swap = LinkModel(fixed_p=0.45), SwapModel(q=0.85)
        result = AlgNFusion().route(network, demands, link, swap)
        reference = EntanglementProcessSimulator(network, link, swap, ensure_rng(4))
        fast = VectorizedProcessSimulator(network, link, swap, ensure_rng(5))
        for flow in result.plan.flows():
            slow_rate = reference.flow_rate(flow, 1500)
            fast_rate = fast.flow_rate(flow, 8000)
            assert fast_rate == pytest.approx(slow_rate, abs=0.05)

    def test_plan_estimate(self, diamond_network):
        from repro.routing.plan import RoutingPlan

        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        plan = RoutingPlan()
        plan.add_flow(diamond_flow())
        engine = VectorizedProcessSimulator(
            diamond_network, link, swap, ensure_rng(6)
        )
        estimate = engine.plan_estimate(plan, trials=5000)
        exact = exact_flow_rate(diamond_network, diamond_flow(), link, swap)
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= exact <= high

    def test_empty_plan(self, diamond_network):
        from repro.routing.plan import RoutingPlan

        engine = VectorizedProcessSimulator(diamond_network, rng=ensure_rng(1))
        estimate = engine.plan_estimate(RoutingPlan(), trials=10)
        assert estimate.mean == 0.0

    def test_trials_validation(self, line_network):
        engine = VectorizedProcessSimulator(line_network, rng=ensure_rng(1))
        with pytest.raises(ValueError):
            engine.simulate_flow(line_flow(), trials=0)

"""Unit tests for Algorithms 3 (paths merge) and 4 (residual qubits)."""

import pytest

from repro.network.demands import Demand, DemandSet
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg2_path_selection import select_paths
from repro.routing.alg3_merge import (
    admit_paths,
    admit_paths_efficiency,
    merge_paths,
)
from repro.routing.alg4_residual import assign_remaining_qubits
from repro.routing.allocation import QubitLedger
from repro.routing.paths import PathCandidate
from repro.routing.plan import RoutingPlan

from tests.conftest import make_diamond_network, make_line_network


@pytest.fixture
def models():
    return LinkModel(fixed_p=0.5), SwapModel(q=0.9)


def _path_sets(network, link, swap, demands, h=2, max_width=None):
    return {
        d.demand_id: select_paths(network, link, swap, d, h=h, max_width=max_width)
        for d in demands
    }


class TestMergePaths:
    def test_single_demand_gets_flow(self, models):
        link, swap = models
        network = make_diamond_network()
        demands = DemandSet([Demand(0, 0, 1)])
        ledger = QubitLedger(network)
        plan = merge_paths(
            network, link, swap, demands,
            _path_sets(network, link, swap, demands), ledger,
        )
        assert 0 in plan
        assert plan.flow_for(0).num_paths >= 1

    def test_capacity_never_exceeded(self, models):
        link, swap = models
        network = make_diamond_network(capacity=6)
        demands = DemandSet([Demand(0, 0, 1), Demand(1, 0, 1), Demand(2, 1, 0)])
        ledger = QubitLedger(network)
        plan = merge_paths(
            network, link, swap, demands,
            _path_sets(network, link, swap, demands), ledger,
        )
        usage = plan.qubits_used()
        for switch in network.switches():
            assert usage.get(switch, 0) <= network.qubit_capacity(switch)
            assert ledger.remaining(switch) == (
                network.qubit_capacity(switch) - usage.get(switch, 0)
            )

    def test_same_demand_paths_merge_into_one_flow(self, models):
        link, swap = models
        network = make_diamond_network()
        demands = DemandSet([Demand(0, 0, 1)])
        ledger = QubitLedger(network)
        plan = merge_paths(
            network, link, swap, demands,
            _path_sets(network, link, swap, demands, h=2, max_width=1), ledger,
        )
        flow = plan.flow_for(0)
        assert flow.num_paths == 2  # both diamond arms merged
        assert flow.branch_nodes() == [0]

    def test_shared_edges_not_double_charged(self, models):
        """Two paths of the same demand sharing an access edge charge the
        shared switch once."""
        link, swap = models
        network = make_diamond_network()
        network.add_edge(2, 5)  # second arm out of switch 2
        demands = DemandSet([Demand(0, 0, 1)])
        ledger = QubitLedger(network)
        flows = {}
        a = PathCandidate(0, (0, 2, 3, 1), 1, 0.5)
        b = PathCandidate(0, (0, 2, 5, 1), 1, 0.4)
        admitted = admit_paths(
            network, demands, {0: {1: [a, b]}}, flows, ledger
        )
        assert admitted == 2
        # Edge (0, 2) is shared: switch 2 pays 1 (shared) + 1 + 1 = 3.
        assert ledger.remaining(2) == 10 - 3

    def test_unknown_demand_rejected(self, models):
        link, swap = models
        network = make_diamond_network()
        demands = DemandSet([Demand(0, 0, 1)])
        from repro.exceptions import RoutingError

        with pytest.raises(RoutingError):
            merge_paths(
                network, link, swap, demands,
                {99: {1: []}}, QubitLedger(network),
            )

    def test_efficiency_policy_also_respects_capacity(self, models):
        link, swap = models
        network = make_diamond_network(capacity=4)
        demands = DemandSet([Demand(i, 0, 1) for i in range(4)])
        ledger = QubitLedger(network)
        flows = {}
        admit_paths_efficiency(
            network, link, swap, demands,
            _path_sets(network, link, swap, demands), flows, ledger,
        )
        usage = {}
        for flow in flows.values():
            for (u, v), width in flow.edge_widths().items():
                usage[u] = usage.get(u, 0) + width
                usage[v] = usage.get(v, 0) + width
        for switch in network.switches():
            assert usage.get(switch, 0) <= 4

    def test_efficiency_upgrades_shared_edge_width(self, models):
        """A wider duplicate of an admitted path upgrades the channel and
        charges only the delta."""
        link, swap = models
        network = make_line_network(num_switches=2, capacity=10)
        source, dest = 2, 3
        demands = DemandSet([Demand(0, source, dest)])
        ledger = QubitLedger(network)
        flows = {}
        narrow = PathCandidate(0, (source, 0, 1, dest), 1, 0.3)
        admit_paths_efficiency(
            network, link, swap, demands, {0: {1: [narrow]}}, flows, ledger
        )
        assert flows[0].edge_width(0, 1) == 1
        used_before = 10 - ledger.remaining(0)
        wide = PathCandidate(0, (source, 0, 1, dest), 3, 0.7)
        admitted = admit_paths_efficiency(
            network, link, swap, demands, {0: {3: [wide]}}, flows, ledger
        )
        assert admitted == 1
        assert flows[0].edge_width(0, 1) == 3
        assert (10 - ledger.remaining(0)) == used_before + 2 * 2  # two edges at +2


class TestAlg4:
    def test_spends_residuals_on_flow_edges(self, models):
        link, swap = models
        network = make_line_network(num_switches=2, capacity=10)
        plan = RoutingPlan()
        from repro.routing.flow_graph import FlowLikeGraph

        flow = FlowLikeGraph(0, 2, 3)
        flow.add_path([2, 0, 1, 3], width=1)
        plan.add_flow(flow)
        ledger = QubitLedger(network)
        for a, b in flow.edges():
            ledger.reserve_edge(a, b, 1)
        base = flow.entanglement_rate(network, link, swap)
        assignments = assign_remaining_qubits(network, link, swap, plan, ledger)
        assert assignments  # leftovers existed, so links were added
        assert flow.entanglement_rate(network, link, swap) > base
        # Interior switches end fully used.
        assert ledger.remaining(0) in (0, 1)

    def test_no_flows_no_assignments(self, models):
        link, swap = models
        network = make_line_network()
        assignments = assign_remaining_qubits(
            network, link, swap, RoutingPlan(), QubitLedger(network)
        )
        assert assignments == []

    def test_never_overdraws(self, models):
        link, swap = models
        network = make_diamond_network(capacity=5)
        demands = DemandSet([Demand(0, 0, 1)])
        ledger = QubitLedger(network)
        plan = merge_paths(
            network, link, swap, demands,
            _path_sets(network, link, swap, demands), ledger,
        )
        assign_remaining_qubits(network, link, swap, plan, ledger)
        usage = plan.qubits_used()
        for switch in network.switches():
            assert usage.get(switch, 0) <= 5

    def test_assignment_picks_best_demand(self, models):
        """The extra link goes to the flow gaining the most rate."""
        link, swap = models
        network = make_diamond_network(capacity=10)
        from repro.routing.flow_graph import FlowLikeGraph

        plan = RoutingPlan()
        weak = FlowLikeGraph(0, 0, 1)
        weak.add_path([0, 2, 3, 1], width=1)
        strong = FlowLikeGraph(1, 0, 1)
        strong.add_path([0, 4, 5, 1], width=4)
        plan.add_flow(weak)
        plan.add_flow(strong)
        ledger = QubitLedger(network)
        for flow in (weak, strong):
            for (a, b) in flow.edges():
                ledger.reserve_edge(a, b, flow.edge_width(a, b))
        assignments = assign_remaining_qubits(network, link, swap, plan, ledger)
        # The width-1 flow has far more to gain; it receives the first
        # extra link on every one of its edges.
        first_edges = {edge for edge, demand in assignments if demand == 0}
        assert first_edges  # weak flow received extra links

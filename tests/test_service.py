"""Tests for the online serving subsystem (repro.service).

Covers the arrival-spec grammar, stateless event-stream determinism,
worker-count and re-plan-mode invariance of the deterministic metrics,
Little's-law sanity of the steady-state averages, trace record/replay
and the serve result cache.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.scenarios import parse_scenario
from repro.network.builder import build_network
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.allocation import QubitLedger
from repro.routing.compiled import ROUTING_CORE_ENV
from repro.routing.registry import make_router
from repro.service.arrivals import (
    ArrivalEvent,
    ArrivalSpec,
    ArrivalSpecError,
    HoldSpec,
    parse_arrivals,
    poisson_events,
    read_trace,
    write_trace,
)
from repro.service.loop import (
    ServeSession,
    latency_summary,
    residual_view,
    run_serve,
)
from repro.service.runner import run_serve_experiment, serve_key
from repro.network.demands import Demand
from repro.utils.rng import ensure_rng

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)

#: Small, fast workload shared by the loop-level tests.
SCENARIO = "waxman:switches=30,users=6,states=5"
ARRIVALS = "poisson:rate=1.0,hold=exp:mean=10"


def _small_instance(seed=7):
    spec = parse_scenario(SCENARIO)
    network = build_network(spec.network_config(), ensure_rng(seed))
    return network


def _online_router():
    """ALG-N-FUSION without Algorithm 4 — the serve default."""
    return make_router("alg-n-fusion", include_alg4=False)


# ----------------------------------------------------------------------
# Arrival spec grammar


class TestArrivalGrammar:
    def test_round_trip(self):
        for text in (
            "poisson",
            "poisson:rate=0.5",
            "poisson:rate=2.5,hold=fixed:mean=12.0",
            "poisson:hold=exp:mean=45.0",
            "trace:file=runs/monday.trace",
        ):
            spec = parse_arrivals(text)
            assert parse_arrivals(spec.to_string()) == spec

    def test_canonical_default(self):
        assert ArrivalSpec().to_string() == "poisson"
        assert parse_arrivals("poisson:rate=2.0,hold=exp:mean=30") == (
            ArrivalSpec()
        )

    def test_acceptance_spelling(self):
        spec = parse_arrivals("poisson:rate=2.0,hold=exp:mean=30")
        assert spec.rate == 2.0
        assert spec.hold == HoldSpec("exp", 30.0)

    def test_hold_round_trip(self):
        for text in ("exp:mean=30", "fixed:mean=1.5"):
            hold = HoldSpec.from_string(text)
            assert HoldSpec.from_string(hold.to_string()) == hold

    @pytest.mark.parametrize(
        "bad",
        [
            "gamma:rate=1",
            "poisson:rate=0",
            "poisson:rate=-1",
            "poisson:burst=3",
            "poisson:rate=1,rate=2",
            "poisson:hold=normal:mean=3",
            "poisson:hold=exp:mean=0",
            "poisson:hold=exp:scale=3",
            "trace",
            "trace:rate=1,file=x",
            "trace:hold=exp:mean=3,file=x",
            "poisson:file=x",
            "",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ArrivalSpecError):
            parse_arrivals(bad)

    def test_poisson_config_dict_is_stable(self):
        spec = parse_arrivals("poisson:rate=0.5,hold=fixed:mean=2.0")
        assert spec.config_dict() == {
            "kind": "poisson",
            "rate": 0.5,
            "hold": {"dist": "fixed", "mean": 2.0},
        }

    def test_trace_config_dict_hashes_contents(self, tmp_path):
        a = tmp_path / "a.trace"
        b = tmp_path / "b.trace"
        a.write_text("x")
        b.write_text("x")
        dict_a = ArrivalSpec(kind="trace", file=str(a)).config_dict()
        dict_b = ArrivalSpec(kind="trace", file=str(b)).config_dict()
        assert dict_a == dict_b  # path does not matter, contents do
        b.write_text("y")
        assert ArrivalSpec(kind="trace", file=str(b)).config_dict() != dict_a


# ----------------------------------------------------------------------
# Event streams


class TestPoissonEvents:
    def test_stateless_and_deterministic(self):
        spec = parse_arrivals(ARRIVALS)
        first = poisson_events(spec, 1234, 6, 50.0)
        second = poisson_events(spec, 1234, 6, 50.0)
        assert first == second
        assert first != poisson_events(spec, 1235, 6, 50.0)

    def test_well_formed(self):
        spec = parse_arrivals(ARRIVALS)
        events = poisson_events(spec, 99, 6, 80.0)
        assert events, "expected some arrivals over 80 time units"
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 80.0 for t in times)
        for event in events:
            assert event.source_index != event.dest_index
            assert 0 <= event.source_index < 6
            assert 0 <= event.dest_index < 6
            assert event.hold > 0

    def test_prefix_stability(self):
        # A shorter horizon yields exactly the longer run's prefix: the
        # k-th event never depends on how many events follow it.
        spec = parse_arrivals(ARRIVALS)
        short = poisson_events(spec, 42, 6, 20.0)
        long = poisson_events(spec, 42, 6, 60.0)
        assert long[: len(short)] == short


# ----------------------------------------------------------------------
# Serving loop


class TestServeLoop:
    def test_session_release_restores_ledger(self):
        network = _small_instance()
        session = ServeSession(
            network, LINK, SWAP,
            _online_router(),
        )
        users = network.users()
        baseline = session.ledger.snapshot()
        flows = []
        for demand_id in range(3):
            demand = Demand(demand_id, users[0], users[demand_id + 1])
            routed = session.route_arrival(demand)
            if routed is not None:
                flows.append(routed[0])
        assert flows, "expected at least one admission"
        assert session.ledger.snapshot() != baseline
        for flow in flows:
            session.release_flow(flow)
        assert session.ledger.snapshot() == baseline

    def test_residual_view_reflects_ledger(self):
        network = _small_instance()
        ledger = QubitLedger(network)
        switch = network.switches()[0]
        ledger.reserve(switch, 4)
        view = residual_view(network, ledger)
        assert view.qubit_capacity(switch) == int(ledger.remaining(switch))
        assert view.users() == network.users()
        assert view.edge_keys() == network.edge_keys()
        for u, v in network.edge_keys()[:5]:
            assert view.edge_length(u, v) == network.edge_length(u, v)
        for user in network.users():
            assert view.qubit_capacity(user) is None

    def test_replan_modes_bit_identical(self):
        network = _small_instance()
        spec = parse_arrivals(ARRIVALS)
        events = poisson_events(spec, 7, len(network.users()), 40.0)
        runs = {
            mode: run_serve(
                network, LINK, SWAP,
                _online_router(),
                events, 40.0, 5.0, replan=mode,
            )
            for mode in ("incremental", "resnapshot")
        }
        assert runs["incremental"].mode == "incremental"
        assert runs["resnapshot"].mode == "resnapshot"
        assert runs["incremental"].metrics == runs["resnapshot"].metrics

    def test_router_without_online_interface_falls_back(self):
        network = _small_instance()
        spec = parse_arrivals(ARRIVALS)
        events = poisson_events(spec, 7, len(network.users()), 25.0)
        run = run_serve(
            network, LINK, SWAP, make_router("b1"), events, 25.0, 5.0,
            replan="incremental",
        )
        assert run.mode == "resnapshot"
        assert run.metrics.arrivals > 0

    def test_cores_bit_identical(self, monkeypatch):
        network = _small_instance()
        spec = parse_arrivals(ARRIVALS)
        events = poisson_events(spec, 7, len(network.users()), 30.0)
        per_core = {}
        for core in ("reference", "compiled"):
            monkeypatch.setenv(ROUTING_CORE_ENV, core)
            per_core[core] = run_serve(
                network, LINK, SWAP,
                _online_router(),
                events, 30.0, 5.0,
            ).metrics
        assert per_core["reference"] == per_core["compiled"]

    def test_littles_law(self):
        # The time-averaged held count must track Little's law,
        # L = lambda_admitted * W.  Both sides only count admitted
        # flows, so the identity holds whatever the admission ratio
        # (some Waxman user pairs are infeasible regardless of
        # capacity); the only error terms are the window edges.
        scenario = parse_scenario(
            "waxman:switches=30,users=6,qubits=40,states=5"
        )
        network = build_network(scenario.network_config(), ensure_rng(11))
        spec = parse_arrivals("poisson:rate=0.5,hold=exp:mean=10")
        duration, warmup = 260.0, 20.0
        events = poisson_events(spec, 11, len(network.users()), duration)
        run = run_serve(
            network, LINK, SWAP,
            _online_router(),
            events, duration, warmup,
        )
        metrics = run.metrics
        assert metrics.arrivals > 50
        assert metrics.admitted > 30
        expected_held = (
            metrics.admitted / (duration - warmup) * metrics.mean_hold
        )
        assert metrics.mean_held == pytest.approx(expected_held, rel=0.25)

    def test_rejects_bad_window(self):
        network = _small_instance()
        router = _online_router()
        with pytest.raises(ConfigurationError):
            run_serve(network, LINK, SWAP, router, [], 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            run_serve(network, LINK, SWAP, router, [], 10.0, 10.0)

    def test_rejects_out_of_range_user_index(self):
        network = _small_instance()
        router = _online_router()
        events = [ArrivalEvent(time=1.0, source_index=0,
                               dest_index=99, hold=5.0)]
        with pytest.raises(ConfigurationError, match="user index"):
            run_serve(network, LINK, SWAP, router, events, 10.0, 0.0)


# ----------------------------------------------------------------------
# Latency summary (wall-clock half; deterministic in its inputs)


class TestLatencySummary:
    def test_empty(self):
        assert latency_summary([]) == {
            "count": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0,
        }

    def test_nearest_rank(self):
        values = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        stats = latency_summary(values)
        assert stats["count"] == 100
        assert stats["p50_ms"] == pytest.approx(50.0)
        assert stats["p99_ms"] == pytest.approx(99.0)
        assert stats["mean_ms"] == pytest.approx(50.5)

    def test_single_value(self):
        stats = latency_summary([0.002])
        assert stats["p50_ms"] == stats["p99_ms"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Trace record / replay


class TestTrace:
    def test_round_trip(self, tmp_path):
        spec = parse_arrivals(ARRIVALS)
        replications = [
            poisson_events(spec, seed, 6, 40.0) for seed in (5, 6)
        ]
        path = tmp_path / "events.trace"
        write_trace(path, replications)
        assert read_trace(path) == replications
        # Re-recording identical events is byte-identical.
        other = tmp_path / "again.trace"
        write_trace(other, replications)
        assert other.read_bytes() == path.read_bytes()

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json\n")
        with pytest.raises(ArrivalSpecError):
            read_trace(path)
        path.write_text('{"format": "other", "version": 1, '
                        '"replications": 1}\n')
        with pytest.raises(ArrivalSpecError):
            read_trace(path)
        with pytest.raises(ArrivalSpecError):
            read_trace(tmp_path / "missing.trace")

    def test_rejects_time_regression(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            '{"format": "repro-serve-trace", "version": 1, '
            '"replications": 1}\n'
            '{"replication": 0, "time": 5.0, "source": 0, "dest": 1, '
            '"hold": 1.0}\n'
            '{"replication": 0, "time": 4.0, "source": 0, "dest": 1, '
            '"hold": 1.0}\n'
        )
        with pytest.raises(ArrivalSpecError, match="non-decreasing"):
            read_trace(path)

    def test_replay_matches_recording(self, tmp_path):
        trace = tmp_path / "run.trace"
        recorded = run_serve_experiment(
            scenario=SCENARIO,
            arrivals=ARRIVALS,
            duration=30.0,
            warmup=5.0,
            replications=2,
            seed=7,
            record_trace=str(trace),
        )
        replayed = run_serve_experiment(
            scenario=SCENARIO,
            arrivals=f"trace:file={trace}",
            duration=30.0,
            warmup=5.0,
            seed=7,
        )
        assert replayed.replications == 2
        assert replayed.rows == recorded.rows


# ----------------------------------------------------------------------
# Replication runner


class TestRunner:
    def test_worker_count_invariance(self):
        reports = {
            workers: run_serve_experiment(
                scenario=SCENARIO,
                arrivals=ARRIVALS,
                duration=30.0,
                warmup=5.0,
                replications=2,
                seed=7,
                workers=workers,
            )
            for workers in (1, 4)
        }
        assert reports[1].rows == reports[4].rows
        assert reports[1].to_text() == reports[4].to_text()

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(
            scenario=SCENARIO, arrivals=ARRIVALS, duration=30.0,
            warmup=5.0, replications=2, seed=7, cache=cache,
        )
        cold = run_serve_experiment(**kwargs)
        assert cold.latencies_s, "cold run must measure latencies"
        warm = run_serve_experiment(**kwargs)
        assert warm.rows == cold.rows
        assert not warm.latencies_s  # nothing executed
        assert warm.cached == {0: 2}
        # The key deliberately excludes the replan mode: a resnapshot
        # run must hit the incremental run's entries (the modes are
        # decision-identical by construction).
        resnap = run_serve_experiment(**kwargs, replan="resnapshot")
        assert resnap.rows == cold.rows
        assert not resnap.latencies_s

    def test_key_sensitivity(self):
        scenario = parse_scenario(SCENARIO)
        router = _online_router()
        arrivals = parse_arrivals(ARRIVALS)
        base = serve_key(scenario, router, arrivals, 30.0, 5.0, 1234)
        assert serve_key(scenario, router, arrivals, 30.0, 5.0, 1235) != base
        assert serve_key(scenario, router, arrivals, 31.0, 5.0, 1234) != base
        assert serve_key(
            scenario, router, parse_arrivals("poisson:rate=1.5"),
            30.0, 5.0, 1234,
        ) != base
        assert serve_key(
            scenario, make_router("b1"), arrivals, 30.0, 5.0, 1234
        ) != base

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            run_serve_experiment(
                scenario=SCENARIO, arrivals=ARRIVALS, replan="eager",
            )
        with pytest.raises(ConfigurationError):
            run_serve_experiment(
                scenario=SCENARIO, arrivals=ARRIVALS, replications=0,
            )
        with pytest.raises(ConfigurationError):
            run_serve_experiment(
                scenario=SCENARIO,
                arrivals="trace:file=whatever.trace",
                record_trace="out.trace",
            )

    def test_report_counts_window_only(self):
        report = run_serve_experiment(
            scenario=SCENARIO, arrivals=ARRIVALS, duration=30.0,
            warmup=5.0, replications=1, seed=7,
        )
        metrics = report.metrics_for(0)[0]
        assert metrics.arrivals + metrics.rejected >= metrics.admitted
        assert metrics.rejected == metrics.arrivals - metrics.admitted
        assert 0.0 <= metrics.admission_ratio <= 1.0

"""Unit and integration tests for ALG-N-FUSION and the baselines."""

import pytest

from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import Demand, DemandSet, generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.baselines import B1Router, QCastNRouter, QCastRouter
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network

ROUTERS = [AlgNFusion(), QCastRouter(), QCastNRouter(), B1Router()]


def small_instance(seed=1, num_switches=30, num_states=8):
    rng = ensure_rng(seed)
    network = build_network(
        NetworkConfig(num_switches=num_switches, num_users=6), rng
    )
    demands = generate_demands(network, num_states, rng)
    return network, demands


@pytest.mark.parametrize("router", ROUTERS, ids=lambda r: r.name)
class TestEveryRouter:
    def test_result_consistency(self, router):
        network, demands = small_instance()
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        result = router.route(network, demands, link, swap)
        assert result.total_rate == pytest.approx(sum(result.demand_rates.values()))
        assert 0 <= result.num_routed <= len(demands)
        for rate in result.demand_rates.values():
            assert 0.0 <= rate <= 1.0

    def test_capacity_respected(self, router):
        network, demands = small_instance(seed=2)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        result = router.route(network, demands, link, swap)
        usage = result.plan.qubits_used()
        for switch in network.switches():
            assert usage.get(switch, 0) <= network.qubit_capacity(switch)

    def test_routes_are_valid_flow_graphs(self, router):
        network, demands = small_instance(seed=3)
        link, swap = LinkModel(fixed_p=0.4), SwapModel(q=0.8)
        result = router.route(network, demands, link, swap)
        demand_by_id = {d.demand_id: d for d in demands}
        for flow in result.plan.flows():
            demand = demand_by_id[flow.demand_id]
            assert flow.source == demand.source
            assert flow.destination == demand.destination
            for path in flow.paths:
                for a, b in zip(path, path[1:]):
                    assert network.has_edge(a, b)

    def test_deterministic(self, router):
        network, demands = small_instance(seed=4)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        a = router.route(network, demands, link, swap)
        b = router.route(network, demands, link, swap)
        assert a.total_rate == pytest.approx(b.total_rate)
        assert a.demand_rates == b.demand_rates

    def test_rate_monotone_in_q(self, router):
        network, demands = small_instance(seed=5)
        link = LinkModel(fixed_p=0.5)
        low = router.route(network, demands, link, SwapModel(q=0.3)).total_rate
        high = router.route(network, demands, link, SwapModel(q=0.9)).total_rate
        assert high >= low


class TestOrderings:
    def test_alg_n_fusion_dominates_baselines(self):
        """The paper's central claim at the default-style setting."""
        link, swap = LinkModel(fixed_p=0.3), SwapModel(q=0.9)
        wins = 0
        for seed in (1, 2, 3):
            network, demands = small_instance(seed=seed, num_switches=40)
            rates = {
                r.name: r.route(network, demands, link, swap).total_rate
                for r in [AlgNFusion(), QCastRouter(), QCastNRouter(), B1Router()]
            }
            if all(
                rates["ALG-N-FUSION"] >= rates[name] * 0.99
                for name in ("Q-CAST", "Q-CAST-N", "B1")
            ):
                wins += 1
        assert wins >= 2  # dominance may flip on one noisy sample

    def test_nfusion_beats_classic_swapping_at_low_p(self):
        link, swap = LinkModel(fixed_p=0.15), SwapModel(q=0.9)
        network, demands = small_instance(seed=6, num_switches=40)
        alg = AlgNFusion().route(network, demands, link, swap).total_rate
        qcast = QCastRouter().route(network, demands, link, swap).total_rate
        assert alg > 2.0 * qcast  # the n-fusion advantage regime

    def test_qcast_uses_width_one_only(self):
        network, demands = small_instance(seed=7)
        result = QCastRouter().route(
            network, demands, LinkModel(fixed_p=0.5), SwapModel()
        )
        for flow in result.plan.flows():
            assert flow.num_paths == 1
            assert set(flow.edge_widths().values()) == {1}

    def test_b1_respects_its_caps(self):
        network, demands = small_instance(seed=8)
        result = B1Router().route(
            network, demands, LinkModel(fixed_p=0.5), SwapModel()
        )
        for flow in result.plan.flows():
            assert flow.num_paths <= 2
            assert max(flow.edge_widths().values()) <= 2
            for node in flow.nodes():
                if network.node(node).is_switch:
                    assert flow.fusion_arity(node) <= 4

    def test_alg3_only_is_no_better_than_full(self):
        network, demands = small_instance(seed=9)
        link, swap = LinkModel(fixed_p=0.4), SwapModel()
        full = AlgNFusion().route(network, demands, link, swap).total_rate
        partial = AlgNFusion(include_alg4=False).route(
            network, demands, link, swap
        ).total_rate
        assert full >= partial - 1e-9

    def test_admission_policies_both_work(self):
        network, demands = small_instance(seed=10)
        link, swap = LinkModel(fixed_p=0.4), SwapModel()
        eff = AlgNFusion(admission_policy="efficiency").route(
            network, demands, link, swap
        )
        wf = AlgNFusion(admission_policy="widest_first").route(
            network, demands, link, swap
        )
        assert eff.total_rate > 0
        assert wf.total_rate > 0

    def test_unknown_policy_raises(self):
        network, demands = small_instance(seed=11)
        with pytest.raises(ValueError):
            AlgNFusion(admission_policy="bogus").route(
                network, demands, LinkModel(fixed_p=0.5), SwapModel()
            )


class TestDiamondScenario:
    def test_alg_merges_diamond_into_flow_graph(self):
        network = make_diamond_network()
        demands = DemandSet([Demand(0, 0, 1)])
        link, swap = LinkModel(fixed_p=0.3), SwapModel(q=0.9)
        result = AlgNFusion().route(network, demands, link, swap)
        flow = result.plan.flow_for(0)
        assert flow is not None
        # Both arms should be used: either as branches or via Alg-4 widths.
        assert len(flow.edges()) >= 3
        assert result.total_rate > QCastRouter().route(
            network, demands, link, swap
        ).total_rate

"""Tests for the router spec/registry API and sharded sweeps.

Covers: spec string round-trips, registry lookups and error messages,
``config_dict()`` cache-key stability across processes, spec-vs-instance
sweep bit-identity, and the deterministic shard partition of the
(setting, router) grid merging through a shared result cache.
"""

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting
from repro.experiments.harness import (
    enumerate_tasks,
    parse_shard,
    shard_member,
    shard_tasks,
    validate_shard,
)
from repro.experiments.runner import run_settings, run_sweep, standard_specs
from repro.network.builder import NetworkConfig
from repro.routing.baselines import B1Router, MCFRouter, QCastRouter
from repro.routing.nfusion import AlgNFusion
from repro.routing.registry import (
    Router,
    RouterSpec,
    RouterSpecError,
    as_spec,
    make_router,
    parse_router_specs,
    register_router,
    router_class,
    router_keys,
)


def tiny_setting(**kwargs):
    defaults = dict(
        network=NetworkConfig(num_switches=20, num_users=4),
        num_states=4,
        num_networks=2,
        fixed_p=0.5,
        seed=77,
    )
    defaults.update(kwargs)
    return ExperimentSetting(**defaults)


class TestRegistry:
    def test_all_five_routers_registered(self):
        assert router_keys() == [
            "alg-n-fusion", "b1", "mcf", "q-cast", "q-cast-n",
        ]

    def test_make_router_builds_configured_instances(self):
        router = make_router("alg-n-fusion", h=5, include_alg4=False)
        assert isinstance(router, AlgNFusion)
        assert router.h == 5 and router.include_alg4 is False
        assert isinstance(make_router("mcf"), MCFRouter)

    def test_aliases_normalize(self):
        assert router_class("qcast") is QCastRouter
        assert RouterSpec.create("qcast-n").key == "q-cast-n"
        assert RouterSpec.create("  Q-CAST ").key == "q-cast"

    def test_unknown_key_lists_known_routers(self):
        with pytest.raises(RouterSpecError, match="known routers: .*q-cast-n"):
            make_router("dijkstra")

    def test_unknown_param_lists_valid_fields(self):
        with pytest.raises(
            RouterSpecError, match="valid parameters: .*max_width"
        ):
            RouterSpec.create("b1", bogus=1)

    def test_register_router_rejects_duplicate_key(self):
        with pytest.raises(RouterSpecError, match="already registered"):
            @register_router("b1")
            @dataclasses.dataclass
            class Impostor:
                name: str = "B1-IMPOSTOR"

    def test_register_router_rejects_alias_hijacks(self):
        # An alias shadowing an existing key would win every lookup.
        with pytest.raises(RouterSpecError, match="collides"):
            @register_router("my-router", aliases=("b1",))
            @dataclasses.dataclass
            class Hijacker:
                name: str = "HIJACK"
        # An alias another router already owns cannot be redirected.
        with pytest.raises(RouterSpecError, match="already points to"):
            @register_router("my-router", aliases=("qcast",))
            @dataclasses.dataclass
            class AliasThief:
                name: str = "THIEF"
        # A key that is an existing alias cannot be registered either.
        with pytest.raises(RouterSpecError, match="already an alias"):
            @register_router("qcast")
            @dataclasses.dataclass
            class KeyThief:
                name: str = "KEY-THIEF"
        assert "my-router" not in router_keys()  # nothing was mutated
        assert router_class("b1").__name__ == "B1Router"
        assert router_class("qcast").__name__ == "QCastRouter"

    def test_register_router_requires_dataclass(self):
        with pytest.raises(TypeError, match="dataclass"):
            @register_router("plain-class")
            class Plain:
                pass

    def test_routers_satisfy_protocol(self):
        for key in router_keys():
            assert isinstance(make_router(key), Router)


class TestRouterSpec:
    def test_from_string_round_trip(self):
        for text in (
            "alg-n-fusion",
            "alg-n-fusion:include_alg4=false",
            "alg-n-fusion:h=5,include_alg4=false,name=ALG-VARIANT",
            "mcf:cost_weight=0.25,max_paths=2",
            "q-cast-n:max_width=none",
        ):
            spec = RouterSpec.from_string(text)
            assert RouterSpec.from_string(spec.to_string()) == spec

    def test_issue_example_builds(self):
        router = RouterSpec.from_string(
            "alg-n-fusion:include_alg4=false"
        ).build()
        assert isinstance(router, AlgNFusion)
        assert router.include_alg4 is False

    def test_value_types_parse(self):
        spec = RouterSpec.from_string(
            "alg-n-fusion:h=5,include_alg4=true,max_width=none,name=X"
        )
        params = spec.param_dict()
        assert params == {"h": 5, "name": "X"}  # defaults dropped
        spec = RouterSpec.from_string("mcf:cost_weight=0.5")
        assert spec.param_dict() == {"cost_weight": 0.5}

    def test_explicit_defaults_are_canonicalized_away(self):
        assert RouterSpec.create("alg-n-fusion", h=3) == RouterSpec.create(
            "alg-n-fusion"
        )
        assert RouterSpec.create("alg-n-fusion", h=3).to_string() == (
            "alg-n-fusion"
        )

    def test_malformed_strings_rejected(self):
        for text in ("", "alg-n-fusion:h", "alg-n-fusion:=5", ":h=5"):
            with pytest.raises(RouterSpecError):
                RouterSpec.from_string(text)

    def test_unroundtrippable_string_value_rejected_at_construction(self):
        """Every constructible spec must be printable, so separator-
        carrying strings are rejected before a spec exists."""
        for bad in ("A,B", "A:B", "A=B", " padded "):
            with pytest.raises(RouterSpecError, match="round trip"):
                RouterSpec.create("alg-n-fusion", name=bad)
        with pytest.raises(RouterSpecError):
            RouterSpec.from_string("alg-n-fusion:name=A:B")

    def test_numeric_looking_string_params_stay_str(self):
        """name=123 must honour the field's str annotation, not the
        value's shape — the series label feeds string operations."""
        spec = RouterSpec.from_string("alg-n-fusion:name=123")
        assert spec.build().name == "123"
        assert RouterSpec.from_string(spec.to_string()) == spec
        spec = RouterSpec.from_string("alg-n-fusion:name=true")
        assert spec.build().name == "true"

    def test_int_literals_fill_float_fields(self):
        spec = RouterSpec.from_string("mcf:cost_weight=1")
        assert spec.build().cost_weight == 1.0
        assert spec == RouterSpec.create("mcf", cost_weight=1.0)

    def test_numeric_bool_spellings_hash_identically(self, tmp_path):
        """include_alg4=0 and include_alg4=false are the same config
        and must address the same cache entry across shards."""
        zero = RouterSpec.from_string("alg-n-fusion:include_alg4=0")
        word = RouterSpec.from_string("alg-n-fusion:include_alg4=false")
        assert zero == word
        assert zero.config_dict() == word.config_dict()
        cache = ResultCache(tmp_path)
        setting = tiny_setting()
        assert cache.key_for(setting, zero) == cache.key_for(setting, word)

    def test_type_invalid_values_rejected_at_parse_time(self):
        for text in (
            "alg-n-fusion:max_width=abc",
            "alg-n-fusion:h=true",
            "alg-n-fusion:h=none",
            "alg-n-fusion:include_alg4=2",
            "mcf:cost_weight=abc",
        ):
            with pytest.raises(RouterSpecError, match="must be"):
                RouterSpec.from_string(text)
        with pytest.raises(RouterSpecError, match="NaN"):
            RouterSpec.from_string("mcf:cost_weight=nan")

    def test_as_spec_from_instance_keeps_overrides_only(self):
        spec = as_spec(AlgNFusion(include_alg4=False))
        assert spec == RouterSpec.create("alg-n-fusion", include_alg4=False)
        assert as_spec(B1Router()) == RouterSpec.create("b1")

    def test_as_spec_passthrough_and_strings(self):
        spec = RouterSpec.create("q-cast")
        assert as_spec(spec) is spec
        assert as_spec("q-cast") == spec

    def test_as_spec_rejects_unregistered_objects(self):
        with pytest.raises(RouterSpecError):
            as_spec(object())

    def test_as_spec_rejects_unregistered_subclasses(self):
        """A subclass inherits registry_key; coercing it to the base
        spec would silently evaluate the wrong router."""

        @dataclasses.dataclass
        class Tweaked(AlgNFusion):
            pass

        with pytest.raises(RouterSpecError, match="registration"):
            as_spec(Tweaked())
        with pytest.raises(RouterSpecError, match="not a registered"):
            Tweaked().config_dict()

    def test_non_lowercase_keys_rejected_at_registration(self):
        for bad in ("MyRouter", "my router", "with:colon", "a=b", ""):
            with pytest.raises(RouterSpecError, match="invalid router key"):
                @register_router(bad)
                @dataclasses.dataclass
                class Bad:
                    name: str = "BAD"
        with pytest.raises(RouterSpecError, match="invalid router key"):
            @register_router("ok-key", aliases=("QCast",))
            @dataclasses.dataclass
            class BadAlias:
                name: str = "BAD-ALIAS"
        assert "ok-key" not in router_keys()

    def test_parse_router_specs_param_continuation(self):
        specs = parse_router_specs(
            "alg-n-fusion:include_alg4=false,h=5,q-cast"
        )
        assert specs == [
            RouterSpec.create("alg-n-fusion", include_alg4=False, h=5),
            RouterSpec.create("q-cast"),
        ]

    def test_parse_router_specs_rejects_leading_param(self):
        with pytest.raises(RouterSpecError, match="router key"):
            parse_router_specs("include_alg4=false,q-cast")


class TestConfigDict:
    def test_contains_key_and_full_params(self):
        config = AlgNFusion(h=5).config_dict()
        assert config["key"] == "alg-n-fusion"
        assert config["params"]["h"] == 5
        assert config["params"]["include_alg4"] is True  # defaults included

    def test_spec_and_instance_agree(self):
        spec = RouterSpec.create("alg-n-fusion", include_alg4=False)
        assert spec.config_dict() == AlgNFusion(include_alg4=False).config_dict()

    def test_cache_key_identical_for_spec_and_instance(self, tmp_path):
        cache = ResultCache(tmp_path)
        setting = tiny_setting()
        spec = RouterSpec.create("alg-n-fusion", h=5)
        assert cache.key_for(setting, spec) == cache.key_for(
            setting, AlgNFusion(h=5)
        )
        assert cache.key_for(setting, spec) != cache.key_for(
            setting, AlgNFusion()
        )

    def test_cache_key_stable_across_processes(self, tmp_path):
        """The same spec must hash identically in a fresh interpreter —
        the property that makes sharded runs on other machines address
        the same cache entries."""
        cache = ResultCache(tmp_path)
        setting = tiny_setting()
        spec = RouterSpec.from_string("alg-n-fusion:include_alg4=false")
        local_key = cache.key_for(setting, spec)
        script = (
            "from repro.experiments.cache import ResultCache\n"
            "from repro.experiments.config import ExperimentSetting\n"
            "from repro.network.builder import NetworkConfig\n"
            "from repro.routing.registry import RouterSpec\n"
            "setting = ExperimentSetting("
            "network=NetworkConfig(num_switches=20, num_users=4), "
            "num_states=4, num_networks=2, fixed_p=0.5, seed=77)\n"
            "spec = RouterSpec.from_string('alg-n-fusion:include_alg4=false')\n"
            "print(ResultCache('x').key_for(setting, spec))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        other_key = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout.strip()
        assert other_key == local_key


class TestSpecsInRunner:
    def test_paired_sweep_specs_match_instances_bitwise(self):
        """The spec-driven path must reproduce the old instance-based
        path bit-exactly."""
        settings = [tiny_setting(fixed_p=p) for p in (0.3, 0.6)]
        by_instance = run_settings(
            settings, [AlgNFusion(include_alg4=False), QCastRouter()]
        )
        by_spec = run_settings(
            settings,
            [
                RouterSpec.create("alg-n-fusion", include_alg4=False),
                RouterSpec.create("q-cast"),
            ],
        )
        by_string = run_settings(
            settings, ["alg-n-fusion:include_alg4=false", "q-cast"]
        )
        assert by_spec == by_instance
        assert by_string == by_instance

    def test_standard_specs_mcf_runs(self):
        rates = run_settings(
            [tiny_setting(num_networks=1)],
            standard_specs(include_mcf=True),
        )[0]
        assert "MCF" in rates


class TestShardSelectors:
    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for text in ("2/2", "-1/2", "0", "a/b", "1/", "/2"):
            with pytest.raises(ValueError):
                parse_shard(text)

    def test_validate_shard(self):
        assert validate_shard((1, 3)) == (1, 3)
        with pytest.raises(ValueError):
            validate_shard((0, 0))

    def test_partition_is_disjoint_and_complete(self):
        settings = [tiny_setting(seed=s) for s in (1, 2, 3)]
        routers = [spec.build() for spec in standard_specs()]
        tasks = enumerate_tasks(settings, [routers] * len(settings))
        count = 3
        shards = [
            shard_tasks(tasks, (i, count), num_routers=len(routers))
            for i in range(count)
        ]
        keys = [task.key for shard in shards for task in shard]
        assert sorted(keys) == [task.key for task in tasks]
        assert len(keys) == len(set(keys))

    def test_partition_keeps_series_whole(self):
        """All samples of one (setting, router) pair land in one shard,
        so every cache entry is produced by exactly one shard."""
        settings = [tiny_setting(seed=s) for s in (1, 2)]
        routers = [spec.build() for spec in standard_specs()]
        tasks = enumerate_tasks(settings, [routers] * len(settings))
        for index in range(3):
            owned = {
                (t.setting_index, t.router_index)
                for t in shard_tasks(tasks, (index, 3), num_routers=len(routers))
            }
            for setting_index, router_index in owned:
                assert shard_member(
                    (index, 3), setting_index, router_index, len(routers)
                )

    def test_membership_independent_of_cache_state(self):
        assert shard_member((0, 2), 0, 0, 4)
        assert not shard_member((1, 2), 0, 0, 4)
        assert shard_member((1, 2), 0, 1, 4)


class TestShardedSweeps:
    def test_shards_merge_bitwise_through_shared_cache(self, tmp_path):
        settings = [tiny_setting(fixed_p=p) for p in (0.3, 0.6)]
        routers = ["alg-n-fusion", "q-cast", "b1"]
        unsharded = run_settings(settings, routers)

        cache = ResultCache(tmp_path)
        partials = [
            run_settings(settings, routers, cache=cache, shard=(i, 2))
            for i in range(2)
        ]
        # Each shard owns a strict, non-empty subset of the series.
        assert all(
            sum(len(rates) for rates in partial) < 2 * len(routers)
            for partial in partials[:1]
        )
        # Once both shards ran, a cache-backed run is complete and
        # bit-identical to the unsharded result.
        merged = run_settings(settings, routers, cache=cache, shard=(0, 2))
        assert merged == unsharded
        assert run_settings(settings, routers, cache=cache) == unsharded

    def test_second_shard_reports_first_shards_cached_series(self, tmp_path):
        settings = [tiny_setting()]
        routers = ["alg-n-fusion", "q-cast"]
        cache = ResultCache(tmp_path)
        first = run_settings(settings, routers, cache=cache, shard=(0, 2))[0]
        second = run_settings(settings, routers, cache=cache, shard=(1, 2))[0]
        assert set(first) == {"ALG-N-FUSION"}
        assert set(second) == {"ALG-N-FUSION", "Q-CAST"}

    def test_sharded_sweep_pads_missing_series_with_nan(self):
        settings = [tiny_setting(fixed_p=p) for p in (0.3, 0.6)]
        # 2 settings x 3 routers sharded 0/2 gives every series a point
        # it does not own, so each column needs NaN padding to stay
        # aligned with the x axis.
        sweep = run_sweep(
            "t", "p", [0.3, 0.6], settings,
            routers=["alg-n-fusion", "q-cast", "b1"], shard=(0, 2),
        )
        assert all(len(s) == 2 for s in sweep.series.values())
        text = sweep.to_text()  # renders despite the missing points
        assert "nan" in text


class TestExperimentsCli:
    def test_fig7_sharded_cli_merges_bit_identically(self, tmp_path, capsys):
        """The acceptance-criteria command: complementary fig7 shards
        through one --cache-dir reproduce the unsharded output."""
        from repro.experiments.__main__ import main

        args = ["fig7", "--routers", "alg-n-fusion:refill_rounds=0,q-cast"]
        assert main(args) == 0
        unsharded = capsys.readouterr().out
        cache_dir = str(tmp_path / "cache")
        assert main([*args, "--shard", "0/2", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main([*args, "--shard", "1/2", "--cache-dir", cache_dir]) == 0
        merged = capsys.readouterr().out
        assert merged == unsharded

    def test_routers_subcommand_lists_keys(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["routers"]) == 0
        assert capsys.readouterr().out.split() == router_keys()

    def test_bad_specs_and_shards_exit_with_usage_error(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig7", "--routers", "warp-drive"])
        with pytest.raises(SystemExit):
            main(["fig7", "--shard", "2/2"])

    def test_duplicate_labels_are_a_clean_cli_error(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["fig7", "--routers", "alg-n-fusion,alg-n-fusion:h=5"])
        assert code == 2
        err = capsys.readouterr().err
        assert "duplicate algorithm label" in err

"""Pinned-instance regression tests.

``tests/data/regression_instance.json`` is a frozen topology + demand
set; the rates below were produced by the reviewed implementation.  Any
change to the routing algorithms that shifts these numbers is either a
bug or a deliberate algorithmic change — in the latter case regenerate
the pins (``python -m repro.experiments regen-regression`` rewrites the
fixture bit-exactly from its frozen recipe) and document the change.
"""

import pathlib

import pytest

from repro.experiments.regression import (
    REGRESSION_NUM_DEMANDS,
    build_regression_instance,
    regenerate_regression_fixture,
)
from repro.network.serialization import load_instance, save_instance
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.baselines import B1Router, QCastNRouter, QCastRouter
from repro.routing.nfusion import AlgNFusion

INSTANCE = pathlib.Path(__file__).parent / "data" / "regression_instance.json"

PINNED_RATES = {
    "ALG-N-FUSION": 4.072143172698226,
    "Q-CAST": 0.9676800000000001,
    "Q-CAST-N": 3.567133129380986,
    "B1": 2.699442708480001,
}

ROUTERS = {
    "ALG-N-FUSION": AlgNFusion,
    "Q-CAST": QCastRouter,
    "Q-CAST-N": QCastNRouter,
    "B1": B1Router,
}


@pytest.fixture(scope="module")
def instance():
    return load_instance(INSTANCE)


@pytest.mark.parametrize("name", sorted(PINNED_RATES))
def test_pinned_rate(name, instance):
    network, demands = instance
    link, swap = LinkModel(fixed_p=0.4), SwapModel(q=0.9)
    result = ROUTERS[name]().route(network, demands, link, swap)
    assert result.total_rate == pytest.approx(PINNED_RATES[name], rel=1e-9)


def test_instance_is_stable(instance):
    network, demands = instance
    assert network.num_nodes == 36
    assert len(demands) == REGRESSION_NUM_DEMANDS
    assert network.is_connected()


def test_fixture_matches_recipe(tmp_path):
    """The committed fixture is exactly what the frozen recipe produces."""
    regenerated = regenerate_regression_fixture(tmp_path / "instance.json")
    assert regenerated.read_bytes() == INSTANCE.read_bytes()


def test_fixture_serialization_round_trip(tmp_path, instance):
    """Saving the loaded fixture reproduces the committed bytes."""
    network, demands = instance
    path = tmp_path / "round_trip.json"
    save_instance(path, network, demands)
    assert path.read_bytes() == INSTANCE.read_bytes()


def test_recipe_routes_like_fixture(instance):
    """The in-memory recipe and the loaded fixture route identically."""
    network, demands = instance
    built_network, built_demands = build_regression_instance()
    link, swap = LinkModel(fixed_p=0.4), SwapModel(q=0.9)
    loaded = AlgNFusion().route(network, demands, link, swap)
    built = AlgNFusion().route(built_network, built_demands, link, swap)
    assert loaded.total_rate == built.total_rate
    assert loaded.demand_rates == built.demand_rates

"""Pinned-instance regression tests.

``tests/data/regression_instance.json`` is a frozen topology + demand
set; the rates below were produced by the reviewed implementation.  Any
change to the routing algorithms that shifts these numbers is either a
bug or a deliberate algorithmic change — in the latter case regenerate
the pins and document the change.
"""

import pathlib

import pytest

from repro.network.serialization import load_instance
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.baselines import B1Router, QCastNRouter, QCastRouter
from repro.routing.nfusion import AlgNFusion

INSTANCE = pathlib.Path(__file__).parent / "data" / "regression_instance.json"

PINNED_RATES = {
    "ALG-N-FUSION": 3.6787172133298744,
    "Q-CAST": 0.50688,
    "Q-CAST-N": 3.8342518189243773,
    "B1": 2.293470198377114,
}

ROUTERS = {
    "ALG-N-FUSION": AlgNFusion,
    "Q-CAST": QCastRouter,
    "Q-CAST-N": QCastNRouter,
    "B1": B1Router,
}


@pytest.fixture(scope="module")
def instance():
    return load_instance(INSTANCE)


@pytest.mark.parametrize("name", sorted(PINNED_RATES))
def test_pinned_rate(name, instance):
    network, demands = instance
    link, swap = LinkModel(fixed_p=0.4), SwapModel(q=0.9)
    result = ROUTERS[name]().route(network, demands, link, swap)
    assert result.total_rate == pytest.approx(PINNED_RATES[name], rel=1e-9)


def test_instance_is_stable(instance):
    network, demands = instance
    assert network.num_nodes == 36
    assert len(demands) == 8
    assert network.is_connected()

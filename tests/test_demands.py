"""Unit tests for demand generation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import Demand, DemandSet, generate_demands
from repro.utils.rng import ensure_rng


class TestDemand:
    def test_pair_is_canonical(self):
        assert Demand(0, 5, 2).pair == (2, 5)
        assert Demand(0, 2, 5).pair == (2, 5)

    def test_self_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            Demand(0, 3, 3)


class TestDemandSet:
    def test_iteration_preserves_order(self):
        demands = DemandSet([Demand(0, 1, 2), Demand(1, 3, 4)])
        assert [d.demand_id for d in demands] == [0, 1]
        assert len(demands) == 2
        assert demands[1].pair == (3, 4)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            DemandSet([Demand(0, 1, 2), Demand(0, 3, 4)])

    def test_by_id(self):
        demands = DemandSet([Demand(7, 1, 2)])
        assert demands.by_id(7).source == 1
        with pytest.raises(ConfigurationError):
            demands.by_id(8)

    def test_pairs_and_lookup(self):
        demands = DemandSet(
            [Demand(0, 1, 2), Demand(1, 2, 1), Demand(2, 3, 4)]
        )
        assert demands.pairs() == [(1, 2), (3, 4)]
        assert len(demands.demands_for_pair(2, 1)) == 2


class TestGenerateDemands:
    def test_counts_and_endpoints(self):
        net = build_network(NetworkConfig(num_switches=20, num_users=5), ensure_rng(1))
        demands = generate_demands(net, 12, ensure_rng(2))
        assert len(demands) == 12
        users = set(net.users())
        for demand in demands:
            assert demand.source in users
            assert demand.destination in users
            assert demand.source != demand.destination

    def test_deterministic(self):
        net = build_network(NetworkConfig(num_switches=20, num_users=5), ensure_rng(1))
        a = generate_demands(net, 6, ensure_rng(3))
        b = generate_demands(net, 6, ensure_rng(3))
        assert [d.pair for d in a] == [d.pair for d in b]

    def test_needs_two_users(self):
        net = build_network(NetworkConfig(num_switches=20, num_users=2), ensure_rng(1))
        with pytest.raises(ConfigurationError):
            generate_demands(net, 3, ensure_rng(0), users=[net.users()[0]])

    def test_positive_count_required(self):
        net = build_network(NetworkConfig(num_switches=20, num_users=4), ensure_rng(1))
        with pytest.raises(ConfigurationError):
            generate_demands(net, 0, ensure_rng(0))

"""Tests for the experiment harness (configs, runner, figures, tables)."""

import pytest

from repro.experiments.config import ExperimentSetting, is_full_run
from repro.experiments.runner import (
    SweepResult,
    run_setting,
    run_sweep,
    standard_specs,
)
from repro.network.builder import NetworkConfig


def tiny_setting(**kwargs):
    defaults = dict(
        network=NetworkConfig(num_switches=20, num_users=4),
        num_states=4,
        num_networks=1,
        fixed_p=0.5,
        seed=77,
    )
    defaults.update(kwargs)
    return ExperimentSetting(**defaults)


class TestSetting:
    def test_defaults_match_paper(self):
        s = ExperimentSetting()
        assert s.network.num_switches == 100
        assert s.network.qubit_capacity == 10
        assert s.num_states == 20
        assert s.swap_q == 0.9
        assert s.num_networks == 5

    def test_models(self):
        s = tiny_setting()
        assert s.link_model().fixed_p == 0.5
        assert s.swap_model().q == 0.9

    def test_quick_scaling(self):
        s = ExperimentSetting().scaled_for_quick_run()
        assert s.network.num_switches == 50
        assert s.num_networks <= 2

    def test_is_full_run_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not is_full_run()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert is_full_run()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not is_full_run()


class TestRunner:
    def test_run_setting_returns_all_algorithms(self):
        rates = run_setting(tiny_setting())
        assert set(rates) == {"ALG-N-FUSION", "Q-CAST", "Q-CAST-N", "B1"}
        for value in rates.values():
            assert value >= 0.0

    def test_run_setting_deterministic(self):
        a = run_setting(tiny_setting())
        b = run_setting(tiny_setting())
        assert a == pytest.approx(b)

    def test_standard_specs_order(self):
        names = [spec.build().name for spec in standard_specs()]
        assert names == ["ALG-N-FUSION", "Q-CAST", "Q-CAST-N", "B1"]
        assert len(standard_specs(include_alg3_only=True)) == 5
        keys = [spec.key for spec in standard_specs(include_mcf=True)]
        assert keys == ["alg-n-fusion", "q-cast", "q-cast-n", "b1", "mcf"]

    def test_run_sweep(self):
        settings = [tiny_setting(fixed_p=p) for p in (0.3, 0.6)]
        sweep = run_sweep("t", "p", [0.3, 0.6], settings)
        assert sweep.x_values == [0.3, 0.6]
        for series in sweep.series.values():
            assert len(series) == 2
        text = sweep.to_text()
        assert "ALG-N-FUSION" in text and "0.6" in text

    def test_run_sweep_length_mismatch(self):
        with pytest.raises(ValueError):
            run_sweep("t", "p", [0.1], [])

    def test_rates_increase_with_p(self):
        settings = [tiny_setting(fixed_p=p) for p in (0.2, 0.8)]
        sweep = run_sweep("t", "p", [0.2, 0.8], settings)
        low, high = sweep.series_for("ALG-N-FUSION")
        assert high >= low

    def test_rates_increase_with_q(self):
        settings = [tiny_setting(swap_q=q) for q in (0.3, 0.9)]
        sweep = run_sweep("t", "q", [0.3, 0.9], settings)
        low, high = sweep.series_for("ALG-N-FUSION")
        assert high >= low


class TestSweepResult:
    def test_add_point_and_series(self):
        sweep = SweepResult("t", "x", [1, 2])
        sweep.add_point({"a": 0.5})
        sweep.add_point({"a": 0.7})
        assert sweep.series_for("a") == [0.5, 0.7]

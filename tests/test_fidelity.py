"""Unit tests for the fidelity extension."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.quantum.fidelity import FidelityModel
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng


class TestFidelityModel:
    def test_path_fidelity_formula(self):
        model = FidelityModel(link_fidelity=0.9, fusion_fidelity=0.8)
        assert model.path_fidelity(1) == pytest.approx(0.9)
        assert model.path_fidelity(3) == pytest.approx(0.9**3 * 0.8**2)

    def test_path_fidelity_monotone(self):
        model = FidelityModel()
        values = [model.path_fidelity(z) for z in range(1, 10)]
        assert values == sorted(values, reverse=True)

    def test_invalid_hops(self):
        with pytest.raises(ConfigurationError):
            FidelityModel().path_fidelity(0)

    def test_invalid_fidelities(self):
        with pytest.raises(ConfigurationError):
            FidelityModel(link_fidelity=1.2)
        with pytest.raises(ConfigurationError):
            FidelityModel(fusion_fidelity=-0.1)

    def test_max_hops(self):
        model = FidelityModel(link_fidelity=0.9, fusion_fidelity=1.0)
        # 0.9^z >= 0.7 -> z <= 3 (0.9^3 = 0.729, 0.9^4 = 0.656).
        assert model.max_hops(0.7) == 3
        assert model.max_hops(0.95) == 0
        assert model.max_hops(0.0) >= 10**6

    def test_max_hops_perfect_hardware(self):
        assert FidelityModel(1.0, 1.0).max_hops(0.99) >= 10**6

    def test_flow_bounds(self):
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)   # 3 hops
        flow.add_path([0, 4, 1], width=1)      # 2 hops
        model = FidelityModel(link_fidelity=0.9, fusion_fidelity=0.9)
        worst, best = model.flow_fidelity_bounds(flow)
        assert worst == pytest.approx(model.path_fidelity(3))
        assert best == pytest.approx(model.path_fidelity(2))
        assert model.meets_threshold(flow, worst)
        assert not model.meets_threshold(flow, best + 1e-6)

    def test_empty_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            FidelityModel().flow_fidelity_bounds(FlowLikeGraph(0, 0, 1))


class TestFidelityConstrainedRouting:
    @pytest.fixture(scope="class")
    def instance(self):
        rng = ensure_rng(321)
        network = build_network(
            NetworkConfig(num_switches=40, num_users=6), rng
        )
        demands = generate_demands(network, 8, rng)
        return network, demands

    def test_constraint_bounds_hops(self, instance):
        network, demands = instance
        model = FidelityModel(link_fidelity=0.96, fusion_fidelity=0.98)
        min_fidelity = 0.85
        cap = model.max_hops(min_fidelity)
        router = AlgNFusion().with_fidelity_constraint(model, min_fidelity)
        assert router.max_hops == cap
        result = router.route(
            network, demands, LinkModel(fixed_p=0.5), SwapModel()
        )
        for flow in result.plan.flows():
            for path in flow.paths:
                assert len(path) - 1 <= cap
            assert model.meets_threshold(flow, min_fidelity)

    def test_tighter_constraint_never_raises_rate(self, instance):
        network, demands = instance
        link, swap = LinkModel(fixed_p=0.5), SwapModel()
        free = AlgNFusion().route(network, demands, link, swap).total_rate
        constrained = AlgNFusion(max_hops=3).route(
            network, demands, link, swap
        ).total_rate
        assert constrained <= free + 1e-9

    def test_impossible_constraint_routes_nothing_beyond_direct(self, instance):
        network, demands = instance
        result = AlgNFusion(max_hops=1).route(
            network, demands, LinkModel(fixed_p=0.5), SwapModel()
        )
        # Users never share an edge in generated networks, so max_hops=1
        # leaves every demand unroutable.
        assert result.num_routed == 0

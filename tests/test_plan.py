"""Unit tests for RoutingPlan and the experiments CLI."""

import pytest

from repro.exceptions import RoutingError
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.plan import RoutingPlan

from tests.conftest import make_diamond_network


def flow_on_diamond(demand_id=0, arm="upper", width=1):
    flow = FlowLikeGraph(demand_id, 0, 1)
    nodes = [0, 2, 3, 1] if arm == "upper" else [0, 4, 5, 1]
    flow.add_path(nodes, width=width)
    return flow


class TestRoutingPlan:
    def test_add_and_lookup(self):
        plan = RoutingPlan()
        plan.add_flow(flow_on_diamond(0))
        plan.add_flow(flow_on_diamond(1, arm="lower"))
        assert len(plan) == 2
        assert 0 in plan and 2 not in plan
        assert plan.flow_for(0).demand_id == 0
        assert plan.flow_for(5) is None
        assert plan.routed_demand_ids() == [0, 1]

    def test_duplicate_demand_rejected(self):
        plan = RoutingPlan()
        plan.add_flow(flow_on_diamond(0))
        with pytest.raises(RoutingError):
            plan.add_flow(flow_on_diamond(0, arm="lower"))

    def test_rates(self, diamond_network):
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        plan = RoutingPlan()
        plan.add_flow(flow_on_diamond(0))
        plan.add_flow(flow_on_diamond(1, arm="lower"))
        rates = plan.demand_rates(diamond_network, link, swap)
        assert set(rates) == {0, 1}
        assert plan.total_rate(diamond_network, link, swap) == pytest.approx(
            sum(rates.values())
        )

    def test_qubits_used(self):
        plan = RoutingPlan()
        plan.add_flow(flow_on_diamond(0, width=2))
        usage = plan.qubits_used()
        # Switch 2: edges (0,2) and (2,3), width 2 each -> 4 qubits.
        assert usage[2] == 4
        assert usage[3] == 4
        # Users appear too (their ledger is unlimited, but usage counts).
        assert usage[0] == 2

    def test_flows_sorted_by_demand(self):
        plan = RoutingPlan()
        plan.add_flow(flow_on_diamond(3))
        plan.add_flow(flow_on_diamond(1, arm="lower"))
        assert [f.demand_id for f in plan.flows()] == [1, 3]


class TestExperimentsCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out and "ablation" in out

    def test_parser_rejects_unknown(self):
        from repro.experiments.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_profile_sort_choices(self):
        from repro.experiments.__main__ import build_parser

        parser = build_parser()
        assert parser.parse_args(["fig7"]).profile_sort == "cumulative"
        args = parser.parse_args(
            ["fig7", "--profile", "--profile-sort", "tottime"]
        )
        assert args.profile_sort == "tottime"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig7", "--profile-sort", "ncalls"])

"""Tests for the top-level command line interface."""

import pytest

from repro.__main__ import ROUTERS, build_parser, main


class TestParser:
    def test_route_defaults(self):
        args = build_parser().parse_args(["route"])
        assert args.command == "route"
        assert args.algorithm == "alg-n-fusion"
        assert args.switches == 50

    def test_all_routers_registered(self):
        assert set(ROUTERS) == {"alg-n-fusion", "q-cast", "q-cast-n", "b1", "mcf"}

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--algorithm", "dijkstra"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert "1.0.0" in capsys.readouterr().out

    def test_route_summary(self, capsys):
        code = main([
            "route", "--switches", "20", "--users", "4", "--states", "3",
            "--seed", "5", "--p", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ALG-N-FUSION" in out
        assert "total rate" in out

    def test_route_report(self, capsys):
        code = main([
            "route", "--switches", "20", "--users", "4", "--states", "3",
            "--seed", "5", "--p", "0.5", "--report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "routing plan" in out
        assert "busiest switch" in out

    def test_route_save_and_simulate(self, tmp_path, capsys):
        instance = tmp_path / "instance.json"
        assert main([
            "route", "--switches", "20", "--users", "4", "--states", "3",
            "--seed", "5", "--p", "0.5", "--save", str(instance),
        ]) == 0
        assert instance.exists()
        capsys.readouterr()
        assert main([
            "simulate", str(instance), "--trials", "500", "--p", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "analytic rate" in out
        assert "monte carlo" in out

    def test_route_alternate_algorithm(self, capsys):
        code = main([
            "route", "--switches", "20", "--users", "4", "--states", "3",
            "--seed", "5", "--p", "0.5", "--algorithm", "q-cast",
        ])
        assert code == 0
        assert "Q-CAST" in capsys.readouterr().out

"""Unit tests for Algorithm 1 (largest entanglement rate path)."""

import itertools

import pytest

from repro.exceptions import RoutingError
from repro.network.builder import NetworkConfig, build_network
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.allocation import QubitLedger
from repro.routing.metrics import path_entanglement_rate
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network, make_line_network


@pytest.fixture
def models():
    return LinkModel(fixed_p=0.5), SwapModel(q=0.9)


class TestBasics:
    def test_line_path_found(self, line_network, models):
        link, swap = models
        found = largest_entanglement_rate_path(
            line_network, link, swap, 3, 4, width=1
        )
        assert found is not None
        nodes, rate = found
        assert nodes == (3, 0, 1, 2, 4)
        assert rate == pytest.approx(
            path_entanglement_rate(line_network, link, swap, nodes, 1)
        )

    def test_same_endpoints_rejected(self, line_network, models):
        link, swap = models
        with pytest.raises(RoutingError):
            largest_entanglement_rate_path(line_network, link, swap, 3, 3, 1)

    def test_invalid_width_rejected(self, line_network, models):
        link, swap = models
        with pytest.raises(RoutingError):
            largest_entanglement_rate_path(line_network, link, swap, 3, 4, 0)

    def test_missing_endpoint_rejected(self, line_network, models):
        link, swap = models
        with pytest.raises(RoutingError):
            largest_entanglement_rate_path(line_network, link, swap, 3, 99, 1)

    def test_disconnected_returns_none(self, line_network, models):
        link, swap = models
        line_network.remove_edge(1, 2)
        assert largest_entanglement_rate_path(
            line_network, link, swap, 3, 4, 1
        ) is None


class TestPreferences:
    def test_prefers_higher_rate_branch(self, diamond_network):
        """With unequal p on the two diamond arms, Algorithm 1 must pick
        the better arm."""
        link = LinkModel(alpha=1e-3)  # length-sensitive
        swap = SwapModel(q=0.9)
        # Lower arm (4, 5) sits further out; stretch it explicitly.
        diamond_network.remove_edge(4, 5)
        diamond_network.add_edge(4, 5, length=5000.0)
        found = largest_entanglement_rate_path(
            diamond_network, link, swap, 0, 1, width=1
        )
        assert found is not None
        assert found[0] == (0, 2, 3, 1)

    def test_prefers_fewer_hops_when_lengths_equal(self, models):
        """Hops cost q each, so a 2-switch route beats a 3-switch route of
        the same total length under uniform p."""
        link, swap = models
        network = make_diamond_network()
        # Add a third, longer arm with an extra switch.
        from repro.network.node import QuantumSwitch
        from repro.utils.geometry import Point

        network.add_node(QuantumSwitch(6, Point(1500.0, 2000.0), 10))
        network.add_edge(2, 6)
        network.add_edge(6, 3)
        found = largest_entanglement_rate_path(network, link, swap, 0, 1, 1)
        assert found is not None
        assert 6 not in found[0]

    def test_never_relays_through_user(self, models):
        link, swap = models
        network = make_diamond_network()
        # Give user 0 a tempting shortcut position: connect a third user
        # that bridges the two arms.
        from repro.network.node import QuantumUser
        from repro.utils.geometry import Point

        network.add_node(QuantumUser(6, Point(1500.0, 0.0)))
        network.add_edge(2, 6)
        network.add_edge(6, 5)
        found = largest_entanglement_rate_path(network, link, swap, 0, 1, 1)
        assert found is not None
        assert 6 not in found[0]


class TestCapacityConstraints:
    def test_intermediate_needs_double_width(self, models):
        link, swap = models
        network = make_line_network(num_switches=3, capacity=3)
        # Width 1 needs 2 qubits per intermediate: fine.
        assert largest_entanglement_rate_path(network, link, swap, 3, 4, 1)
        # Width 2 needs 4 qubits per intermediate: impossible at capacity 3.
        assert largest_entanglement_rate_path(network, link, swap, 3, 4, 2) is None

    def test_ledger_constrains_search(self, line_network, models):
        link, swap = models
        ledger = QubitLedger(line_network)
        ledger.reserve(1, 9)  # 1 left at switch 1 -> cannot relay width 1
        assert largest_entanglement_rate_path(
            line_network, link, swap, 3, 4, 1, ledger=ledger
        ) is None

    def test_route_around_depleted_switch(self, models):
        link, swap = models
        network = make_diamond_network()
        ledger = QubitLedger(network)
        ledger.reserve(2, 10)
        found = largest_entanglement_rate_path(
            network, link, swap, 0, 1, 1, ledger=ledger
        )
        assert found is not None
        assert found[0] == (0, 4, 5, 1)


class TestBannedSets:
    def test_banned_node(self, models):
        link, swap = models
        network = make_diamond_network()
        found = largest_entanglement_rate_path(
            network, link, swap, 0, 1, 1, banned_nodes=frozenset({2})
        )
        assert found is not None
        assert 2 not in found[0]

    def test_banned_edge(self, models):
        link, swap = models
        network = make_diamond_network()
        found = largest_entanglement_rate_path(
            network, link, swap, 0, 1, 1, banned_edges=frozenset({(0, 2)})
        )
        assert found is not None
        assert found[0][:2] == (0, 4)

    def test_banned_endpoint_returns_none(self, models):
        link, swap = models
        network = make_diamond_network()
        assert largest_entanglement_rate_path(
            network, link, swap, 0, 1, 1, banned_nodes=frozenset({0})
        ) is None


class TestOptimality:
    def test_matches_brute_force_on_random_networks(self):
        """Algorithm 1's result equals the best rate over all simple paths
        (exhaustively enumerated) on small random networks."""
        link = LinkModel(alpha=2e-4)
        swap = SwapModel(q=0.85)
        for seed in range(6):
            network = build_network(
                NetworkConfig(num_switches=8, num_users=2, average_degree=3.0),
                ensure_rng(seed),
            )
            users = network.users()
            source, destination = users[0], users[1]
            found = largest_entanglement_rate_path(
                network, link, swap, source, destination, width=1
            )
            best = _brute_force_best_rate(
                network, link, swap, source, destination
            )
            if best is None:
                assert found is None
                continue
            assert found is not None
            assert found[1] == pytest.approx(best, rel=1e-9)


def _brute_force_best_rate(network, link, swap, source, destination):
    switches = network.switches()
    best = None
    direct = None
    if network.has_edge(source, destination):
        direct = path_entanglement_rate(
            network, link, swap, [source, destination], 1
        )
        best = direct
    for r in range(1, min(len(switches), 6) + 1):
        for mids in itertools.permutations(switches, r):
            nodes = [source, *mids, destination]
            if all(network.has_edge(a, b) for a, b in zip(nodes, nodes[1:])):
                rate = path_entanglement_rate(network, link, swap, nodes, 1)
                if best is None or rate > best:
                    best = rate
    return best

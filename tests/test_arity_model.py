"""Tests for the arity-dependent swap model across the stack.

The paper assumes a single fusion success probability q independent of
arity; ``SwapModel(per_qubit=True)`` is our ablation knob where an
n-fusion succeeds with q^(n-1).  These tests pin the propagation of that
choice through metrics, flow graphs, the sampler and the simulators.
"""

import pytest

from repro.network.demands import Demand, DemandSet
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.nfusion import AlgNFusion
from repro.simulation.engine import EntanglementProcessSimulator
from repro.simulation.sampler import TrialSampler
from repro.simulation.vectorized import VectorizedProcessSimulator
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network


@pytest.fixture
def branched_flow():
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path([0, 2, 3, 1], width=1)
    flow.add_path([0, 4, 5, 1], width=1)
    return flow


class TestPerQubitModel:
    def test_flow_rate_lower_under_per_qubit(self, diamond_network, branched_flow):
        link = LinkModel(fixed_p=0.6)
        flat = branched_flow.entanglement_rate(
            diamond_network, link, SwapModel(q=0.8)
        )
        arity_aware = branched_flow.entanglement_rate(
            diamond_network, link, SwapModel(q=0.8, per_qubit=True)
        )
        # All fusions here are arity 2, so q^(n-1) = q: rates coincide.
        assert arity_aware == pytest.approx(flat)

    def test_branch_node_pays_more_under_per_qubit(self, diamond_network):
        """A width-2 flow has arity-4 fusions at its switches, which cost
        q^3 under the per-qubit model."""
        link = LinkModel(fixed_p=1.0)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=2)
        flat = flow.entanglement_rate(diamond_network, link, SwapModel(q=0.8))
        arity_aware = flow.entanglement_rate(
            diamond_network, link, SwapModel(q=0.8, per_qubit=True)
        )
        assert flat == pytest.approx(0.8**2)
        assert arity_aware == pytest.approx((0.8**3) ** 2)
        assert arity_aware < flat

    def test_sampler_uses_arity(self, diamond_network):
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=3)  # arity 6 at each switch
        swap = SwapModel(q=0.7, per_qubit=True)
        sampler = TrialSampler(
            diamond_network, LinkModel(fixed_p=1.0), swap, ensure_rng(1)
        )
        successes = 0
        trials = 3000
        for _ in range(trials):
            sample = sampler.sample(flow)
            successes += sample.switch_successes[2]
        expected = 0.7**5
        assert successes / trials == pytest.approx(expected, abs=0.03)

    def test_simulators_agree_under_per_qubit(self, diamond_network, branched_flow):
        link = LinkModel(fixed_p=0.5)
        swap = SwapModel(q=0.7, per_qubit=True)
        analytic = branched_flow.entanglement_rate(diamond_network, link, swap)
        ref = EntanglementProcessSimulator(
            diamond_network, link, swap, ensure_rng(2)
        )
        vec = VectorizedProcessSimulator(
            diamond_network, link, swap, ensure_rng(3)
        )
        assert ref.flow_rate(branched_flow, 4000) == pytest.approx(
            analytic, abs=0.03
        )
        assert vec.flow_rate(branched_flow, 12000) == pytest.approx(
            analytic, abs=0.02
        )

    def test_router_prefers_narrower_flows_under_per_qubit(self, diamond_network):
        """With arity-dependent fusion costs, wide channels lose value;
        the router's chosen plan should never rate higher under the
        per-qubit model than under the flat model."""
        demands = DemandSet([Demand(0, 0, 1)])
        link = LinkModel(fixed_p=0.5)
        flat_result = AlgNFusion().route(
            diamond_network, demands, link, SwapModel(q=0.8)
        )
        arity_result = AlgNFusion().route(
            diamond_network, demands, link, SwapModel(q=0.8, per_qubit=True)
        )
        assert arity_result.total_rate <= flat_result.total_rate + 1e-9

"""Unit tests for GHZ-group records and the entanglement tracker."""

import pytest

from repro.exceptions import FusionError, QuantumStateError
from repro.quantum.states import GHZGroup, ghz_state_vector_signature, merge_groups
from repro.quantum.tracker import EntanglementTracker


class TestGHZGroup:
    def test_size_and_membership(self):
        g = GHZGroup([3, 1, 2])
        assert g.size == 3
        assert g.contains(2)
        assert not g.contains(9)
        assert g.sorted_qubits() == (1, 2, 3)

    def test_bell_pair_flag(self):
        assert GHZGroup([0, 1]).is_bell_pair
        assert not GHZGroup([0, 1, 2]).is_bell_pair

    def test_rejects_small_groups(self):
        with pytest.raises(QuantumStateError):
            GHZGroup([1])
        with pytest.raises(QuantumStateError):
            GHZGroup([2, 2])

    def test_without(self):
        g = GHZGroup([0, 1, 2, 3])
        assert g.without([0]).sorted_qubits() == (1, 2, 3)

    def test_without_missing_raises(self):
        with pytest.raises(QuantumStateError):
            GHZGroup([0, 1, 2]).without([9])

    def test_without_below_two_raises(self):
        with pytest.raises(QuantumStateError):
            GHZGroup([0, 1, 2]).without([0, 1])

    def test_groups_are_hashable_and_equal(self):
        assert GHZGroup([1, 2]) == GHZGroup([2, 1])
        assert hash(GHZGroup([1, 2])) == hash(GHZGroup([2, 1]))


class TestMergeGroups:
    def test_merge_bell_pairs(self):
        merged = merge_groups([GHZGroup([0, 1]), GHZGroup([2, 3])], [1, 2])
        assert merged.sorted_qubits() == (0, 3)

    def test_merge_sizes_add_up(self):
        groups = [GHZGroup([0, 1, 2]), GHZGroup([3, 4]), GHZGroup([5, 6, 7])]
        merged = merge_groups(groups, [2, 3, 5])
        assert merged.size == 3 + 2 + 3 - 3

    def test_merge_rejects_overlapping_groups(self):
        with pytest.raises(QuantumStateError):
            merge_groups([GHZGroup([0, 1]), GHZGroup([1, 2])], [0, 2])

    def test_merge_rejects_stray_measured_qubit(self):
        with pytest.raises(QuantumStateError):
            merge_groups([GHZGroup([0, 1])], [5])

    def test_merge_needs_one_qubit_per_group(self):
        with pytest.raises(QuantumStateError):
            merge_groups([GHZGroup([0, 1, 2]), GHZGroup([3, 4])], [0, 1, 3])

    def test_signature(self):
        assert ghz_state_vector_signature(3) == ((0, 0, 0), (1, 1, 1))
        with pytest.raises(QuantumStateError):
            ghz_state_vector_signature(1)


class TestTracker:
    def test_create_and_query(self):
        tracker = EntanglementTracker()
        gid = tracker.create_bell_pair(0, 1)
        assert tracker.is_entangled(0)
        assert tracker.group_id_of(1) == gid
        assert tracker.same_group(0, 1)
        assert tracker.num_groups() == 1

    def test_double_use_of_qubit_raises(self):
        tracker = EntanglementTracker()
        tracker.create_bell_pair(0, 1)
        with pytest.raises(QuantumStateError):
            tracker.create_bell_pair(1, 2)

    def test_fusion_merges_groups(self):
        tracker = EntanglementTracker()
        tracker.create_bell_pair(0, 1)
        tracker.create_bell_pair(2, 3)
        tracker.create_bell_pair(4, 5)
        gid = tracker.fuse([1, 2, 4], success=True)
        assert gid is not None
        assert tracker.group_of(0).sorted_qubits() == (0, 3, 5)
        assert not tracker.is_entangled(1)
        assert not tracker.is_entangled(2)

    def test_failed_fusion_destroys_inputs(self):
        tracker = EntanglementTracker()
        tracker.create_bell_pair(0, 1)
        tracker.create_bell_pair(2, 3)
        assert tracker.fuse([1, 2], success=False) is None
        for q in (0, 1, 2, 3):
            assert not tracker.is_entangled(q)

    def test_fusion_requires_distinct_groups(self):
        tracker = EntanglementTracker()
        tracker.create_ghz([0, 1, 2])
        with pytest.raises(FusionError):
            tracker.fuse([0, 1])

    def test_fusion_of_unentangled_qubit_raises(self):
        tracker = EntanglementTracker()
        tracker.create_bell_pair(0, 1)
        with pytest.raises(QuantumStateError):
            tracker.fuse([1, 7])

    def test_pauli_removal_shrinks_group(self):
        tracker = EntanglementTracker()
        tracker.create_ghz([0, 1, 2, 3])
        gid = tracker.fuse([0], success=True)
        assert gid is not None
        assert tracker.group_of(1).sorted_qubits() == (1, 2, 3)

    def test_pauli_removal_from_bell_dissolves(self):
        tracker = EntanglementTracker()
        tracker.create_bell_pair(0, 1)
        assert tracker.fuse([0], success=True) is None
        assert not tracker.is_entangled(1)

    def test_failed_pauli_removal_destroys_group(self):
        tracker = EntanglementTracker()
        tracker.create_ghz([0, 1, 2])
        assert tracker.fuse([0], success=False) is None
        assert tracker.num_groups() == 0

    def test_discard(self):
        tracker = EntanglementTracker()
        tracker.create_bell_pair(0, 1)
        tracker.discard_qubit_group(0)
        assert tracker.num_groups() == 0
        with pytest.raises(QuantumStateError):
            tracker.discard_group(99)

    def test_groups_listing_is_sorted(self):
        tracker = EntanglementTracker()
        tracker.create_ghz([5, 6, 7])
        tracker.create_bell_pair(0, 1)
        groups = tracker.groups()
        assert groups[0].sorted_qubits() == (0, 1)
        assert groups[1].sorted_qubits() == (5, 6, 7)

    def test_chain_fusion_like_repeater(self):
        tracker = EntanglementTracker()
        for i in range(4):
            tracker.create_bell_pair(2 * i, 2 * i + 1)
        tracker.fuse([1, 2])
        tracker.fuse([3, 4])
        tracker.fuse([5, 6])
        assert tracker.same_group(0, 7)
        assert tracker.group_of(0).size == 2

"""Property-based agreement tests for the three rate evaluators.

For randomly merged flow-like graphs on a small grid:

* the exact enumerator and the vectorised Monte Carlo agree (statistics);
* Equation 1 equals the exact value whenever the flow DAG is a tree
  (each node has at most one parent), and stays within a bounded error
  otherwise;
* all evaluators produce probabilities.
"""

import itertools

import networkx as nx
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.exceptions import RoutingError
from repro.network.graph import QuantumNetwork
from repro.network.node import QuantumSwitch, QuantumUser
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.simulation.exact import exact_flow_rate
from repro.simulation.vectorized import VectorizedProcessSimulator
from repro.utils.geometry import Point
from repro.utils.rng import ensure_rng


def grid_with_users(side=3):
    """A side x side switch grid plus users attached to two corners."""
    network = QuantumNetwork()
    for row in range(side):
        for col in range(side):
            network.add_node(
                QuantumSwitch(row * side + col,
                              Point(1000.0 * col, 1000.0 * row), 50)
            )
    for row in range(side):
        for col in range(side):
            here = row * side + col
            if col + 1 < side:
                network.add_edge(here, here + 1)
            if row + 1 < side:
                network.add_edge(here, here + side)
    source = side * side
    destination = side * side + 1
    network.add_node(QuantumUser(source, Point(-1000.0, 0.0)))
    network.add_node(QuantumUser(destination,
                                 Point(1000.0 * side, 1000.0 * (side - 1))))
    network.add_edge(source, 0)
    network.add_edge(destination, side * side - 1)
    return network, source, destination


NETWORK, SOURCE, DESTINATION = grid_with_users()

# All simple S->D paths of bounded length, as a reusable pool.
_GRAPH = nx.Graph()
for edge in NETWORK.edges():
    _GRAPH.add_edge(edge.u, edge.v)
PATH_POOL = [
    tuple(p)
    for p in nx.all_simple_paths(_GRAPH, SOURCE, DESTINATION, cutoff=6)
]


def is_tree_flow(flow: FlowLikeGraph) -> bool:
    """True iff every node has at most one parent in the flow DAG."""
    parents = {}
    for node in flow.nodes():
        for child in flow.children_of(node):
            parents.setdefault(child, set()).add(node)
    return all(len(p) <= 1 for p in parents.values())


@st.composite
def random_flows(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    indices = draw(
        st.lists(
            st.integers(0, len(PATH_POOL) - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    width = draw(st.integers(min_value=1, max_value=3))
    flow = FlowLikeGraph(0, SOURCE, DESTINATION)
    added = 0
    for index in indices:
        try:
            flow.add_path(PATH_POOL[index], width=width)
            added += 1
        except RoutingError:
            continue
    assume(added >= 1)
    p = draw(st.floats(min_value=0.2, max_value=0.9))
    q = draw(st.floats(min_value=0.3, max_value=1.0))
    return flow, p, q


@settings(max_examples=25, deadline=None)
@given(random_flows())
def test_equation1_vs_exact(case):
    flow, p, q = case
    link, swap = LinkModel(fixed_p=p), SwapModel(q=q)
    exact = exact_flow_rate(NETWORK, flow, link, swap, max_elements=26)
    analytic = flow.entanglement_rate(NETWORK, link, swap)
    assert 0.0 <= exact <= 1.0
    assert 0.0 <= analytic <= 1.0
    if is_tree_flow(flow):
        assert analytic == pytest.approx(exact, abs=1e-9)
    else:
        # Reconvergent flows: Equation 1 is an approximation; its error
        # stays bounded on these small graphs.
        assert analytic == pytest.approx(exact, abs=0.2)


@settings(max_examples=10, deadline=None)
@given(random_flows())
def test_vectorized_vs_exact(case):
    flow, p, q = case
    link, swap = LinkModel(fixed_p=p), SwapModel(q=q)
    exact = exact_flow_rate(NETWORK, flow, link, swap, max_elements=26)
    engine = VectorizedProcessSimulator(NETWORK, link, swap, ensure_rng(123))
    empirical = engine.flow_rate(flow, trials=6000)
    assert empirical == pytest.approx(exact, abs=0.035)

"""Tests for the estimator dimension of the sweep harness: spec
grammar, the estimation RNG substream, cache keying/round-trips and
vectorized-vs-reference engine agreement."""

import json

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting
from repro.experiments.estimators import (
    ANALYTIC,
    DEFAULT_MC_TRIALS,
    EstimatorSpec,
    EstimatorSpecError,
    as_estimator,
    estimate_plan,
    estimation_rng,
    parse_estimator,
)
from repro.experiments.regression import build_regression_instance
from repro.experiments.runner import run_outcomes, run_settings, run_sweep
from repro.network.builder import NetworkConfig
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng, stream_rng


def tiny_setting(**kwargs):
    defaults = dict(
        network=NetworkConfig(num_switches=20, num_users=4),
        num_states=4,
        num_networks=2,
        fixed_p=0.5,
        seed=77,
    )
    defaults.update(kwargs)
    return ExperimentSetting(**defaults)


class TestEstimatorSpec:
    def test_analytic_default(self):
        assert ANALYTIC == EstimatorSpec()
        assert not ANALYTIC.is_mc
        assert ANALYTIC.to_string() == "analytic"

    def test_parse_analytic(self):
        assert parse_estimator("analytic") == ANALYTIC
        assert parse_estimator(" ANALYTIC ") == ANALYTIC

    def test_parse_mc_defaults(self):
        spec = parse_estimator("mc")
        assert spec.is_mc
        assert spec.trials == DEFAULT_MC_TRIALS
        assert spec.engine == "vectorized"

    def test_parse_mc_params(self):
        spec = parse_estimator("mc:trials=2000,engine=reference")
        assert spec == EstimatorSpec("mc", 2000, "reference")

    def test_round_trip(self):
        for text in ("analytic", "mc:trials=123,engine=reference"):
            spec = parse_estimator(text)
            assert parse_estimator(spec.to_string()) == spec
            assert str(spec) == spec.to_string()

    @pytest.mark.parametrize("text", [
        "exact",
        "analytic:trials=5",
        "mc:trials=0",
        "mc:trials=abc",
        "mc:engine=gpu",
        "mc:trials",
        "mc:trials=5,trials=6",
        "mc:depth=2",
        "",
    ])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(EstimatorSpecError):
            parse_estimator(text)

    def test_constructor_validation(self):
        with pytest.raises(EstimatorSpecError):
            EstimatorSpec("analytic", trials=5)
        with pytest.raises(EstimatorSpecError):
            EstimatorSpec("mc", trials=0, engine="vectorized")
        with pytest.raises(EstimatorSpecError):
            EstimatorSpec("mc", trials=10, engine="")

    def test_as_estimator_coercions(self):
        assert as_estimator(None) == ANALYTIC
        assert as_estimator("mc") == EstimatorSpec.mc()
        spec = EstimatorSpec.mc(trials=9)
        assert as_estimator(spec) is spec
        with pytest.raises(EstimatorSpecError):
            as_estimator(42)


class TestEstimationStream:
    def test_disjoint_from_instance_stream(self):
        """The estimation substream must not replay the sample stream."""
        seed = 123456
        instance_draws = ensure_rng(seed).uniform(size=8)
        estimation_draws = estimation_rng(seed).uniform(size=8)
        assert not (instance_draws == estimation_draws).any()

    def test_stateless_and_deterministic(self):
        a = estimation_rng(99).uniform(size=4)
        b = estimation_rng(99).uniform(size=4)
        assert (a == b).all()

    def test_streams_differ_by_index(self):
        a = stream_rng(7, 0).uniform(size=4)
        b = stream_rng(7, 1).uniform(size=4)
        assert not (a == b).any()

    def test_stream_rng_validation(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            stream_rng(-1, 0)
        with pytest.raises(ConfigurationError):
            stream_rng(1, -1)
        with pytest.raises(ConfigurationError):
            stream_rng("seed", 0)


class TestMcHarness:
    def test_workers_do_not_change_mc_series(self):
        """MC draws derive from sample seeds, so worker count is moot."""
        settings = [tiny_setting(fixed_p=p) for p in (0.3, 0.6)]
        estimator = "mc:trials=200"
        sequential = run_settings(settings, workers=0, estimator=estimator)
        parallel = run_settings(settings, workers=4, estimator=estimator)
        assert parallel == sequential

    def test_mc_outcomes_carry_uncertainty(self):
        outcomes = run_outcomes(
            [tiny_setting(num_networks=1)],
            ["alg-n-fusion"],
            estimator="mc:trials=150",
        )
        [outcome] = outcomes
        assert outcome.trials == 150
        assert outcome.stderr > 0.0

    def test_mc_outcomes_carry_analytic_pairing(self):
        """Routing yields the analytic rate as a by-product, so one MC
        pass holds the full analytic-vs-MC pair."""
        setting = tiny_setting(num_networks=1)
        [mc] = run_outcomes(
            [setting], ["alg-n-fusion"], estimator="mc:trials=100"
        )
        [analytic] = run_outcomes([setting], ["alg-n-fusion"])
        assert mc.analytic_rate == analytic.total_rate
        assert analytic.analytic_rate == analytic.total_rate

    def test_analytic_outcomes_have_no_uncertainty(self):
        outcomes = run_outcomes(
            [tiny_setting(num_networks=1)], ["alg-n-fusion"]
        )
        [outcome] = outcomes
        assert outcome.trials == 0
        assert outcome.stderr == 0.0

    def test_trials_do_not_perturb_instances(self):
        """Changing the MC budget must not change what is routed.

        The analytic rates are a pure function of the sampled
        instances, so equal analytic outcomes before and after MC runs
        of different sizes prove the instance stream is untouched.
        """
        setting = tiny_setting()
        baseline = run_settings([setting])
        run_settings([setting], estimator="mc:trials=50")
        run_settings([setting], estimator="mc:trials=250")
        assert run_settings([setting]) == baseline

    def test_mc_tracks_analytic(self):
        """At moderate trial counts MC means sit near Equation 1."""
        setting = tiny_setting()
        analytic = run_settings([setting])[0]
        mc = run_settings([setting], estimator="mc:trials=800")[0]
        for name, rate in analytic.items():
            assert mc[name] == pytest.approx(rate, rel=0.25, abs=0.15)

    def test_engines_agree_within_stderr_on_regression_fixture(self):
        """Vectorized and reference estimates of the pinned instance's
        plan agree within their combined reported standard error."""
        network, demands = build_regression_instance()
        result = AlgNFusion().route(network, demands)
        fast = estimate_plan(
            EstimatorSpec.mc(trials=2500), network, result.plan,
            None, None, sample_seed=555,
        )
        slow = estimate_plan(
            EstimatorSpec.mc(trials=1000, engine="reference"),
            network, result.plan, None, None, sample_seed=777,
        )
        combined = (fast.stderr**2 + slow.stderr**2) ** 0.5
        assert abs(fast.mean - slow.mean) <= 4.0 * combined

    def test_engines_agree_at_harness_level(self):
        """Same task grid, same seeds: the two engines' estimates are
        statistically compatible outcome-for-outcome."""
        setting = tiny_setting(num_networks=1)
        fast = run_outcomes(
            [setting], ["alg-n-fusion"], estimator="mc:trials=1500"
        )
        slow = run_outcomes(
            [setting], ["alg-n-fusion"],
            estimator="mc:trials=600,engine=reference",
        )
        for f, s in zip(fast, slow):
            assert f.key == s.key
            combined = (f.stderr**2 + s.stderr**2) ** 0.5
            assert abs(f.total_rate - s.total_rate) <= 5.0 * combined

    def test_estimate_plan_rejects_analytic(self):
        network, demands = build_regression_instance()
        result = AlgNFusion().route(network, demands)
        with pytest.raises(EstimatorSpecError):
            estimate_plan(ANALYTIC, network, result.plan, None, None, 1)


class TestMcCache:
    def test_key_distinguishes_estimators(self, tmp_path):
        cache = ResultCache(tmp_path)
        setting = tiny_setting()
        router = AlgNFusion()
        analytic_key = cache.key_for(setting, router)
        assert analytic_key == cache.key_for(setting, router, ANALYTIC)
        assert analytic_key == cache.key_for(setting, router, "analytic")
        mc_key = cache.key_for(setting, router, "mc:trials=500")
        assert mc_key != analytic_key
        assert mc_key != cache.key_for(setting, router, "mc:trials=600")
        assert mc_key != cache.key_for(
            setting, router, "mc:trials=500,engine=reference"
        )

    def test_mc_cache_round_trip(self, tmp_path):
        """A warm MC run replays the cold run bit-exactly, stderr and
        trials included."""
        cache = ResultCache(tmp_path)
        setting = tiny_setting()
        cold = run_outcomes(
            [setting], cache=cache, estimator="mc:trials=120"
        )
        warm = run_outcomes(
            [setting], cache=cache, estimator="mc:trials=120"
        )
        assert warm == cold
        assert any(outcome.stderr > 0.0 for outcome in cold)

    def test_mc_cache_round_trip_across_processes(self, tmp_path):
        """Workers write the cache; a later sequential process-free run
        reads identical outcomes."""
        cache = ResultCache(tmp_path)
        setting = tiny_setting()
        cold = run_outcomes(
            [setting], workers=2, cache=cache, estimator="mc:trials=90"
        )
        warm = run_outcomes(
            [setting], workers=0, cache=cache, estimator="mc:trials=90"
        )
        assert warm == cold

    def test_entries_store_stderrs_and_trials(self, tmp_path):
        cache = ResultCache(tmp_path)
        setting = tiny_setting(num_networks=1)
        run_outcomes(
            [setting], ["alg-n-fusion"], cache=cache,
            estimator="mc:trials=75",
        )
        [path] = list(tmp_path.glob("*.json"))
        entry = json.loads(path.read_text())
        assert entry["trials"] == 75
        assert len(entry["stderrs"]) == 1

    def test_legacy_entry_without_stderrs_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(tiny_setting(), AlgNFusion())
        cache.put(key, "X", [1.0])
        path = tmp_path / f"{key}.json"
        entry = json.loads(path.read_text())
        del entry["stderrs"]
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_put_rejects_mismatched_stderrs(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put("k", "X", [1.0, 2.0], stderrs=[0.1])

    def test_env_default_cache(self, tmp_path, monkeypatch):
        """REPRO_CACHE_DIR makes runs cache-aware without call-site
        changes."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        setting = tiny_setting(num_networks=1)
        cold = run_settings([setting], ["alg-n-fusion"])
        assert list(tmp_path.glob("*.json"))
        assert run_settings([setting], ["alg-n-fusion"]) == cold


class TestMcOverlay:
    def test_overlay_adds_mc_columns(self):
        settings = [tiny_setting(fixed_p=p) for p in (0.3, 0.6)]
        sweep = run_sweep(
            "t", "p", [0.3, 0.6], settings,
            routers=["alg-n-fusion"],
            mc_overlay="mc:trials=120",
        )
        assert set(sweep.series) == {"ALG-N-FUSION", "ALG-N-FUSION [MC]"}
        assert len(sweep.series_for("ALG-N-FUSION [MC]")) == 2

    def test_overlay_base_columns_match_plain_analytic_run(self):
        """The single-pass overlay derives the analytic columns from
        the MC outcomes; they must equal a plain analytic sweep."""
        settings = [tiny_setting(fixed_p=p) for p in (0.3, 0.6)]
        plain = run_sweep(
            "t", "p", [0.3, 0.6], settings, routers=["alg-n-fusion"]
        )
        overlaid = run_sweep(
            "t", "p", [0.3, 0.6], settings, routers=["alg-n-fusion"],
            mc_overlay="mc:trials=120",
        )
        assert overlaid.series_for("ALG-N-FUSION") == plain.series_for(
            "ALG-N-FUSION"
        )

    def test_overlay_backfills_analytic_cache(self, tmp_path):
        """The overlay's free analytic series lands under the analytic
        cache key, so a later plain analytic run is a pure cache read."""
        cache = ResultCache(tmp_path)
        setting = tiny_setting(num_networks=1)
        overlaid = run_sweep(
            "t", "p", [0.5], [setting], routers=["alg-n-fusion"],
            cache=cache, mc_overlay="mc:trials=100",
        )
        analytic_key = cache.key_for(
            setting, AlgNFusion(), ANALYTIC
        )
        entry = cache.get(analytic_key)
        assert entry is not None
        assert entry["rates"] == [overlaid.series_for("ALG-N-FUSION")[0]]

    def test_same_base_and_overlay_spec_runs_once(self):
        spec = "mc:trials=150"
        sweep = run_sweep(
            "t", "p", [0.5], [tiny_setting(num_networks=1)],
            routers=["alg-n-fusion"], estimator=spec, mc_overlay=spec,
        )
        assert sweep.series_for("ALG-N-FUSION") == sweep.series_for(
            "ALG-N-FUSION [MC]"
        )

    def test_overlay_must_be_mc(self):
        with pytest.raises(EstimatorSpecError):
            run_sweep(
                "t", "p", [0.3], [tiny_setting()], mc_overlay="analytic"
            )


class TestAntitheticEstimator:
    def test_grammar_round_trip(self):
        spec = parse_estimator("mc:trials=400,antithetic=true")
        assert spec == EstimatorSpec.mc(trials=400, antithetic=True)
        assert spec.to_string() == (
            "mc:trials=400,engine=vectorized,antithetic=true"
        )
        assert parse_estimator(spec.to_string()) == spec

    def test_antithetic_false_is_the_default(self):
        assert parse_estimator("mc:antithetic=false") == parse_estimator("mc")
        assert "antithetic" not in parse_estimator("mc").to_string()

    @pytest.mark.parametrize(
        "text",
        [
            "mc:antithetic=maybe",
            "mc:engine=reference,antithetic=true",
            "mc:trials=501,antithetic=true",
            "analytic:antithetic=true",
        ],
    )
    def test_invalid_antithetic_specs_rejected(self, text):
        with pytest.raises(EstimatorSpecError):
            parse_estimator(text)

    def test_stderr_shrinks_at_equal_trials_on_regression_fixture(self):
        """Antithetic pairs are negatively correlated (establishment is
        monotone in the uniforms), so at equal trial count the reported
        stderr must shrink while the mean stays compatible."""
        network, demands = build_regression_instance()
        result = AlgNFusion().route(network, demands)
        for trials in (500, 2000):
            plain = estimate_plan(
                EstimatorSpec.mc(trials=trials), network, result.plan,
                None, None, sample_seed=12345,
            )
            paired = estimate_plan(
                EstimatorSpec.mc(trials=trials, antithetic=True),
                network, result.plan, None, None, sample_seed=12345,
            )
            assert paired.stderr < plain.stderr
            assert paired.trials == trials
            combined = (plain.stderr**2 + paired.stderr**2) ** 0.5
            assert abs(paired.mean - plain.mean) <= 4.0 * combined

    def test_antithetic_deterministic_across_execution_plans(self):
        setting = tiny_setting(num_networks=2)
        spec = "mc:trials=200,antithetic=true"
        sequential = run_outcomes(
            [setting], ["alg-n-fusion"], estimator=spec, workers=1
        )
        parallel = run_outcomes(
            [setting], ["alg-n-fusion"], estimator=spec, workers=2
        )
        assert sequential == parallel

    def test_antithetic_key_distinct_and_caches(self, tmp_path):
        cache = ResultCache(tmp_path)
        setting = tiny_setting()
        router = AlgNFusion()
        plain_key = cache.key_for(setting, router, "mc:trials=500")
        anti_key = cache.key_for(
            setting, router, "mc:trials=500,antithetic=true"
        )
        assert anti_key != plain_key
        cold = run_settings(
            [setting], ["alg-n-fusion"], cache=cache,
            estimator="mc:trials=200,antithetic=true",
        )
        warm = run_settings(
            [setting], ["alg-n-fusion"], cache=cache,
            estimator="mc:trials=200,antithetic=true",
        )
        assert cold == warm

"""Unit tests for flow-like graphs and the Equation 1 rate recursion."""

import itertools

import pytest

from repro.exceptions import RoutingError
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph

from tests.conftest import make_diamond_network, make_line_network


class TestConstruction:
    def test_single_path(self, line_network):
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=2)
        assert flow.num_paths == 1
        assert flow.edges() == [(0, 1), (0, 3), (1, 2), (2, 4)]
        assert flow.edge_width(0, 1) == 2
        assert flow.branch_nodes() == []

    def test_wrong_endpoints_rejected(self):
        flow = FlowLikeGraph(0, 3, 4)
        with pytest.raises(RoutingError):
            flow.add_path([3, 0, 1], width=1)

    def test_loop_rejected(self):
        flow = FlowLikeGraph(0, 3, 4)
        with pytest.raises(RoutingError):
            flow.add_path([3, 0, 3, 4], width=1)

    def test_branch_detection(self, diamond_network):
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        flow.add_path([0, 4, 5, 1], width=1)
        assert flow.branch_nodes() == [0]
        assert flow.children_of(0) == [2, 4]

    def test_shared_edge_keeps_larger_width(self, diamond_network):
        diamond_network.add_edge(2, 5)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=3)
        flow.add_path([0, 2, 5, 1], width=1)
        assert flow.edge_width(0, 2) == 3  # shared, keeps 3
        assert flow.edge_width(2, 5) == 1
        # Upgrading: a wider path over the same shared edge lifts it.
        flow.add_path([0, 2, 3, 1], width=4)
        assert flow.edge_width(0, 2) == 4

    def test_cycle_merge_rejected(self, diamond_network):
        diamond_network.add_edge(2, 4)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 4, 5, 1], width=1)
        with pytest.raises(RoutingError):
            flow.add_path([0, 4, 2, 3, 1], width=1)

    def test_widen_edge(self, line_network):
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=1)
        flow.widen_edge(0, 1)
        assert flow.edge_width(0, 1) == 2
        with pytest.raises(RoutingError):
            flow.widen_edge(0, 2)

    def test_fusion_arity_counts_widths(self, diamond_network):
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=2)
        assert flow.fusion_arity(2) == 4  # two incident edges of width 2
        assert flow.qubits_used_at(3) == 4

    def test_copy_is_independent(self, line_network):
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=1)
        clone = flow.copy()
        clone.widen_edge(0, 1)
        assert flow.edge_width(0, 1) == 1


class TestRateSinglePath:
    def test_matches_path_formula(self, line_network):
        link = LinkModel(fixed_p=0.5)
        swap = SwapModel(q=0.9)
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=1)
        assert flow.entanglement_rate(line_network, link, swap) == pytest.approx(
            (0.5**4) * (0.9**3)
        )

    def test_empty_flow_has_zero_rate(self, line_network):
        flow = FlowLikeGraph(0, 3, 4)
        assert flow.entanglement_rate(line_network, LinkModel(), SwapModel()) == 0.0

    def test_extra_widths_do_not_mutate(self, line_network):
        link = LinkModel(fixed_p=0.5)
        swap = SwapModel(q=0.9)
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=1)
        base = flow.entanglement_rate(line_network, link, swap)
        widened = flow.entanglement_rate(
            line_network, link, swap, extra_widths={(0, 1): 1}
        )
        assert widened > base
        assert flow.entanglement_rate(line_network, link, swap) == base


class TestRateBranching:
    def test_disjoint_branches_formula(self, diamond_network):
        """Equation 1 on two edge-disjoint paths: the exact expression is
        1 - (1 - r1)(1 - r2) with r = p^3 q^2 per path."""
        link = LinkModel(fixed_p=0.6)
        swap = SwapModel(q=0.8)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        flow.add_path([0, 4, 5, 1], width=1)
        r = (0.6**3) * (0.8**2)
        assert flow.entanglement_rate(diamond_network, link, swap) == pytest.approx(
            1 - (1 - r) ** 2
        )

    def test_branching_beats_single_path(self, diamond_network):
        link = LinkModel(fixed_p=0.5)
        swap = SwapModel(q=0.9)
        single = FlowLikeGraph(0, 0, 1)
        single.add_path([0, 2, 3, 1], width=1)
        double = FlowLikeGraph(1, 0, 1)
        double.add_path([0, 2, 3, 1], width=1)
        double.add_path([0, 4, 5, 1], width=1)
        assert double.entanglement_rate(
            diamond_network, link, swap
        ) > single.entanglement_rate(diamond_network, link, swap)

    def test_exact_against_brute_force_on_tree_flows(self, diamond_network):
        """For tree-shaped flows (disjoint branches), Equation 1 is exact:
        compare against full enumeration of channel/switch outcomes."""
        link = LinkModel(fixed_p=0.42)
        swap = SwapModel(q=0.77)
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=2)
        flow.add_path([0, 4, 5, 1], width=1)
        analytic = flow.entanglement_rate(diamond_network, link, swap)
        exact = brute_force_rate(diamond_network, flow, link, swap)
        assert analytic == pytest.approx(exact, abs=1e-12)


def brute_force_rate(network, flow, link, swap):
    """Exact establishment probability by enumerating every outcome."""
    edges = flow.edges()
    switches = [n for n in flow.nodes() if network.node(n).is_switch]
    total = 0.0
    for edge_bits in itertools.product([0, 1], repeat=len(edges)):
        for switch_bits in itertools.product([0, 1], repeat=len(switches)):
            prob = 1.0
            for (u, v), bit in zip(edges, edge_bits):
                p = link.success_probability(network.edge_length(u, v))
                ok = 1 - (1 - p) ** flow.edge_width(u, v)
                prob *= ok if bit else (1 - ok)
            for node, bit in zip(switches, switch_bits):
                q = swap.success_probability(flow.fusion_arity(node))
                prob *= q if bit else (1 - q)
            if prob == 0.0:
                continue
            alive_switches = {
                node for node, bit in zip(switches, switch_bits) if bit
            }
            adjacency = {}
            for (u, v), bit in zip(edges, edge_bits):
                if not bit:
                    continue
                if network.node(u).is_switch and u not in alive_switches:
                    continue
                if network.node(v).is_switch and v not in alive_switches:
                    continue
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
            frontier, seen = [flow.source], {flow.source}
            reached = False
            while frontier:
                node = frontier.pop()
                if node == flow.destination:
                    reached = True
                    break
                for nbr in adjacency.get(node, ()):
                    if nbr not in seen:
                        seen.add(nbr)
                        frontier.append(nbr)
            if reached:
                total += prob
    return total


class TestRateCacheParity:
    """Equation 1 with a ChannelRateCache is bit-identical to without."""

    def _braided_flow(self):
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=2)
        flow.add_path([0, 4, 5, 1], width=1)
        return flow

    def test_flow_rate_identical_with_cache(self, diamond_network):
        from repro.routing.metrics import ChannelRateCache

        link, swap = LinkModel(fixed_p=0.6), SwapModel(q=0.8)
        flow = self._braided_flow()
        cache = ChannelRateCache(diamond_network, link)
        uncached = flow.entanglement_rate(diamond_network, link, swap)
        cached = flow.entanglement_rate(
            diamond_network, link, swap, rate_cache=cache
        )
        recached = flow.entanglement_rate(
            diamond_network, link, swap, rate_cache=cache
        )
        assert cached == uncached
        assert recached == uncached

    def test_extra_widths_identical_with_cache(self, diamond_network):
        from repro.routing.metrics import ChannelRateCache

        link, swap = LinkModel(fixed_p=0.6), SwapModel(q=0.8)
        flow = self._braided_flow()
        cache = ChannelRateCache(diamond_network, link)
        extra = {(2, 3): 1}
        assert flow.entanglement_rate(
            diamond_network, link, swap, extra_widths=extra, rate_cache=cache
        ) == flow.entanglement_rate(
            diamond_network, link, swap, extra_widths=extra
        )

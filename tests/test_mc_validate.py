"""Tests for the first-class Monte-Carlo validation sweep: table
shape, execution-plan invariance (workers/shards/cache) and the CLI
subcommand."""

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting
from repro.experiments.estimators import EstimatorSpecError
from repro.experiments.mc_validate import (
    McValidationResult,
    mc_validate,
    validation_setting,
)
from repro.network.builder import NetworkConfig


def tiny_setting(**kwargs):
    defaults = dict(
        network=NetworkConfig(num_switches=20, num_users=4),
        num_states=4,
        num_networks=2,
        fixed_p=0.5,
        seed=77,
    )
    defaults.update(kwargs)
    return ExperimentSetting(**defaults)


def tiny_validate(**kwargs):
    defaults = dict(
        setting=tiny_setting(),
        estimator="mc:trials=200",
        routers=["alg-n-fusion", "q-cast"],
    )
    defaults.update(kwargs)
    return mc_validate(**defaults)


class TestMcValidate:
    def test_table_shape(self):
        result = tiny_validate()
        assert isinstance(result, McValidationResult)
        # One row per (router, sample) pair, grouped by router.
        assert len(result.rows) == 4
        assert [row.algorithm for row in result.rows] == [
            "ALG-N-FUSION", "ALG-N-FUSION", "Q-CAST", "Q-CAST",
        ]
        for row in result.rows:
            assert row.trials == 200
            assert row.stderr >= 0.0

    def test_rendered_columns(self):
        text = tiny_validate().to_text()
        for column in ("algorithm", "analytic rate", "monte carlo",
                       "stderr", "rel err"):
            assert column in text
        assert "worst relative error" in text

    def test_mc_stays_near_analytic(self):
        result = tiny_validate(estimator="mc:trials=800")
        assert result.worst_rel_err < 0.30

    def test_workers_do_not_change_table(self):
        sequential = tiny_validate(workers=0)
        parallel = tiny_validate(workers=4)
        assert parallel.to_text() == sequential.to_text()

    def test_sharded_runs_merge_bit_identically(self, tmp_path):
        cache = ResultCache(tmp_path)
        tiny_validate(shard=(0, 2), cache=cache)
        merged = tiny_validate(shard=(1, 2), cache=cache)
        unsharded = tiny_validate()
        assert merged.to_text() == unsharded.to_text()

    def test_partial_shard_reports_partial_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        partial = tiny_validate(shard=(0, 2), cache=cache)
        full = tiny_validate()
        assert 0 < len(partial.rows) < len(full.rows)

    def test_empty_rows_render_na(self):
        result = McValidationResult(
            title="t", estimator=tiny_validate().estimator, rows=()
        )
        assert result.worst_rel_err is None
        assert "n/a" in result.to_text()

    def test_rejects_analytic_estimator(self):
        with pytest.raises(EstimatorSpecError):
            tiny_validate(estimator="analytic")

    def test_default_setting_scales_with_quick(self):
        quick = validation_setting(True)
        full = validation_setting(False)
        assert quick.network.num_switches < full.network.num_switches
        assert quick.seed == full.seed == 4242
        assert quick.fixed_p == full.fixed_p == 0.35


class TestCli:
    def test_mc_validate_subcommand(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["mc-validate", "--routers", "alg-n-fusion"]) == 0
        out = capsys.readouterr().out
        assert "Monte Carlo validation" in out
        assert "ALG-N-FUSION" in out

    def test_mc_validate_rejects_analytic_estimator(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["mc-validate", "--estimator", "analytic"]) == 2
        assert "Monte-Carlo" in capsys.readouterr().err

    def test_mc_overlay_rejects_analytic(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig8a", "--mc-overlay", "analytic"]) == 2
        assert "Monte-Carlo" in capsys.readouterr().err

    def test_all_loop_downgrades_analytic_estimator_to_note(self, capsys):
        """`all --estimator analytic` must not crash when the loop
        reaches mc-validate; the table keeps its MC default."""
        from repro.experiments.__main__ import run_one
        from repro.experiments.estimators import ANALYTIC

        run_one(
            "mc-validate", True, None, None, ["alg-n-fusion"], None,
            ANALYTIC, None,
        )
        captured = capsys.readouterr()
        assert "Monte Carlo validation" in captured.out
        assert "has no effect" in captured.err

    def test_estimator_usage_error(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig8a", "--estimator", "mc:engine=gpu"])

"""End-to-end integration tests over the public API.

These run the full pipeline — topology generation, demand sampling,
routing, analytic rates and Monte Carlo validation — at small scale, and
assert the paper's qualitative claims hold on the result.
"""

import pytest

import repro
from repro import (
    AlgNFusion,
    B1Router,
    EntanglementProcessSimulator,
    LinkModel,
    NetworkConfig,
    QCastNRouter,
    QCastRouter,
    SwapModel,
    build_network,
    estimate_plan_rate,
    generate_demands,
)
from repro.utils.rng import ensure_rng


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet(self):
        """The docstring quickstart must work verbatim."""
        network = build_network(NetworkConfig(num_switches=50), rng=1)
        demands = generate_demands(network, num_states=10, rng=2)
        result = AlgNFusion().route(network, demands)
        assert result.total_rate > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline(self):
        rng = ensure_rng(2024)
        network = build_network(
            NetworkConfig(num_switches=40, num_users=6), rng
        )
        demands = generate_demands(network, 10, rng)
        link, swap = LinkModel(fixed_p=0.35), SwapModel(q=0.9)
        results = {
            router.name: router.route(network, demands, link, swap)
            for router in [AlgNFusion(), QCastRouter(), QCastNRouter(), B1Router()]
        }
        return network, demands, link, swap, results

    def test_nfusion_improves_over_classic(self, pipeline):
        _, _, _, _, results = pipeline
        assert results["ALG-N-FUSION"].total_rate > results["Q-CAST"].total_rate

    def test_analytic_close_to_monte_carlo_for_all_routers(self, pipeline):
        network, _, link, swap, results = pipeline
        for name, result in results.items():
            if result.total_rate == 0:
                continue
            estimate = estimate_plan_rate(
                network, result.plan, link, swap, trials=1500,
                rng=ensure_rng(5),
            )
            # Eq. 1 is exact on trees and a mild approximation otherwise;
            # allow 10% + CI slack.
            assert estimate.mean == pytest.approx(
                result.total_rate, rel=0.10, abs=3 * estimate.stderr + 0.05
            ), name

    def test_demand_level_agreement(self, pipeline):
        network, _, link, swap, results = pipeline
        sim = EntanglementProcessSimulator(network, link, swap, ensure_rng(9))
        result = results["ALG-N-FUSION"]
        for flow in result.plan.flows()[:4]:
            analytic = result.demand_rates[flow.demand_id]
            empirical = sim.flow_rate(flow, trials=2000)
            assert empirical == pytest.approx(analytic, abs=0.06)

    def test_resources_accounted(self, pipeline):
        network, _, _, _, results = pipeline
        total_capacity = sum(
            network.qubit_capacity(s) for s in network.switches()
        )
        for result in results.values():
            used = sum(
                count
                for node, count in result.plan.qubits_used().items()
                if network.node(node).is_switch
            )
            assert used + result.remaining_qubits == total_capacity

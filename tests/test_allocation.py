"""Unit tests for the qubit allocation ledger."""

import math

import pytest

from repro.exceptions import AllocationError, CapacityError
from repro.routing.allocation import QubitLedger

from tests.conftest import make_line_network


@pytest.fixture
def ledger():
    return QubitLedger(make_line_network(num_switches=2, capacity=4))


class TestLedger:
    def test_initial_capacities(self, ledger):
        assert ledger.remaining(0) == 4
        assert ledger.remaining(2) == math.inf  # user

    def test_reserve_and_release(self, ledger):
        ledger.reserve(0, 3)
        assert ledger.remaining(0) == 1
        ledger.release(0, 2)
        assert ledger.remaining(0) == 3

    def test_overdraft_raises(self, ledger):
        with pytest.raises(CapacityError):
            ledger.reserve(0, 5)
        assert ledger.remaining(0) == 4

    def test_over_release_raises(self, ledger):
        with pytest.raises(AllocationError):
            ledger.release(0, 1)

    def test_user_reservations_are_free(self, ledger):
        ledger.reserve(2, 10_000)
        assert ledger.remaining(2) == math.inf
        ledger.release(2, 10_000)

    def test_reserve_edge_atomic(self, ledger):
        ledger.reserve(1, 3)  # leaves 1 at node 1
        with pytest.raises(CapacityError):
            ledger.reserve_edge(0, 1, 2)
        # The failed edge reservation must roll back node 0.
        assert ledger.remaining(0) == 4

    def test_can_reserve_edge(self, ledger):
        assert ledger.can_reserve_edge(0, 1, 4)
        assert not ledger.can_reserve_edge(0, 1, 5)
        assert ledger.can_reserve_edge(2, 0, 4)  # user side unlimited

    def test_snapshot_restore(self, ledger):
        snap = ledger.snapshot()
        ledger.reserve(0, 4)
        ledger.restore(snap)
        assert ledger.remaining(0) == 4

    def test_restore_rejects_foreign_snapshot(self, ledger):
        with pytest.raises(AllocationError):
            ledger.restore({0: 1})

    def test_total_free_switch_qubits(self, ledger):
        assert ledger.total_free_switch_qubits() == 8
        ledger.reserve(0, 2)
        assert ledger.total_free_switch_qubits() == 6

    def test_copy_is_independent(self, ledger):
        clone = ledger.copy()
        clone.reserve(0, 4)
        assert ledger.remaining(0) == 4

    def test_unknown_node_raises(self, ledger):
        with pytest.raises(AllocationError):
            ledger.remaining(77)

    def test_negative_counts_rejected(self, ledger):
        with pytest.raises(AllocationError):
            ledger.reserve(0, -1)
        with pytest.raises(AllocationError):
            ledger.has_at_least(0, -1)

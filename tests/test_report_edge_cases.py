"""Additional edge-case coverage: reports, stabilizer inputs, graphs."""

import numpy as np
import pytest

from repro.exceptions import QuantumStateError
from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.network.node import NodeKind, QuantumSwitch, QuantumUser
from repro.quantum.noise import LinkModel, SwapModel
from repro.quantum.stabilizer import StabilizerTableau
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.nfusion import AlgNFusion
from repro.routing.report import render_flow, render_plan_report
from repro.utils.geometry import Point

from tests.conftest import make_diamond_network


class TestRenderFlow:
    def test_branch_nodes_listed(self, diamond_network):
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=2)
        flow.add_path([0, 4, 5, 1], width=1)
        lines = render_flow(flow, diamond_network)
        assert any("2 paths" in line for line in lines)
        assert any("branch nodes" in line for line in lines)
        assert any("widths=[2, 2, 2]" in line for line in lines)

    def test_single_path_no_branch_line(self, diamond_network):
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        lines = render_flow(flow, diamond_network)
        assert not any("branch nodes" in line for line in lines)

    def test_full_report_math_consistency(self, diamond_network):
        demands = DemandSet([Demand(0, 0, 1)])
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        result = AlgNFusion().route(diamond_network, demands, link, swap)
        report = render_plan_report(diamond_network, demands, result, link, swap)
        # The rate printed must match the result object.
        assert f"{result.total_rate:.4g}"[:5] in report.replace("\n", " ")


class TestStabilizerEdgeCases:
    def test_contains_pauli_wrong_shape(self):
        t = StabilizerTableau(2, np.random.default_rng(0))
        with pytest.raises(QuantumStateError):
            t.contains_pauli([1], [0])

    def test_y_gate_on_superposition(self):
        # Y|+> = -i|->; measuring X must give 1.
        t = StabilizerTableau(1, np.random.default_rng(0))
        t.h(0)
        t.y(0)
        assert t.measure_x(0) == 1

    def test_s_dagger_via_three_s(self):
        # S^3 = S†; S† S = I on |+>.
        t = StabilizerTableau(1, np.random.default_rng(0))
        t.h(0)
        t.s(0)
        for _ in range(3):
            t.s(0)
        t.h(0)
        assert t.measure_z(0) == 0

    def test_ghz_query_on_remote_subset_of_chain(self):
        # A 4-qubit cluster-like chain of CNOTs is NOT a GHZ state.
        t = StabilizerTableau(4, np.random.default_rng(0))
        t.h(0)
        t.cnot(0, 1)
        t.h(2)
        t.cnot(2, 3)
        assert not t.is_ghz_up_to_pauli([0, 1, 2, 3])


class TestGraphEdgeCases:
    def test_empty_kind_average_degree(self):
        network = QuantumNetwork()
        network.add_node(QuantumSwitch(0, Point(0, 0), 5))
        assert network.average_degree(NodeKind.USER) == 0.0

    def test_two_node_network(self):
        network = QuantumNetwork()
        network.add_node(QuantumUser(0, Point(0, 0)))
        network.add_node(QuantumSwitch(1, Point(3, 4), 5))
        network.add_edge(0, 1)
        assert network.is_connected()
        assert network.hop_distance(0, 1) == 1
        assert network.edge_length(0, 1) == 5.0

    def test_flow_children_of_leaf(self, diamond_network):
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        assert flow.children_of(1) == []
        assert flow.children_of(99) == []

"""Tests for the statistical analysis helpers."""

import pytest

from repro.analysis.comparison import ComparisonReport, compare_routers
from repro.analysis.statistics import (
    bootstrap_ci,
    paired_difference_ci,
    sign_test_p_value,
    summarize,
)
from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkConfig
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.baselines import QCastRouter
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng


class TestBootstrap:
    def test_ci_contains_point(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        point, low, high = bootstrap_ci(samples, rng=ensure_rng(1))
        assert point == 3.0
        assert low <= point <= high

    def test_tight_sample_tight_ci(self):
        point, low, high = bootstrap_ci([2.0] * 30, rng=ensure_rng(2))
        assert low == high == point == 2.0

    def test_wider_confidence_wider_interval(self):
        samples = list(range(30))
        _, l90, h90 = bootstrap_ci(samples, confidence=0.9, rng=ensure_rng(3))
        _, l99, h99 = bootstrap_ci(samples, confidence=0.99, rng=ensure_rng(3))
        assert (h99 - l99) >= (h90 - l90)

    def test_single_sample_degenerate(self):
        point, low, high = bootstrap_ci([7.0], rng=ensure_rng(4))
        assert point == low == high == 7.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], n_boot=5)


class TestPairedStats:
    def test_difference_ci_sign(self):
        a = [2.0, 3.0, 4.0, 5.0, 6.0]
        b = [1.0, 2.0, 3.0, 4.0, 5.0]
        diff, low, high = paired_difference_ci(a, b, rng=ensure_rng(5))
        assert diff == pytest.approx(1.0)
        assert low > 0.0

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            paired_difference_ci([1.0], [1.0, 2.0])

    def test_sign_test_strong_effect(self):
        a = [i + 1.0 for i in range(12)]
        b = [float(i) for i in range(12)]
        assert sign_test_p_value(a, b) < 0.001

    def test_sign_test_no_effect(self):
        a = [1.0, 2.0, 1.0, 2.0]
        b = [2.0, 1.0, 2.0, 1.0]
        assert sign_test_p_value(a, b) == pytest.approx(1.0, abs=0.4)

    def test_sign_test_all_ties(self):
        assert sign_test_p_value([1.0, 1.0], [1.0, 1.0]) == 1.0

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["n"] == 3
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        with pytest.raises(ConfigurationError):
            summarize([])


class TestCompareRouters:
    @pytest.fixture(scope="class")
    def report(self):
        return compare_routers(
            [AlgNFusion(), QCastRouter()],
            config=NetworkConfig(num_switches=25, num_users=4),
            num_states=4,
            num_samples=6,
            link_model=LinkModel(fixed_p=0.4),
            swap_model=SwapModel(q=0.9),
            seed=42,
        )

    def test_paired_structure(self, report):
        assert report.algorithms() == ["ALG-N-FUSION", "Q-CAST"]
        assert len(report.samples["ALG-N-FUSION"]) == 6
        assert len(report.samples["Q-CAST"]) == 6

    def test_alg_dominates_significantly(self, report):
        diff, low, _ = report.difference_ci(
            "ALG-N-FUSION", "Q-CAST", rng=ensure_rng(6)
        )
        assert diff > 0
        assert report.significance("ALG-N-FUSION", "Q-CAST") < 0.05

    def test_text_rendering(self, report):
        text = report.to_text()
        assert "ALG-N-FUSION" in text
        assert "95% CI" in text
        assert "p (sign)" in text

    def test_unknown_names_rejected(self, report):
        with pytest.raises(ConfigurationError):
            report.mean_rate("nope")
        with pytest.raises(ConfigurationError):
            report.to_text(baseline="nope")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compare_routers([])
        with pytest.raises(ConfigurationError):
            compare_routers([AlgNFusion()], num_samples=0)
